#!/usr/bin/env python
"""Benchmark regression gate: fresh ``BENCH_*.json`` vs baselines.

CI reruns the scheduler, observability, and fleet-load benchmarks at a
shrunken scale and then calls this script to compare the fresh
snapshots against the committed baselines.  Two kinds of checks apply:

* **contracts** — scale-invariant bounds that must hold at any run
  size (obs overhead < 1.5x, memo warm speedup >= 1, zero drops on a
  shard kill, warm p99 within its 2x bound, histogram/exact percentile
  agreement);
* **tolerance bands** — figures compared against the baseline value,
  but only when the fresh run's scale fields match the baseline's
  (a 50-client CI soak is not comparable to the committed
  1000-client run, so those bands are skipped and say so).

Baselines come from ``--baseline-dir`` (a directory of snapshot copies
made before the rerun) or, by default, from ``git show
<ref>:<name>``.  Exit status is 1 if any check fails, 0 otherwise.

Usage::

    cp BENCH_sched.json BENCH_load.json BENCH_obs.json baseline/
    # ... rerun the benchmarks ...
    python tools/bench_regress.py --baseline-dir baseline
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Hard ceiling on observability overhead (mirrors BENCH_obs.json's
#: own acceptance bound; the benchmark enforces it too).
MAX_OBS_OVERHEAD = 1.5

#: How far obs overhead may drift above the baseline at matched scale.
OBS_OVERHEAD_SLACK = 0.25

#: Matched-scale warm speedup may not fall below this fraction of the
#: baseline's (the region memo must still be doing its job).
SCHED_SPEEDUP_FLOOR = 0.5

#: Matched-scale sustained qps may not fall below this fraction of the
#: baseline's.
LOAD_QPS_FLOOR = 0.5


def _violation(name, message):
    return f"{name}: {message}"


def check_obs(fresh, baseline=None):
    """Observability snapshot: overhead bound + drift band."""
    violations = []
    ratio = fresh["overhead_ratio"]
    if ratio >= MAX_OBS_OVERHEAD:
        violations.append(_violation(
            "obs", f"overhead_ratio {ratio} breaches the hard "
            f"{MAX_OBS_OVERHEAD}x bound"))
    if fresh.get("span_count", 0) <= 0:
        violations.append(_violation("obs", "no spans were recorded"))
    if baseline and baseline["grid_cells"] == fresh["grid_cells"]:
        band = baseline["overhead_ratio"] + OBS_OVERHEAD_SLACK
        if ratio > band:
            violations.append(_violation(
                "obs", f"overhead_ratio {ratio} exceeds baseline "
                f"{baseline['overhead_ratio']} + {OBS_OVERHEAD_SLACK}"))
    return violations


def check_sched(fresh, baseline=None):
    """Scheduler snapshot: the memo must serve, and keep serving."""
    violations = []
    speedup = fresh["warm_speedup"]
    if speedup < 1.0:
        violations.append(_violation(
            "sched", f"warm_speedup {speedup} < 1: the region memo "
            "made the warm pass slower"))
    memo = fresh["memo"]
    if memo["warm_hits"] < memo["cold_misses"]:
        violations.append(_violation(
            "sched", f"warm_hits {memo['warm_hits']} < cold_misses "
            f"{memo['cold_misses']}: the memo is not serving"))
    if baseline and baseline["grid_cells"] == fresh["grid_cells"]:
        floor = SCHED_SPEEDUP_FLOOR * baseline["warm_speedup"]
        if speedup < floor:
            violations.append(_violation(
                "sched", f"warm_speedup {speedup} fell below "
                f"{SCHED_SPEEDUP_FLOOR}x the baseline "
                f"({baseline['warm_speedup']})"))
    return violations


def check_load(fresh, baseline=None):
    """Fleet-load snapshot: chaos, latency bound, percentile views."""
    violations = []
    chaos = fresh["chaos"]
    if chaos["dropped_on_shard_kill"] != 0:
        violations.append(_violation(
            "load", f"{chaos['dropped_on_shard_kill']} request(s) "
            "dropped on the shard kill"))
    if chaos["shard_kills"] != 1:
        violations.append(_violation(
            "load", f"chaos phase recorded {chaos['shard_kills']} "
            "shard kills, expected exactly 1"))
    if not fresh["identical_to_direct"]:
        violations.append(_violation(
            "load", "wire payloads diverged from the direct pipeline"))
    p99 = fresh["warm_latency"]["p99"]
    bound = fresh["warm_p99_bound_seconds"]
    if p99 > bound:
        violations.append(_violation(
            "load", f"warm p99 {p99}s exceeds its {bound}s bound"))
    # The two percentile views must tell the same latency story
    # (the soak-agreement contract, on whatever run this snapshot is).
    for split, exact_key in (("all", "latency"),
                             ("warm", "warm_latency")):
        hist = fresh.get("latency_hist_us", {}).get(split)
        if not hist or not hist["count"]:
            continue
        for quantile in ("p50", "p95", "p99"):
            exact_us = fresh[exact_key][quantile] * 1e6
            estimate = hist[quantile]
            if not (exact_us - 1 <= estimate <= 2 * exact_us + 1):
                violations.append(_violation(
                    "load", f"{split} {quantile}: histogram "
                    f"{estimate}us vs exact {exact_us:.0f}us is "
                    "outside the bucket agreement bound"))
    matched = (baseline
               and baseline["clients"] == fresh["clients"]
               and baseline["grid_cells"] == fresh["grid_cells"])
    if matched:
        floor = LOAD_QPS_FLOOR * baseline["sustained_qps"]
        if fresh["sustained_qps"] < floor:
            violations.append(_violation(
                "load", f"sustained_qps {fresh['sustained_qps']} fell "
                f"below {LOAD_QPS_FLOOR}x the baseline "
                f"({baseline['sustained_qps']})"))
    return violations


CHECKS = (
    ("BENCH_sched.json", check_sched),
    ("BENCH_load.json", check_load),
    ("BENCH_obs.json", check_obs),
)


def _load_json(path):
    with open(path) as handle:
        return json.load(handle)


def _load_baseline(name, baseline_dir, ref):
    if baseline_dir:
        path = pathlib.Path(baseline_dir) / name
        return _load_json(path) if path.exists() else None
    try:
        blob = subprocess.check_output(
            ["git", "show", f"{ref}:{name}"], cwd=str(REPO_ROOT),
            stderr=subprocess.DEVNULL)
    except (OSError, subprocess.CalledProcessError):
        return None
    return json.loads(blob)


def run(fresh_dir, baseline_dir=None, ref="HEAD", out=None):
    """Run every check; return the list of violations."""
    out = sys.stdout if out is None else out
    violations = []
    for name, check in CHECKS:
        path = pathlib.Path(fresh_dir) / name
        if not path.exists():
            violations.append(_violation(name, "fresh snapshot missing"))
            continue
        fresh = _load_json(path)
        baseline = _load_baseline(name, baseline_dir, ref)
        found = check(fresh, baseline)
        violations.extend(found)
        status = "FAIL" if found else "ok"
        compared = "baseline" if baseline else "no baseline"
        print(f"{name:20s} {status:4s}  ({compared})", file=out)
    for violation in violations:
        print(f"REGRESSION  {violation}", file=out)
    return violations


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="compare fresh BENCH_*.json against baselines")
    parser.add_argument("--fresh-dir", default=str(REPO_ROOT),
                        help="directory holding the fresh snapshots")
    parser.add_argument("--baseline-dir", default=None,
                        help="directory of baseline copies (default: "
                        "read baselines from git)")
    parser.add_argument("--ref", default="HEAD",
                        help="git ref for baselines when no "
                        "--baseline-dir is given")
    args = parser.parse_args(argv)
    violations = run(args.fresh_dir, args.baseline_dir, args.ref)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
