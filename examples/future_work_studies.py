#!/usr/bin/env python3
"""The paper's Section-6 future work, runnable in one script.

1. **Profile variation** — how much do the four heuristics' schedules
   degrade when the input profile shifts?  (dep height / exit count are
   profile-free and provably robust.)
2. **Hyperblocks vs treegions** — predication vs speculation on one
   benchmark.
3. **Dynamically scheduled processors** — static treegion schedules vs an
   out-of-order core of the same width, over executable workloads.

Run:  python examples/future_work_studies.py
"""

from repro.interp import profile_program
from repro.machine import VLIW_4U, universal_machine
from repro.schedule import HEURISTICS, ScheduleOptions
from repro.evaluation import (
    baseline_time,
    bb_scheme,
    evaluate_program,
    treegion_scheme,
)
from repro.evaluation.schemes import hyperblock_scheme
from repro.evaluation.variation import variation_study
from repro.vliw import simulate
from repro.dynamic import DynamicParams, collect_trace, simulate_trace
from repro.dynamic.ooo import dataflow_limit
from repro.workloads.minic_programs import (
    build_minic_program,
    minic_program_names,
)
from repro.workloads.specint import build_benchmark


def study_profile_variation() -> None:
    print("=== 1. Profile variation (treegions, 4U, 'li' stand-in) ===")
    program = build_benchmark("li")
    results = variation_study(program, treegion_scheme, VLIW_4U,
                              heuristics=list(HEURISTICS), seeds=[3, 17, 31],
                              magnitude=0.6)
    print(f"{'heuristic':16s} {'degradation':>12s}   (1.0 = robust)")
    for heuristic, row in results.items():
        print(f"{heuristic:16s} {row['degradation']:12.3f}")
    print("profile-free heuristics (dep height, exit count) are exactly "
          "robust;\nglobal weight trades ~1% robustness for peak "
          "performance.\n")


def study_hyperblocks() -> None:
    print("=== 2. Hyperblocks (predication) vs treegions (speculation) ===")
    program = build_benchmark("m88ksim")
    base = baseline_time(program)
    options = ScheduleOptions(heuristic="global_weight")
    tree = evaluate_program(program, treegion_scheme(), VLIW_4U, options)
    hyper = evaluate_program(program, hyperblock_scheme(), VLIW_4U, options)
    print(f"treegion   speedup {base / tree.time:5.2f}x  "
          f"(speculated ops: {tree.total_speculated}, "
          f"rename copies: {tree.total_copies})")
    print(f"hyperblock speedup {base / hyper.time:5.2f}x  "
          f"(speculated ops: {hyper.total_speculated}, "
          f"rename copies: {hyper.total_copies})")
    print("speculation starts off-path work before branches resolve; "
          "predication\nserializes it behind the guard chain but needs no "
          "duplication or renaming.\n")


def study_dynamic() -> None:
    print("=== 3. Static treegions vs an out-of-order core (4-issue) ===")
    options = ScheduleOptions(heuristic="global_weight")
    print(f"{'program':13s} {'tree 4U':>8s} {'ooo w=32':>9s} "
          f"{'dataflow limit':>15s}")
    for name in minic_program_names():
        program, args = build_minic_program(name)
        _result, trace = collect_trace(program, args)
        profile_program(program, inputs=[args])
        _res, bb1 = simulate(program, bb_scheme(), universal_machine(1),
                             args, options)
        _res, tree = simulate(program, treegion_scheme(), VLIW_4U, args,
                              options)
        ooo = simulate_trace(trace, DynamicParams(issue_width=4, window=32))
        limit = dataflow_limit(trace)
        print(f"{name:13s} {bb1.cycles / tree.cycles:8.2f} "
              f"{bb1.cycles / ooo.cycles:9.2f} "
              f"{bb1.cycles / limit:15.2f}")
    print("the OoO core schedules across region and loop boundaries — the "
          "paper\ndefers both to software pipelining; on chain-bound code "
          "(fib) static\nand dynamic converge to the dataflow limit.")


def main() -> None:
    study_profile_variation()
    study_hyperblocks()
    study_dynamic()


if __name__ == "__main__":
    main()
