#!/usr/bin/env python3
"""The four treegion scheduling heuristics on the paper's pathologies.

Builds the three CFG shapes the paper uses to explain its Figure 8
results — the biased treegion (Figure 7, ijpeg), the wide shallow
switch-rooted treegion (Figure 9, gcc/perl), and the linearized treegion
(Figure 10, vortex) — and schedules each under all four heuristics,
showing exactly the failure modes Section 3 describes.

Run:  python examples/heuristic_comparison.py
"""

from repro.core import form_treegions
from repro.machine import VLIW_4U
from repro.schedule import HEURISTICS, ScheduleOptions, schedule_region
from repro.workloads.pathological import (
    build_biased_treegion,
    build_linearized_treegion,
    build_wide_shallow_treegion,
)

SHAPES = [
    ("Figure 7: biased treegion (ijpeg)", build_biased_treegion(depth=4)),
    ("Figure 9: wide shallow treegion (gcc/perl)",
     build_wide_shallow_treegion(fanout=10, hot_case=5)),
    ("Figure 10: linearized treegion (vortex)",
     build_linearized_treegion(length=6)),
]


def main() -> None:
    for title, program in SHAPES:
        fn = program.entry_function
        partition = form_treegions(fn.cfg)
        region = partition.region_of(fn.cfg.entry)
        print(f"=== {title} ===")
        print(f"    {region.block_count} blocks, {region.op_count} ops, "
              f"{region.path_count} paths, {len(region.exits())} exits")
        results = {}
        for heuristic in HEURISTICS:
            schedule = schedule_region(
                region, VLIW_4U, ScheduleOptions(heuristic=heuristic)
            )
            results[heuristic] = schedule
        best = min(results, key=lambda h: results[h].weighted_time)
        for heuristic in HEURISTICS:
            schedule = results[heuristic]
            marker = "  <-- best" if heuristic == best else ""
            hot = max(schedule.exits, key=lambda r: r.weight)
            print(f"    {heuristic:15s} weighted time {schedule.weighted_time:8.0f}"
                  f"  (hot exit retires @ cycle {hot.cycle}){marker}")
        print()

    print("Paper's conclusions, visible above:")
    print(" * exit count delays the hot destination of wide shallow trees")
    print("   ('the branch destinations with the highest exit count are not")
    print("    necessarily the most often executed');")
    print(" * under equal weights, weighted count degenerates to exit count")
    print("   and delays the linearized tree's bottom exit;")
    print(" * global weight is never worse than the alternatives here.")


if __name__ == "__main__":
    main()
