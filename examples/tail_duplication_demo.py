#!/usr/bin/env python3
"""Tail duplication and dominator parallelism on a synthetic benchmark.

Takes the 'li' SPECint95 stand-in, forms treegions with tail duplication
at several code-expansion limits, and reports region growth, realized
expansion (Table 3), and the schedule-time effect of dominator
parallelism (Section 4).

Run:  python examples/tail_duplication_demo.py
"""

from repro.core import TreegionLimits, form_treegions, form_treegions_td
from repro.ir.clone import clone_program
from repro.machine import VLIW_8U
from repro.regions import partition_stats
from repro.schedule import ScheduleOptions
from repro.evaluation import (
    baseline_time,
    evaluate_program,
    superblock_scheme,
    treegion_td_scheme,
)
from repro.workloads.specint import build_benchmark

BENCH = "li"


def main() -> None:
    program = build_benchmark(BENCH)
    fn = program.entry_function
    original_ops = fn.cfg.total_ops
    base = baseline_time(program)

    print(f"benchmark '{BENCH}': {len(fn.cfg)} blocks, {original_ops} ops")
    plain = partition_stats([form_treegions(fn.cfg)])
    print(f"plain treegions: {plain}")
    print()

    print(f"{'limit':>6s} {'regions':>8s} {'avg#bb':>7s} {'avg#ops':>8s} "
          f"{'expansion':>10s} {'speedup@8U':>11s} {'merged':>7s}")
    options = ScheduleOptions(heuristic="global_weight",
                              dominator_parallelism=True)
    for limit in (1.0, 1.5, 2.0, 3.0):
        worked = clone_program(program)
        wfn = worked.entry_function
        partition = form_treegions_td(
            wfn.cfg, TreegionLimits(code_expansion=limit)
        )
        stats = partition_stats([partition])
        expansion = wfn.cfg.total_ops / original_ops
        result = evaluate_program(
            program, treegion_td_scheme(TreegionLimits(code_expansion=limit)),
            VLIW_8U, options,
        )
        print(f"{limit:6.1f} {stats.region_count:8d} {stats.avg_blocks:7.2f} "
              f"{stats.avg_ops:8.2f} {expansion:10.2f} "
              f"{base / result.time:10.2f}x {result.total_merged:7d}")

    sb = evaluate_program(program, superblock_scheme(), VLIW_8U, options)
    print(f"\nsuperblocks for comparison: expansion {sb.code_expansion:.2f}, "
          f"speedup {base / sb.time:.2f}x")
    print("(the paper's Figure 13: tail-duplicated treegions beat "
          "superblocks by 15-20%)")


if __name__ == "__main__":
    main()
