#!/usr/bin/env python3
"""Full compiler pipeline on a real (small) program.

Compiles a minic implementation of insertion sort + checksum, profiles it
by execution (the paper's training-input methodology), forms regions under
every scheme, schedules for the 4U and 8U machines, *executes the
schedules* on the VLIW simulator, and cross-checks everything against the
sequential interpreter.

Run:  python examples/minic_pipeline.py
"""

from repro.core.tail_duplication import TreegionLimits
from repro.interp import Interpreter, profile_program
from repro.lang import compile_source
from repro.machine import PAPER_MACHINES
from repro.schedule import ScheduleOptions
from repro.evaluation import (
    baseline_time,
    bb_scheme,
    evaluate_program,
    slr_scheme,
    superblock_scheme,
    treegion_scheme,
    treegion_td_scheme,
)
from repro.vliw import simulate

SOURCE = """
array data[16] = {14, 3, 9, 1, 12, 7, 15, 2, 8, 11, 5, 13, 4, 10, 6, 0};
var comparisons = 0;

func sort(n) {
    for (var i = 1; i < n; i = i + 1) {
        var key = data[i];
        var j = i - 1;
        while (j >= 0 && data[j] > key) {
            data[j + 1] = data[j];
            j = j - 1;
            comparisons = comparisons + 1;
        }
        data[j + 1] = key;
    }
    return comparisons;
}

func checksum(n) {
    var acc = 0;
    for (var i = 0; i < n; i = i + 1) {
        acc = acc * 31 + data[i];
        if (acc > 100000) { acc = acc % 99991; }
    }
    return acc;
}

func main(n) {
    var c = sort(n);
    return checksum(n) + c;
}
"""

TRAINING_INPUT = [16]

SCHEMES = [
    ("basic blocks", bb_scheme()),
    ("SLR", slr_scheme()),
    ("superblock", superblock_scheme()),
    ("treegion", treegion_scheme()),
    ("treegion-td(3.0)",
     treegion_td_scheme(TreegionLimits(code_expansion=3.0))),
]


def main() -> None:
    program = compile_source(SOURCE)
    print(f"compiled: {len(program)} functions, "
          f"{sum(f.cfg.total_ops for f in program.functions())} ops, "
          f"{sum(len(f.cfg) for f in program.functions())} blocks")

    expected = Interpreter(program).run(TRAINING_INPUT)
    print(f"reference result (sequential interpreter): {expected}")

    profile_program(program, inputs=[TRAINING_INPUT])
    base = baseline_time(program)
    print(f"baseline (basic blocks on the 1-issue machine): {base:g} "
          f"estimated cycles\n")

    options = ScheduleOptions(heuristic="global_weight",
                              dominator_parallelism=True)
    header = f"{'scheme':18s}" + "".join(
        f" {name + ' est':>12s} {name + ' sim':>12s}" for name in PAPER_MACHINES
    )
    print(header)
    for name, scheme in SCHEMES:
        cells = []
        for machine in PAPER_MACHINES.values():
            estimate = evaluate_program(program, scheme, machine, options)
            result, simulator = simulate(program, scheme, machine,
                                         TRAINING_INPUT, options)
            assert result == expected, (
                f"{name} on {machine.name} mis-executed: {result}"
            )
            cells.append(f" {base / estimate.time:11.2f}x")
            cells.append(f" {base / simulator.cycles:11.2f}x")
        print(f"{name:18s}" + "".join(cells))
    print("\n('est' = speedup from profile-weighted schedule heights, the "
          "paper's metric;\n 'sim' = speedup from actually executing the "
          "schedules cycle by cycle —\n identical when the profile input "
          "matches the simulated input)")


if __name__ == "__main__":
    main()
