#!/usr/bin/env python3
"""Quickstart: build a CFG, form treegions, schedule, inspect.

Builds the classic if/else diamond by hand with the IR builder, forms
treegions (Figure 2 of the paper), and schedules the root treegion for the
paper's 4-issue machine with the global-weight heuristic.

Run:  python examples/quickstart.py
"""

from repro.core import form_treegions
from repro.ir import CompareCond, Function, IRBuilder, format_function
from repro.machine import VLIW_4U
from repro.schedule import ScheduleOptions, schedule_region


def build_function() -> Function:
    """if (x > 0) { a = x*2; } else { a = -x; }  return a + 1."""
    fn = Function("quickstart")
    b = IRBuilder(fn)
    entry, hot, cold, join = (b.block(n) for n in
                              ("entry", "hot", "cold", "join"))

    b.at(entry)
    x = b.ld(0, 0)                       # x = MEM[0]
    a = b.mov(0)
    p = b.cmpp(CompareCond.GT, x, 0)     # p = (x > 0)
    b.br_true(p, hot, cold)

    b.at(hot)
    b.mul(x, 2, dest=a)
    b.jump(join)

    b.at(cold)
    b.neg(x, dest=a)
    b.fallthrough(join)

    b.at(join)
    result = b.add(a, 1)
    b.ret(result)

    # Attach a profile: the hot arm runs 90% of the time.
    entry.weight, hot.weight, cold.weight, join.weight = 100, 90, 10, 100
    entry.taken_edge.weight = 90
    entry.fallthrough_edge.weight = 10
    hot.taken_edge.weight = 90
    cold.fallthrough_edge.weight = 10
    return fn


def main() -> None:
    fn = build_function()
    print("=== IR ===")
    print(format_function(fn))

    partition = form_treegions(fn.cfg)
    print(f"\n=== Treegions ({len(partition)}) ===")
    for region in partition:
        names = ", ".join(b.name for b in region.blocks)
        print(f"  {region.kind} #{region.rid}: [{names}] "
              f"paths={region.path_count} ops={region.op_count}")

    top = partition.region_of(fn.cfg.entry)
    schedule = schedule_region(
        top, VLIW_4U, ScheduleOptions(heuristic="global_weight")
    )
    print("\n=== Schedule of the root treegion (4U, global weight) ===")
    print(schedule.format())
    print(f"\nprofile-weighted time: {schedule.weighted_time:g} cycles")
    print(f"speculated ops: {schedule.speculated_count}, "
          f"rename copies recorded: {len(schedule.copies)}")


if __name__ == "__main__":
    main()
