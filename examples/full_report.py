#!/usr/bin/env python3
"""Generate a full experiment report as markdown.

Runs a scaled-down version of every study in the repository (two
benchmarks by default; pass names to widen) and writes ``REPORT.md``.

Run:  python examples/full_report.py [benchmark ...]
"""

import pathlib
import sys

from repro.evaluation.report import generate_report


def main() -> None:
    benchmarks = sys.argv[1:] or ["compress", "li"]
    report = generate_report(benchmarks)
    out = pathlib.Path("REPORT.md")
    out.write_text(report)
    print(report)
    print(f"(written to {out.resolve()})")


if __name__ == "__main__":
    main()
