#!/usr/bin/env python3
"""The paper's worked example: Figures 1, 4, 5, and 12 end to end.

Reconstructs the exact CFG of Figure 1 (registers, weights 35/25/40),
then:

1. forms treegions and shows the topmost one ({bb1,bb2,bb3,bb4,bb8});
2. schedules it for the example's 4-issue unit-latency machine and prints
   the MultiOp table (compare with the paper's Figure 5, 500 cycles);
3. compares against duplication-free superblocks (Figure 4, 525 cycles);
4. applies tail duplication (Figure 12: bb5 duplicated) and shows
   dominator parallelism merging the duplicated op.

Run:  python examples/paper_example.py
"""

from repro.core import TreegionLimits, form_treegions, form_treegions_td
from repro.ir.clone import clone_program
from repro.regions import SuperblockLimits
from repro.schedule import ScheduleOptions, schedule_region
from repro.evaluation import (
    evaluate_program,
    superblock_scheme,
    treegion_scheme,
    treegion_td_scheme,
)
from repro.vliw import simulate
from repro.workloads.paper_example import (
    build_paper_example,
    paper_example_machine,
)

MACHINE = paper_example_machine(4)
OPTIONS = ScheduleOptions(heuristic="global_weight")


def main() -> None:
    program = build_paper_example()
    fn = program.entry_function

    print("=== Figure 1: treegion formation ===")
    partition = form_treegions(fn.cfg)
    top = partition.region_of(fn.cfg.entry)
    print(f"topmost treegion: {[b.name for b in top.blocks]} "
          f"({top.path_count} paths)")
    for exit in top.exits():
        print(f"  exit {exit!r}")

    print("\n=== Figure 5: treegion schedule (4-issue, unit latency) ===")
    schedule = schedule_region(top, MACHINE, OPTIONS)
    print(schedule.format())
    print(f"estimated region time: {schedule.weighted_time:g} "
          f"(paper's Figure 5: 500)")

    print("\n=== Figure 4 vs 5: superblock vs treegion, whole program ===")
    tree = evaluate_program(program, treegion_scheme(), MACHINE, OPTIONS)
    sb = evaluate_program(
        program, superblock_scheme(SuperblockLimits(expansion_limit=1.0)),
        MACHINE, OPTIONS,
    )
    print(f"treegion estimate:   {tree.time:g} cycles")
    print(f"superblock estimate: {sb.time:g} cycles "
          f"(paper: 500 vs 525 for the scheduled sections)")

    print("\n=== Figure 12: tail duplication + dominator parallelism ===")
    worked = clone_program(program)
    td_partition = form_treegions_td(worked.entry_function.cfg,
                                     TreegionLimits(code_expansion=3.0))
    td_top = td_partition.region_of(worked.entry_function.cfg.entry)
    print(f"after tail duplication: {[b.name for b in td_top.blocks]}")
    td_schedule = schedule_region(
        td_top, MACHINE,
        ScheduleOptions(heuristic="global_weight",
                        dominator_parallelism=True),
    )
    print(f"dominator parallelism merged {len(td_schedule.merged)} "
          f"duplicated op(s):")
    for merged in td_schedule.merged:
        print(f"  {merged!r} -> kept {merged.merged_into!r}")

    print("\n=== Executing the schedules (A=7, B=3: takes the bb8 path) ===")
    for scheme in (treegion_scheme(),
                   treegion_td_scheme(TreegionLimits(code_expansion=3.0))):
        result, simulator = simulate(
            program, scheme, MACHINE, [],
            ScheduleOptions(heuristic="global_weight",
                            dominator_parallelism=True),
        )
        print(f"{scheme.name:18s} returned {result} "
              f"in {simulator.cycles} dynamic cycles")


if __name__ == "__main__":
    main()
