"""Observability: hierarchical tracing + deterministic metrics.

See :mod:`repro.obs.tracer` and :mod:`repro.obs.metrics` for the two
in-process halves, and :mod:`repro.obs.distributed` for cross-process
trace-context propagation and the ``merge_traces()`` collector;
DESIGN.md ("Observability", "Fleet observability") describes how the
evaluation engine merges worker registries, why serial and parallel
runs report identical counters, and how a fleet request becomes one
merged Perfetto timeline.
"""

from repro.obs.distributed import (
    NULL_DTRACER,
    DistributedTracer,
    MergedSpan,
    MergedTrace,
    NullDistributedTracer,
    merge_traces,
    new_span_id,
    new_trace_id,
)
from repro.obs.metrics import (
    NULL_METRICS,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    RollingHistogram,
    current_metrics,
    metrics_scope,
    observability_snapshot,
    write_observability_json,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "RollingHistogram",
    "current_metrics",
    "metrics_scope",
    "observability_snapshot",
    "write_observability_json",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "DistributedTracer",
    "NullDistributedTracer",
    "NULL_DTRACER",
    "MergedSpan",
    "MergedTrace",
    "merge_traces",
    "new_trace_id",
    "new_span_id",
]
