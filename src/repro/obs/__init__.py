"""Observability: hierarchical tracing + deterministic metrics.

See :mod:`repro.obs.tracer` and :mod:`repro.obs.metrics` for the two
halves; DESIGN.md ("Observability") describes how the evaluation engine
merges worker registries and why serial and parallel runs report
identical counters.
"""

from repro.obs.metrics import (
    NULL_METRICS,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    current_metrics,
    metrics_scope,
    observability_snapshot,
    write_observability_json,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "current_metrics",
    "metrics_scope",
    "observability_snapshot",
    "write_observability_json",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
]
