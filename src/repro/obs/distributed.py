"""Distributed tracing: spans that cross process boundaries.

PR 3's :class:`~repro.obs.tracer.Tracer` records one process's span
*stack*; a fleet request touches four — the client, the asyncio
front-end, the shard dispatch thread, and a pool worker — so this
module adds the three pieces a multi-process trace needs:

* **Trace context** — every request carries a ``trace_id`` (one per
  logical client request) and a ``parent_span_id`` (the span that
  caused this hop).  The wire protocol ships both as *optional* fields
  (:class:`~repro.serve.wire.CompileRequest`), so version-1 peers that
  never heard of tracing interoperate unchanged.

* **A per-process exporter** — :class:`DistributedTracer` writes each
  finished span as one JSONL line to
  ``<dir>/trace-<service>-<pid>.jsonl``, appended and flushed *at span
  close*, so spans survive a shard kill or a worker process being torn
  down mid-batch.  Spans are explicitly parented (no thread-local
  stack), which is what lets the fleet hold spans open across its
  dispatcher/supervisor/callback threads.  Timestamps are wall-clock
  (``time.time``), the only clock processes share.

* **A collector** — :func:`merge_traces` reads every per-process file
  under a directory into one :class:`MergedTrace`: a queryable span
  forest (``roots()``/``children()``/``tree()``) plus a Chrome
  trace-event export that loads in Perfetto with one named track per
  process and flow arrows stitching parent→child hops across
  processes.

Spans carry free-form ``annotations`` (plain strings); the fleet marks
a dispatch that re-ran a request after a shard death with
``supervisor.restart``, which is how a merged trace shows exactly
which hops a chaos event cost.

Everything is opt-in: with no trace directory configured the
:data:`NULL_DTRACER` singleton hands out a shared no-op span whose
``trace_id``/``span_id`` are ``None``, so instrumentation points cost
an attribute read and the wire fields stay absent.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from typing import Callable, Dict, Iterable, List, Optional, Union


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id (one per logical client request)."""
    return uuid.uuid4().hex


def new_span_id() -> str:
    """A fresh 16-hex-char span id."""
    return os.urandom(8).hex()


class DistSpan:
    """One explicitly-parented span, open until :meth:`finish`."""

    __slots__ = ("tracer", "trace_id", "span_id", "parent_span_id",
                 "name", "start", "args", "annotations", "_done")

    def __init__(self, tracer: "DistributedTracer", name: str,
                 trace_id: str, parent_span_id: Optional[str],
                 args: Dict[str, object]):
        self.tracer = tracer
        self.trace_id = trace_id
        self.span_id = new_span_id()
        self.parent_span_id = parent_span_id
        self.name = name
        self.start = tracer._clock()
        self.args = args
        self.annotations: List[str] = []
        self._done = False

    def annotate(self, tag: str) -> None:
        """Attach a plain-string marker (e.g. ``supervisor.restart``)."""
        if tag not in self.annotations:
            self.annotations.append(tag)

    def set(self, **args) -> None:
        """Merge more attributes into the span."""
        self.args.update(args)

    def finish(self, **args) -> None:
        """Close the span and export it (idempotent)."""
        if self._done:
            return
        self._done = True
        if args:
            self.args.update(args)
        self.tracer._export(self)

    def __enter__(self) -> "DistSpan":
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        if exc is not None:
            self.annotate("error")
            self.args.setdefault("error", f"{type(exc).__name__}: {exc}")
        self.finish()
        return False


class _NullDistSpan:
    """Shared no-op span; its ids are None so nothing propagates."""

    __slots__ = ()
    trace_id = None
    span_id = None
    parent_span_id = None

    def annotate(self, tag: str) -> None:
        pass

    def set(self, **args) -> None:
        pass

    def finish(self, **args) -> None:
        pass

    def __enter__(self) -> "_NullDistSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_DSPAN = _NullDistSpan()


class NullDistributedTracer:
    """No-op :class:`DistributedTracer` stand-in."""

    __slots__ = ()
    enabled = False

    def start_span(self, name: str, *, trace_id=None,
                   parent_span_id=None, **args) -> _NullDistSpan:
        return _NULL_DSPAN

    def set_enabled(self, enabled: bool) -> None:
        pass

    def close(self) -> None:
        pass


#: Shared no-op tracer: ``dtracer = dtracer or NULL_DTRACER``.
NULL_DTRACER = NullDistributedTracer()


class DistributedTracer:
    """Per-process span factory + JSONL exporter for one service role.

    Args:
        directory: Export directory; one ``trace-<service>-<pid>.jsonl``
            file per process (created lazily on the first span, so
            merely constructing a tracer writes nothing).
        service: Process role stamped on every span (``client`` /
            ``frontend`` / ``fleet`` / ``worker``).
        shard: Optional shard index stamped on every span.
        clock: Wall-clock source (``time.time``; injectable for tests).
            Must be an epoch clock — it is the only clock the merged
            processes share.
    """

    def __init__(self, directory: str, service: str,
                 shard: Optional[int] = None,
                 clock: Callable[[], float] = time.time):
        self.directory = directory
        self.service = service
        self.shard = shard
        self.enabled = True
        self._clock = clock
        self._lock = threading.Lock()
        self._handle = None
        self._pid: Optional[int] = None

    def set_enabled(self, enabled: bool) -> None:
        """Toggle span creation live (disabled spans are no-ops)."""
        self.enabled = enabled

    def start_span(self, name: str, *, trace_id: Optional[str] = None,
                   parent_span_id: Optional[str] = None,
                   **args) -> Union[DistSpan, _NullDistSpan]:
        """Open one span.

        ``trace_id=None`` starts a fresh trace (this span is a root);
        ``parent_span_id`` links the span under a possibly-remote
        parent.  Returns the no-op span when tracing is disabled.
        """
        if not self.enabled:
            return _NULL_DSPAN
        return DistSpan(self, name, trace_id or new_trace_id(),
                        parent_span_id, args)

    # ------------------------------------------------------------------

    def _file(self):
        pid = os.getpid()
        if self._handle is None or self._pid != pid:
            # A fork (pool worker) inherits the parent's handle; writing
            # through it would interleave two processes into one file.
            os.makedirs(self.directory, exist_ok=True)
            path = os.path.join(
                self.directory, f"trace-{self.service}-{pid}.jsonl")
            self._handle = open(path, "a")
            self._pid = pid
        return self._handle

    def _export(self, span: DistSpan) -> None:
        record = {
            "trace": span.trace_id,
            "span": span.span_id,
            "parent": span.parent_span_id,
            "name": span.name,
            "service": self.service,
            "shard": self.shard,
            "pid": os.getpid(),
            "start": span.start,
            "end": self._clock(),
            "args": span.args,
            "annotations": span.annotations,
        }
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        with self._lock:
            handle = self._file()
            handle.write(line)
            handle.flush()  # spans must survive an abrupt kill

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
                self._pid = None


# ----------------------------------------------------------------------
# The collector


class MergedSpan:
    """One span read back from a per-process trace file."""

    __slots__ = ("trace_id", "span_id", "parent_span_id", "name",
                 "service", "shard", "pid", "start", "end", "args",
                 "annotations")

    def __init__(self, record: Dict[str, object]):
        self.trace_id = record.get("trace")
        self.span_id = record.get("span")
        self.parent_span_id = record.get("parent")
        self.name = str(record.get("name", ""))
        self.service = str(record.get("service", ""))
        self.shard = record.get("shard")
        self.pid = int(record.get("pid", 0))
        self.start = float(record.get("start", 0.0))
        self.end = float(record.get("end", 0.0))
        self.args = dict(record.get("args") or {})
        self.annotations = list(record.get("annotations") or [])

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __repr__(self) -> str:
        return (f"<span {self.service}:{self.name} trace={self.trace_id} "
                f"{self.duration * 1e3:.3f}ms>")


class MergedTrace:
    """All spans of one trace directory, queryable as a forest."""

    def __init__(self, spans: List[MergedSpan]):
        self.spans = sorted(spans, key=lambda s: (s.start, s.name))
        self._children: Dict[str, List[MergedSpan]] = {}
        self._by_id: Dict[str, MergedSpan] = {}
        for span in self.spans:
            if span.span_id:
                self._by_id[span.span_id] = span
            if span.parent_span_id:
                self._children.setdefault(
                    span.parent_span_id, []).append(span)

    def __len__(self) -> int:
        return len(self.spans)

    def trace_ids(self) -> List[str]:
        seen, out = set(), []
        for span in self.spans:
            if span.trace_id and span.trace_id not in seen:
                seen.add(span.trace_id)
                out.append(span.trace_id)
        return out

    def roots(self, trace_id: Optional[str] = None) -> List[MergedSpan]:
        """Spans with no (present) parent — client-side request roots."""
        return [
            span for span in self.spans
            if (trace_id is None or span.trace_id == trace_id)
            and (span.parent_span_id is None
                 or span.parent_span_id not in self._by_id)
        ]

    def children(self, span: MergedSpan) -> List[MergedSpan]:
        return self._children.get(span.span_id, [])

    def find(self, name: Optional[str] = None,
             service: Optional[str] = None,
             annotation: Optional[str] = None,
             trace_id: Optional[str] = None) -> List[MergedSpan]:
        return [
            span for span in self.spans
            if (name is None or span.name == name)
            and (service is None or span.service == service)
            and (annotation is None or annotation in span.annotations)
            and (trace_id is None or span.trace_id == trace_id)
        ]

    def tree(self, trace_id: str) -> List[Dict[str, object]]:
        """The trace's span forest as nested dicts (test-friendly)."""

        def node(span: MergedSpan) -> Dict[str, object]:
            return {
                "name": span.name,
                "service": span.service,
                "shard": span.shard,
                "annotations": list(span.annotations),
                "args": dict(span.args),
                "children": [node(child)
                             for child in self.children(span)],
            }

        return [node(root) for root in self.roots(trace_id)]

    def services(self) -> List[str]:
        return sorted({span.service for span in self.spans})

    # ------------------------------------------------------------------

    def to_chrome(self) -> Dict[str, object]:
        """Chrome trace-event JSON spanning every process.

        Each (service, pid) pair becomes one named Perfetto process
        track; spans are complete (``"ph": "X"``) events, and every
        cross-span parent link becomes a flow arrow (``"s"``/``"f"``)
        so a client root visibly fans into its frontend/shard/worker
        hops.
        """
        if not self.spans:
            return {"traceEvents": [], "displayTimeUnit": "ms"}
        epoch = min(span.start for span in self.spans)
        processes: Dict[tuple, int] = {}
        events: List[Dict[str, object]] = []
        for span in self.spans:
            key = (span.service, span.pid)
            if key not in processes:
                pid = len(processes) + 1
                processes[key] = pid
                label = f"{span.service} (pid {span.pid})"
                if span.shard is not None:
                    label = f"{span.service} shard {span.shard}"
                events.append({
                    "name": "process_name", "ph": "M", "pid": pid,
                    "tid": 0, "args": {"name": label},
                })
        flow = 0
        for span in self.spans:
            pid = processes[(span.service, span.pid)]
            args = dict(span.args)
            args["trace_id"] = span.trace_id
            if span.annotations:
                args["annotations"] = ",".join(span.annotations)
            events.append({
                "name": span.name,
                "cat": span.service,
                "ph": "X",
                "ts": (span.start - epoch) * 1e6,
                "dur": max(span.duration, 0.0) * 1e6,
                "pid": pid,
                "tid": 0,
                "args": args,
            })
            parent = self._by_id.get(span.parent_span_id or "")
            if parent is not None:
                flow += 1
                parent_pid = processes[(parent.service, parent.pid)]
                ts_start = max(parent.start, epoch)
                events.append({
                    "name": "request", "cat": "flow", "ph": "s",
                    "id": flow, "ts": (ts_start - epoch) * 1e6,
                    "pid": parent_pid, "tid": 0,
                })
                events.append({
                    "name": "request", "cat": "flow", "ph": "f",
                    "bp": "e", "id": flow,
                    "ts": (span.start - epoch) * 1e6,
                    "pid": pid, "tid": 0,
                })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_chrome(), handle, indent=1)
            handle.write("\n")

    def __repr__(self) -> str:
        return (f"<MergedTrace {len(self.spans)} spans, "
                f"{len(self.trace_ids())} traces, "
                f"services={self.services()}>")


def read_span_file(path: str) -> List[MergedSpan]:
    """Parse one per-process JSONL file, skipping torn trailing lines
    (a killed process may have been mid-write)."""
    spans: List[MergedSpan] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn write from a killed process
            if isinstance(record, dict) and record.get("span"):
                spans.append(MergedSpan(record))
    return spans


def merge_traces(source: Union[str, Iterable[str]]) -> MergedTrace:
    """Stitch per-process span files into one :class:`MergedTrace`.

    ``source`` is a trace directory (every ``trace-*.jsonl`` under it)
    or an explicit iterable of file paths.
    """
    if isinstance(source, str):
        paths = sorted(
            os.path.join(source, name)
            for name in os.listdir(source)
            if name.startswith("trace-") and name.endswith(".jsonl")
        )
    else:
        paths = list(source)
    spans: List[MergedSpan] = []
    for path in paths:
        spans.extend(read_span_file(path))
    return MergedTrace(spans)
