"""Hierarchical tracing: nested spans with wall time and attributes.

A :class:`Tracer` records *spans* — named, attributed intervals nested by
a span stack — so one run of the pipeline can be replayed as a tree
("evaluate_program" → "function f" → "formation" / "schedule_region" →
"prep"/"renaming"/"ddg"/"list_schedule").  Two export formats:

* **JSONL** (:meth:`Tracer.write_jsonl`): one JSON object per finished
  span with its id, parent id, depth, relative start/end, and attributes
  — grep- and pandas-friendly;
* **Chrome trace-event JSON** (:meth:`Tracer.to_chrome` /
  :meth:`Tracer.write_chrome`): the ``{"traceEvents": [...]}`` format
  that loads directly in ``chrome://tracing`` and Perfetto.

Uninstrumented code paths use :data:`NULL_TRACER`, a shared no-op
mirroring :data:`repro.util.timing.NULL_TIMER`: ``span()`` returns a
reusable singleton context manager and never reads the clock, so passing
no tracer costs an attribute call per instrumentation point.

Timestamps come from ``time.perf_counter`` (injectable for tests);
exports normalize to the first span's start, so absolute clock epochs
never leak into the files.
"""

from __future__ import annotations

import json
import os
from time import perf_counter
from typing import Callable, Dict, List, Optional


class Span:
    """One finished (or still-open) traced interval."""

    __slots__ = ("sid", "parent", "name", "depth", "start", "end", "args")

    def __init__(self, sid: int, parent: Optional[int], name: str,
                 depth: int, start: float, args: Dict[str, object]):
        self.sid = sid
        self.parent = parent
        self.name = name
        self.depth = depth
        self.start = start
        self.end: Optional[float] = None
        self.args = args

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    def __repr__(self) -> str:
        state = f"{self.duration * 1e3:.3f}ms" if self.end is not None \
            else "open"
        return f"<span {self.sid} {self.name!r} depth={self.depth} {state}>"


class _SpanHandle:
    """Context manager opening one span on enter, closing it on exit."""

    __slots__ = ("_tracer", "_span", "_name", "_args")

    def __init__(self, tracer: "Tracer", name: str, args: Dict[str, object]):
        self._tracer = tracer
        # The span is created on __enter__, not here, so building a
        # handle without entering it records nothing.
        self._span: Optional[Span] = None
        self._name = name
        self._args = args

    def __enter__(self) -> Span:
        self._span = self._tracer._open(self._name, self._args)
        return self._span

    def __exit__(self, *exc) -> bool:
        assert self._span is not None
        self._tracer._close(self._span)
        return False


class Tracer:
    """Collects nested spans and instant events for one run."""

    def __init__(self, clock: Callable[[], float] = perf_counter):
        self._clock = clock
        #: Every span ever opened, in open order (start-time order).
        self.spans: List[Span] = []
        #: Instant events: (timestamp, parent span id or None, name, args).
        self.events: List[tuple] = []
        self._stack: List[Span] = []

    # ------------------------------------------------------------------

    def span(self, name: str, **args) -> _SpanHandle:
        """Context manager recording one nested span named ``name``."""
        return _SpanHandle(self, name, args)

    def event(self, name: str, **args) -> None:
        """Record an instant (zero-duration) event at the current depth."""
        parent = self._stack[-1].sid if self._stack else None
        self.events.append((self._clock(), parent, name, args))

    def _open(self, name: str, args: Dict[str, object]) -> Span:
        parent = self._stack[-1] if self._stack else None
        span = Span(
            sid=len(self.spans),
            parent=parent.sid if parent is not None else None,
            name=name,
            depth=len(self._stack),
            start=self._clock(),
            args=args,
        )
        self.spans.append(span)
        self._stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        span.end = self._clock()
        # Exceptions can leave deeper spans open; unwind to this span.
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()

    # ------------------------------------------------------------------

    def finished_spans(self) -> List[Span]:
        return [span for span in self.spans if span.end is not None]

    def _epoch(self) -> float:
        starts = [span.start for span in self.spans]
        starts.extend(ts for ts, _parent, _name, _args in self.events)
        return min(starts) if starts else 0.0

    def to_chrome(self, process_name: str = "repro") -> Dict[str, object]:
        """The Chrome trace-event JSON object (``chrome://tracing`` /
        Perfetto).  Spans become complete (``"ph": "X"``) events with
        microsecond timestamps relative to the first span."""
        epoch = self._epoch()
        pid = os.getpid()
        events: List[Dict[str, object]] = [{
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        }]
        for span in self.finished_spans():
            events.append({
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": (span.start - epoch) * 1e6,
                "dur": span.duration * 1e6,
                "pid": pid,
                "tid": 0,
                "args": dict(span.args),
            })
        for ts, _parent, name, args in self.events:
            events.append({
                "name": name,
                "cat": "repro",
                "ph": "i",
                "s": "t",
                "ts": (ts - epoch) * 1e6,
                "pid": pid,
                "tid": 0,
                "args": dict(args),
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome(self, path: str, process_name: str = "repro") -> None:
        with open(path, "w") as handle:
            json.dump(self.to_chrome(process_name), handle, indent=1)
            handle.write("\n")

    def write_jsonl(self, path: str) -> None:
        """One JSON object per finished span, in start order."""
        epoch = self._epoch()
        with open(path, "w") as handle:
            for span in self.finished_spans():
                handle.write(json.dumps({
                    "sid": span.sid,
                    "parent": span.parent,
                    "name": span.name,
                    "depth": span.depth,
                    "start": span.start - epoch,
                    "end": (span.end or span.start) - epoch,
                    "dur": span.duration,
                    "args": dict(span.args),
                }, sort_keys=True))
                handle.write("\n")

    def format_summary(self, top: int = 8) -> str:
        """Human summary: span count plus the slowest span names."""
        finished = self.finished_spans()
        totals: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for span in finished:
            totals[span.name] = totals.get(span.name, 0.0) + span.duration
            counts[span.name] = counts.get(span.name, 0) + 1
        lines = [f"{len(finished)} spans, {len(self.events)} events"]
        for name in sorted(totals, key=totals.get, reverse=True)[:top]:
            lines.append(
                f"{name:>20s}  {totals[name]:8.4f}s  x{counts[name]}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<Tracer {len(self.spans)} spans>"


class _NullSpanHandle:
    __slots__ = ()

    def __enter__(self) -> "_NullSpanHandle":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpanHandle()


class NullTracer:
    """No-op :class:`Tracer` stand-in; never reads the clock."""

    __slots__ = ()

    def span(self, name: str, **args) -> _NullSpanHandle:
        return _NULL_SPAN

    def event(self, name: str, **args) -> None:
        pass


#: Shared no-op tracer: ``tracer = tracer or NULL_TRACER``.
NULL_TRACER = NullTracer()
