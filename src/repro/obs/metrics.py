"""Named counters, gauges, and histograms with deterministic merging.

A :class:`MetricsRegistry` is the numeric half of the observability
layer: the pipeline counts *what happened* (ops speculated, blocks tail-
duplicated, registers minted by renaming, duplicates merged by dominator
parallelism, simulator squashes) into named metrics, and the evaluation
engine merges worker registries back into the parent exactly like
:meth:`repro.util.timing.StageTimer.merge` merges stage timers.

**Determinism contract.**  Counters and histograms are *deterministic*:
they only record algorithmic events, merging is commutative integer
addition, and snapshots sort their keys — so a serial run and a
``jobs=N`` parallel run of the same grid serialize byte-identically
(``tests/test_obs.py`` enforces this).  Gauges are *point-in-time* facts
(analysis-cache hit counts, process-local state); they merge by ``max``
by default and are explicitly outside the determinism guarantee, which
is why :meth:`MetricsRegistry.deterministic_snapshot` excludes them.

**Gauge merge modes.**  ``max`` is right for cross-worker high-water
marks (``memo.entries``, peak queue depth across a pool), but wrong for
point-in-time facts where the *latest* writer is authoritative (a
shard's current queue depth folded into a fleet snapshot: after the
queue drains, ``max`` would pin the stale peak forever).
:meth:`MetricsRegistry.gauge` therefore takes ``mode="max"`` (default)
or ``mode="last"`` — ``last`` gauges adopt the incoming value on merge.
The fleet uses ``last`` for its own point-in-time gauges (queue depth,
in-flight dedup size, hot-tier occupancy/bytes) and ``max`` for
cross-worker marks shipped back from engine workers (``memo.*``).
Modes ride in snapshots under ``gauge_modes`` — a key emitted only
when some gauge is non-default, so mode-free registries serialize
exactly as before.

Instrumentation points deep in the pipeline (tail duplication, renaming,
prep, the DDG builder) would need a ``metrics`` parameter threaded
through a dozen signatures; instead they read the *active* registry via
:func:`current_metrics`, which callers install with
:func:`metrics_scope`.  With no scope installed the active registry is
:data:`NULL_METRICS`, a shared no-op, so uninstrumented runs pay one
list lookup and a no-op method call per event — events are per-region or
per-duplication, never per scheduled op, so the overhead is unmeasurable
(the engine benchmark thresholds in ``benchmarks/test_perf_engine.py``
hold unchanged).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Tuple


class Histogram:
    """Power-of-two bucketed distribution of non-negative integers."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self):
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None
        #: bucket exponent -> count; a value lands in bucket
        #: ``value.bit_length()`` (so bucket b holds 2^(b-1) .. 2^b - 1).
        self.buckets: Dict[int, int] = {}

    def observe(self, value) -> None:
        v = int(value)
        self.count += 1
        self.total += v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v
        bucket = v.bit_length()
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        for bucket, count in other.buckets.items():
            self.buckets[bucket] = self.buckets.get(bucket, 0) + count

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> Optional[int]:
        """Upper-bound estimate of the ``q``-th percentile (0 < q <= 100).

        Power-of-two buckets bound a value to within 2x: the answer is
        the largest value the bucket holding that rank can contain,
        clamped to the observed min/max.  Exact-percentile callers (the
        load benchmark's latency gate) keep raw samples instead; this
        is for merged histograms where the samples are gone.
        """
        if not self.count:
            return None
        rank = max(1, int(-(-self.count * q // 100)))  # ceil(count*q/100)
        seen = 0
        for bucket in sorted(self.buckets):
            seen += self.buckets[bucket]
            if seen >= rank:
                upper = (1 << bucket) - 1 if bucket else 0
                if self.max is not None:
                    upper = min(upper, self.max)
                if self.min is not None:
                    upper = max(upper, self.min)
                return int(upper)
        return self.max

    def as_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": {str(b): self.buckets[b] for b in sorted(self.buckets)},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Histogram":
        histogram = cls()
        histogram.count = int(data["count"])
        histogram.total = int(data["sum"])
        histogram.min = None if data["min"] is None else int(data["min"])
        histogram.max = None if data["max"] is None else int(data["max"])
        histogram.buckets = {
            int(bucket): int(count)
            for bucket, count in dict(data["buckets"]).items()
        }
        return histogram

    def __repr__(self) -> str:
        return (f"<Histogram n={self.count} sum={self.total} "
                f"min={self.min} max={self.max}>")


class MetricsRegistry:
    """Named counters, gauges, and histograms for one run."""

    __slots__ = ("counters", "gauges", "histograms", "gauge_modes")

    def __init__(self):
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        #: gauge name -> merge mode, recorded only for non-default
        #: ("last") gauges so mode-free snapshots keep the old shape.
        self.gauge_modes: Dict[str, str] = {}

    # ------------------------------------------------------------------

    def inc(self, name: str, value: int = 1) -> None:
        """Add ``value`` to counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float,
              mode: Optional[str] = None) -> None:
        """Set gauge ``name`` to a point-in-time ``value``.

        ``mode`` fixes how the gauge merges: ``"max"`` (default —
        cross-worker high-water mark) or ``"last"`` (incoming value
        wins — current state of a single authoritative writer).
        Omitting ``mode`` keeps whatever mode the gauge already has.
        """
        if mode is not None:
            if mode not in ("max", "last"):
                raise ValueError(f"unknown gauge merge mode: {mode!r}")
            if mode == "last":
                self.gauge_modes[name] = "last"
            else:
                self.gauge_modes.pop(name, None)
        self.gauges[name] = value

    def observe(self, name: str, value) -> None:
        """Record ``value`` into histogram ``name``."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    # ------------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (worker merge): counters and
        histogram buckets add; gauges take the max, unless either side
        marked the gauge ``last``, in which case the incoming value
        wins."""
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        other_modes = getattr(other, "gauge_modes", {})
        for name in other_modes:
            self.gauge_modes.setdefault(name, other_modes[name])
        for name, value in other.gauges.items():
            current = self.gauges.get(name)
            if current is None or self.gauge_modes.get(name) == "last":
                self.gauges[name] = value
            else:
                self.gauges[name] = max(current, value)
        for name, histogram in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = Histogram()
            mine.merge(histogram)

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready snapshot with sorted keys (the wire format workers
        ship back to the engine parent)."""
        snap = {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].as_dict()
                for k in sorted(self.histograms)
            },
        }
        if self.gauge_modes:
            snap["gauge_modes"] = {
                k: self.gauge_modes[k] for k in sorted(self.gauge_modes)
            }
        return snap

    def deterministic_snapshot(self) -> Dict[str, object]:
        """Counters + histograms only — the part guaranteed byte-identical
        between serial and parallel evaluation of the same grid."""
        snap = self.snapshot()
        return {"counters": snap["counters"], "histograms": snap["histograms"]}

    @classmethod
    def from_snapshot(cls, data: Dict[str, object]) -> "MetricsRegistry":
        registry = cls()
        registry.counters = dict(data.get("counters", {}))
        registry.gauges = dict(data.get("gauges", {}))
        registry.gauge_modes = dict(data.get("gauge_modes", {}))
        registry.histograms = {
            name: Histogram.from_dict(hist)
            for name, hist in dict(data.get("histograms", {})).items()
        }
        return registry

    def merge_snapshot(self, data: Dict[str, object]) -> None:
        self.merge(MetricsRegistry.from_snapshot(data))

    # ------------------------------------------------------------------

    def format_table(self) -> str:
        """Plain-text table, stable row and column order for diffing."""
        lines: List[str] = []
        for name in sorted(self.counters):
            lines.append(f"{name:>32s}  {self.counters[name]:>12d}")
        for name in sorted(self.histograms):
            histogram = self.histograms[name]
            lines.append(
                f"{name:>32s}  n={histogram.count} sum={histogram.total} "
                f"min={histogram.min} max={histogram.max} "
                f"mean={histogram.mean:.2f}"
            )
        for name in sorted(self.gauges):
            mode = self.gauge_modes.get(name, "max")
            lines.append(
                f"{name:>32s}  {self.gauges[name]:>12g}  (gauge:{mode})")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"<MetricsRegistry {len(self.counters)} counters, "
                f"{len(self.gauges)} gauges, "
                f"{len(self.histograms)} histograms>")


class NullMetrics:
    """No-op :class:`MetricsRegistry` stand-in."""

    __slots__ = ()

    def inc(self, name: str, value: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float,
              mode: Optional[str] = None) -> None:
        pass

    def observe(self, name: str, value) -> None:
        pass

    def merge(self, other) -> None:
        pass

    def merge_snapshot(self, data) -> None:
        pass


#: Shared no-op registry: ``metrics = metrics or NULL_METRICS``.
NULL_METRICS = NullMetrics()


# ----------------------------------------------------------------------
# Rolling-window histograms (the live stats plane's latency view)


class RollingHistogram:
    """A histogram over the last ``window_seconds * windows`` seconds.

    The stats plane wants *recent* latency percentiles — "p99 over the
    last minute", not since process start.  Samples land in the
    :class:`Histogram` for the current time window; windows older than
    the horizon are discarded on the next touch, and
    :meth:`summary` merges the surviving windows.  Percentiles inherit
    the power-of-two upper-bound semantics of
    :meth:`Histogram.percentile`.

    Not thread-safe by design: each instance belongs to one owner (the
    front-end's event loop observes and snapshots from the same
    thread).
    """

    __slots__ = ("window_seconds", "windows", "_clock", "_live")

    def __init__(self, window_seconds: float = 10.0, windows: int = 6,
                 clock: Callable[[], float] = time.monotonic):
        if window_seconds <= 0 or windows <= 0:
            raise ValueError("window_seconds and windows must be positive")
        self.window_seconds = window_seconds
        self.windows = windows
        self._clock = clock
        #: (window index, histogram), oldest first.
        self._live: List[Tuple[int, Histogram]] = []

    def _roll(self) -> int:
        current = int(self._clock() / self.window_seconds)
        horizon = current - self.windows + 1
        while self._live and self._live[0][0] < horizon:
            self._live.pop(0)
        return current

    def observe(self, value) -> None:
        current = self._roll()
        if not self._live or self._live[-1][0] != current:
            self._live.append((current, Histogram()))
        self._live[-1][1].observe(value)

    def merged(self) -> Histogram:
        """One histogram folding every live window together."""
        self._roll()
        merged = Histogram()
        for _, histogram in self._live:
            merged.merge(histogram)
        return merged

    def summary(self) -> Dict[str, object]:
        """JSON-ready recent-latency summary (p50/p95/p99 upper bounds)."""
        merged = self.merged()
        return {
            "count": merged.count,
            "mean": round(merged.mean, 3),
            "min": merged.min,
            "max": merged.max,
            "p50": merged.percentile(50),
            "p95": merged.percentile(95),
            "p99": merged.percentile(99),
            "window_seconds": self.window_seconds * self.windows,
        }

    def __repr__(self) -> str:
        return (f"<RollingHistogram {len(self._live)} live windows "
                f"x {self.window_seconds}s>")


# ----------------------------------------------------------------------
# Active-registry scope (how deep pipeline internals find the registry)

_ACTIVE: List[MetricsRegistry] = []


def current_metrics():
    """The innermost registry installed by :func:`metrics_scope`, or
    :data:`NULL_METRICS` when none is active."""
    return _ACTIVE[-1] if _ACTIVE else NULL_METRICS


@contextmanager
def metrics_scope(registry):
    """Install ``registry`` as the active registry for the dynamic extent.

    Passing :data:`NULL_METRICS` (or any :class:`NullMetrics`) is a
    no-op: it does *not* mask an outer scope, so an instrumented caller
    keeps collecting through uninstrumented intermediate layers.
    """
    if isinstance(registry, NullMetrics):
        yield registry
        return
    _ACTIVE.append(registry)
    try:
        yield registry
    finally:
        _ACTIVE.pop()


# ----------------------------------------------------------------------
# Shared serialization helpers (CLI --metrics / --timings-json files)


def observability_snapshot(metrics=None, timer=None) -> Dict[str, object]:
    """One JSON document folding a metrics registry and a
    :class:`~repro.util.timing.StageTimer` together (the ``--metrics``
    and ``--timings-json`` file format)."""
    snap: Dict[str, object] = {}
    if metrics is not None and not isinstance(metrics, NullMetrics):
        snap.update(metrics.snapshot())
    if timer is not None:
        snap["stages"] = timer.as_dict()
        snap["total_seconds"] = timer.total
    return snap


def write_observability_json(path: str, metrics=None, timer=None) -> None:
    with open(path, "w") as handle:
        json.dump(observability_snapshot(metrics, timer), handle, indent=2,
                  sort_keys=True)
        handle.write("\n")
