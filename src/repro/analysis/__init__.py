"""Static-analysis substrate: dataflow solver and concrete analyses.

The pieces:

* :mod:`repro.analysis.solver` — generic forward/backward worklist
  solver over CSR-packed block graphs (the lattice protocol and the
  termination argument live in its module doc and DESIGN.md §15);
* :mod:`repro.analysis.reaching` — reaching definitions with
  must/may-uninitialized-use classification;
* :mod:`repro.analysis.liveranges` — flow-sensitive live ranges: dead
  stores and interference-based register-pressure estimates;
* :mod:`repro.analysis.reachability` — unreachable blocks and
  constant-branch pruning;
* :mod:`repro.analysis.callgraph` — whole-program call graph with
  profile-weighted call-site ranking;
* :mod:`repro.analysis.bounds` — sound per-region lower bounds on
  schedule height (critical path + resource saturation);
* :mod:`repro.analysis.driver` — the ``repro analyze`` /
  ``repro.api.analyze_program`` driver comparing bounds to achieved
  heights.

Results of the per-CFG analyses are cached (version-keyed) through
:mod:`repro.ir.analysis_cache`; prefer its ``*_of`` accessors over
constructing these classes directly in pipeline code.
"""

from repro.analysis.bounds import RegionBounds, region_lower_bounds
from repro.analysis.callgraph import CallGraph, CallSite
from repro.analysis.driver import analyze_program, format_analysis
from repro.analysis.liveranges import DeadStore, LiveRanges
from repro.analysis.reachability import ConstBranch, Reachability
from repro.analysis.reaching import ReachingDefinitions, UninitUse
from repro.analysis.solver import BlockGraph, DataflowResult, solve

__all__ = [
    "BlockGraph",
    "DataflowResult",
    "solve",
    "ReachingDefinitions",
    "UninitUse",
    "LiveRanges",
    "DeadStore",
    "Reachability",
    "ConstBranch",
    "CallGraph",
    "CallSite",
    "RegionBounds",
    "region_lower_bounds",
    "analyze_program",
    "format_analysis",
]
