"""Whole-program call graph with profile-weighted call-site ranking.

Call sites are syntactic (``CALL`` ops name their callee directly — the
IR has no indirect calls), so graph construction is one walk over every
function.  Each site carries the profile weight of its enclosing block;
ranking sites by that weight is exactly the order a demand-driven
inliner wants to consider them in (Way & Pollock: inline the hottest
call sites first, under a region-size budget), which is the ROADMAP
item this graph is the landing point for.

The graph is a value object: build once, query cheaply.  It is cached
program-wide in :mod:`repro.ir.analysis_cache`, keyed on the tuple of
every member CFG's version counter.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Set

from repro.ir.cfg import BasicBlock
from repro.ir.function import Program
from repro.ir.operation import Operation
from repro.ir.types import Opcode


class CallSite(NamedTuple):
    """One static call: where it sits and how hot the profile says it is."""

    caller: str
    callee: str
    block: BasicBlock
    op: Operation
    weight: float


class CallGraph:
    """Static call graph of one program."""

    def __init__(self, program: Program):
        self.program = program
        #: Every call site, in (function, block, op) discovery order.
        self.sites: List[CallSite] = []
        #: caller name -> set of callee names (resolved or not).
        self.callees: Dict[str, Set[str]] = {}
        #: callee name -> set of caller names.
        self.callers: Dict[str, Set[str]] = {}
        #: Callee names with no matching function in the program.
        self.external: Set[str] = set()

        for function in program.functions():
            self.callees.setdefault(function.name, set())
            for block in function.cfg.blocks():
                for op in block.ops:
                    if op.opcode is not Opcode.CALL or not op.callee:
                        continue
                    site = CallSite(function.name, op.callee, block, op,
                                    block.weight)
                    self.sites.append(site)
                    self.callees[function.name].add(op.callee)
                    self.callers.setdefault(op.callee, set()).add(
                        function.name
                    )
                    if not program.has_function(op.callee):
                        self.external.add(op.callee)

    # ------------------------------------------------------------------

    def ranked_sites(self, limit: Optional[int] = None) -> List[CallSite]:
        """Call sites hottest-first (ties broken by discovery order)."""
        order = sorted(
            range(len(self.sites)),
            key=lambda i: (-self.sites[i].weight, i),
        )
        if limit is not None:
            order = order[:limit]
        return [self.sites[i] for i in order]

    def sites_of(self, caller: str) -> List[CallSite]:
        return [site for site in self.sites if site.caller == caller]

    def is_leaf(self, name: str) -> bool:
        """True when ``name`` calls nothing (an inliner's best target)."""
        return not self.callees.get(name)

    def recursive_functions(self) -> Set[str]:
        """Functions on a call cycle (self-recursion included).

        Iterative DFS per SCC-free shortcut: a function is recursive iff
        it can reach itself through the callee relation.
        """
        recursive: Set[str] = set()
        for name in self.callees:
            stack = list(self.callees.get(name, ()))
            seen: Set[str] = set()
            while stack:
                current = stack.pop()
                if current == name:
                    recursive.add(name)
                    break
                if current in seen:
                    continue
                seen.add(current)
                stack.extend(self.callees.get(current, ()))
        return recursive

    def to_json(self) -> Dict[str, object]:
        return {
            "functions": sorted(self.callees),
            "external": sorted(self.external),
            "recursive": sorted(self.recursive_functions()),
            "edges": [
                {
                    "caller": site.caller,
                    "callee": site.callee,
                    "block": site.block.bid,
                    "weight": site.weight,
                    "resolved": site.callee not in self.external,
                }
                for site in self.ranked_sites()
            ],
        }

    def __repr__(self) -> str:
        return (f"<callgraph functions={len(self.callees)} "
                f"sites={len(self.sites)}>")
