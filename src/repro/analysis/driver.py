"""The ``repro analyze`` driver: bounds vs. achieved heights, per region.

For every (scheme, machine) pair this forms regions exactly the way the
evaluation engine does (cloning first when formation mutates), computes
each region's critical-path and resource-saturation lower bounds
(:mod:`repro.analysis.bounds`), schedules the same region under every
requested heuristic with default options, and reports the bounds next
to the achieved heights.  A bound exceeding *any* achieved height is a
soundness bug — the corpus gate, the ``analysis-smoke`` CI job, and the
validate oracle all fail on it.

The result is a plain JSON-ready dict; :func:`format_analysis` renders
the human view.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.ir.function import Program

#: Schemes the bound is defined for (tree-pipeline regions only).
DEFAULT_SCHEMES = ("bb", "treegion")
DEFAULT_MACHINES = ("4U", "8U")


def analyze_program(
    program: Program,
    *,
    name: Optional[str] = None,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    machines: Sequence[str] = DEFAULT_MACHINES,
    heuristics: Optional[Sequence[str]] = None,
    calls: bool = False,
    lint: bool = True,
) -> Dict[str, object]:
    """Analyze one program; returns a JSON-ready result dict.

    ``schemes``/``machines``/``heuristics`` accept the same spec strings
    as the rest of the API.  ``calls=True`` adds the whole-program call
    graph; ``lint=True`` (default) adds the flow-sensitive lint summary
    the CI gate checks for new errors.
    """
    from repro.api import machine as resolve_machine
    from repro.api import make_scheme
    from repro.ir.analysis_cache import live_ranges_of, liveness_of
    from repro.ir.clone import clone_program
    from repro.analysis.bounds import region_lower_bounds
    from repro.schedule.priorities import HEURISTICS
    from repro.schedule.scheduler import ScheduleOptions, schedule_region

    heuristics = tuple(heuristics) if heuristics else HEURISTICS
    for heuristic in heuristics:
        if heuristic not in HEURISTICS:
            raise ValueError(
                f"unknown heuristic {heuristic!r}; expected one of "
                f"{', '.join(HEURISTICS)}"
            )

    region_rows: List[Dict[str, object]] = []
    unsound = 0
    tight = 0
    gaps: List[int] = []

    for scheme_spec in schemes:
        scheme = make_scheme(scheme_spec)
        if scheme.name == "hyperblock":
            raise ValueError(
                "repro analyze bounds cover tree-pipeline schemes only; "
                "hyperblock schedules through a different pipeline"
            )
        for machine_spec in machines:
            mach = resolve_machine(machine_spec)
            # Formation may tail-duplicate; never touch the caller's IR.
            worked = clone_program(program) if scheme.mutates else program
            for function in worked.functions():
                partition = scheme.form(function.cfg)
                liveness = liveness_of(function.cfg)
                ranges = live_ranges_of(function.cfg)
                for region in partition:
                    bounds = region_lower_bounds(region, mach, liveness)
                    achieved: Dict[str, int] = {}
                    key_cache: Dict = {}
                    for heuristic in heuristics:
                        schedule = schedule_region(
                            region, mach,
                            ScheduleOptions(heuristic=heuristic),
                            liveness, key_cache=key_cache,
                        )
                        achieved[heuristic] = schedule.length
                    best = min(achieved.values())
                    pressure = ranges.region_pressure(region)
                    sound = bounds.lower_bound <= best
                    if not sound:
                        unsound += 1
                    if bounds.lower_bound == best:
                        tight += 1
                    gaps.append(best - bounds.lower_bound)
                    region_rows.append({
                        "function": function.name,
                        "scheme": scheme.name,
                        "machine": mach.name,
                        "root": region.root.bid,
                        "blocks": region.block_count,
                        "ops": bounds.ops,
                        "memory_ops": bounds.memory_ops,
                        "branch_ops": bounds.branch_ops,
                        "critical_path": bounds.critical_path,
                        "resource_bound": bounds.resource,
                        "lower_bound": bounds.lower_bound,
                        "achieved": achieved,
                        "best": best,
                        "sound": sound,
                        "pressure": {
                            rclass.value: count
                            for rclass, count in pressure.items()
                            if count
                        },
                    })

    count = len(region_rows)
    result: Dict[str, object] = {
        "program": name,
        "schemes": [make_scheme(s).name for s in schemes],
        "machines": [resolve_machine(m).name for m in machines],
        "heuristics": list(heuristics),
        "regions": region_rows,
        "summary": {
            "regions": count,
            "unsound": unsound,
            "sound": unsound == 0,
            "tight": tight,
            "tight_fraction": round(tight / count, 4) if count else 1.0,
            "mean_gap": round(sum(gaps) / count, 4) if count else 0.0,
            "max_gap": max(gaps) if gaps else 0,
        },
    }
    if lint:
        from repro.lint.run import lint_ir

        result["lint"] = lint_ir(program).to_json()
    if calls:
        from repro.ir.analysis_cache import call_graph_of

        result["call_graph"] = call_graph_of(program).to_json()
    return result


def format_analysis(result: Dict[str, object]) -> str:
    """Human rendering of one :func:`analyze_program` result."""
    lines: List[str] = []
    name = result.get("program")
    header = f"analysis: {name}" if name else "analysis"
    lines.append(header)
    summary = result["summary"]
    lines.append(
        f"  regions={summary['regions']} "
        f"sound={'yes' if summary['sound'] else 'NO'} "
        f"tight={summary['tight']}/{summary['regions']} "
        f"mean gap={summary['mean_gap']} max gap={summary['max_gap']}"
    )
    heuristics = result["heuristics"]
    head = (f"  {'region':<24} {'ops':>4} {'cp':>4} {'res':>4} {'lb':>4} "
            + " ".join(f"{h[:10]:>10}" for h in heuristics))
    lines.append(head)
    for row in result["regions"]:
        label = (f"{row['function']}/bb{row['root']} "
                 f"{row['scheme']}/{row['machine']}")
        achieved = row["achieved"]
        flag = "" if row["sound"] else "  UNSOUND"
        lines.append(
            f"  {label:<24} {row['ops']:>4} {row['critical_path']:>4} "
            f"{row['resource_bound']:>4} {row['lower_bound']:>4} "
            + " ".join(f"{achieved[h]:>10}" for h in heuristics)
            + flag
        )
    lint = result.get("lint")
    if lint is not None:
        lines.append(
            f"  lint: {lint['errors']} error(s), "
            f"{lint['warnings']} warning(s)"
        )
    graph = result.get("call_graph")
    if graph is not None:
        lines.append(
            f"  call graph: {len(graph['functions'])} function(s), "
            f"{len(graph['edges'])} call site(s), "
            f"external={graph['external'] or 'none'}, "
            f"recursive={graph['recursive'] or 'none'}"
        )
        for edge in graph["edges"][:10]:
            lines.append(
                f"    {edge['caller']} -> {edge['callee']} "
                f"(bb{edge['block']}, weight {edge['weight']:g}"
                + ("" if edge["resolved"] else ", unresolved")
                + ")"
            )
    return "\n".join(lines)
