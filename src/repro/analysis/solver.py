"""Generic worklist dataflow solver over packed CSR block arrays.

Every analysis in :mod:`repro.analysis` is an instance of the classic
iterative dataflow framework: values drawn from a finite-height join
semilattice, one monotone transfer function per basic block, and a
worklist iteration to the least fixed point.  This module provides the
two shared pieces:

* :class:`BlockGraph` — a dense, CSR-packed view of one CFG's block
  graph, in the same spirit as the DDG's edge arrays
  (:mod:`repro.schedule.ddg`): blocks get dense indices, and the
  successor/predecessor adjacency is two flat int arrays plus offset
  tables, so the solver's inner loop touches no Python object graphs.
* :func:`solve` — the direction-agnostic worklist iteration.

The lattice protocol is duck-typed (no ABC): a *problem* object supplies

``direction``
    ``"forward"`` or ``"backward"``.
``boundary()``
    The value at the boundary: the function entry (forward) or every
    exit block — a block with no successors (backward).
``transfer(block, value)``
    The output value of ``block`` given its input value.  Must be
    monotone in ``value`` and must not mutate its argument.
``join(a, b)``
    The least upper bound of two values.
``edge_value(edge, value)`` *(optional)*
    The value an edge propagates given its source's output value.
    Returning ``None`` marks the edge *non-executable* and cuts
    propagation along it — reachability uses this to kill the dead arm
    of a constant branch.

**Termination.**  The solver re-enqueues a block only when the value
flowing into one of its edges changed, and values only ever move up the
lattice (``join`` with new information, monotone ``transfer``).  With a
finite-height lattice every block's value can change at most *height*
times, so the worklist drains after at most ``O(blocks x edges x
height)`` transfer applications.  All four shipped analyses use
powerset (or two-point) lattices over a function's registers, defs, or
blocks, so the height is finite by construction; the argument is spelled
out in DESIGN.md §15.

**Unreachable blocks.**  Blocks that no executable path reaches keep the
value ``None`` ("bottom": no information has arrived).  Transfers never
run on ``None``, so every analysis gets unreachable-block handling for
free — consumers see ``None`` and skip, never a half-initialized value.
"""

from __future__ import annotations

from array import array
from collections import deque
from typing import Any, Dict, List, Optional

from repro.ir.cfg import CFG, BasicBlock, Edge

FORWARD = "forward"
BACKWARD = "backward"


class BlockGraph:
    """Dense CSR packing of one CFG's block-level graph.

    Blocks are numbered ``0..n-1`` in :meth:`CFG.blocks` order (ascending
    bid).  Successor edges of block ``i`` are the slice
    ``succ_ptr[i]:succ_ptr[i+1]`` of ``succ`` (dense target indices) and
    ``succ_edge`` (the :class:`~repro.ir.cfg.Edge` objects, for
    ``edge_value`` hooks); predecessors mirror that layout.
    """

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        self.blocks: List[BasicBlock] = cfg.blocks()
        n = len(self.blocks)
        self.index_of: Dict[int, int] = {
            block.bid: i for i, block in enumerate(self.blocks)
        }
        self.entry_index = (
            self.index_of[cfg.entry.bid] if cfg.entry is not None else -1
        )

        succ_counts = array("i", [0]) * 0  # placate mypy-ish readers
        succ_counts = array("i", [0] * (n + 1))
        pred_counts = array("i", [0] * (n + 1))
        for block in self.blocks:
            for edge in block.out_edges:
                succ_counts[self.index_of[edge.src.bid] + 1] += 1
                pred_counts[self.index_of[edge.dst.bid] + 1] += 1
        for i in range(n):
            succ_counts[i + 1] += succ_counts[i]
            pred_counts[i + 1] += pred_counts[i]
        self.succ_ptr = succ_counts
        self.pred_ptr = pred_counts

        total = self.succ_ptr[n]
        self.succ = array("i", [0] * total)
        self.pred = array("i", [0] * total)
        self.succ_edge: List[Optional[Edge]] = [None] * total
        self.pred_edge: List[Optional[Edge]] = [None] * total
        succ_fill = array("i", self.succ_ptr)
        pred_fill = array("i", self.pred_ptr)
        for block in self.blocks:
            src = self.index_of[block.bid]
            for edge in block.out_edges:
                dst = self.index_of[edge.dst.bid]
                slot = succ_fill[src]
                self.succ[slot] = dst
                self.succ_edge[slot] = edge
                succ_fill[src] += 1
                slot = pred_fill[dst]
                self.pred[slot] = src
                self.pred_edge[slot] = edge
                pred_fill[dst] += 1

        #: Dense indices in reverse postorder (unreachable blocks appended
        #: in bid order, matching :meth:`CFG.reverse_postorder`).
        self.rpo = array(
            "i", [self.index_of[b.bid] for b in cfg.reverse_postorder()]
        )

    def __len__(self) -> int:
        return len(self.blocks)

    def block(self, index: int) -> BasicBlock:
        return self.blocks[index]


class DataflowResult:
    """Fixed-point values per block, by dense index or block object.

    ``in_values[i]`` is the value at block entry, ``out_values[i]`` at
    block exit (``None`` = no executable path reached the block).
    """

    def __init__(self, graph: BlockGraph, in_values: List[Any],
                 out_values: List[Any]):
        self.graph = graph
        self.in_values = in_values
        self.out_values = out_values

    def value_in(self, block: BasicBlock) -> Any:
        return self.in_values[self.graph.index_of[block.bid]]

    def value_out(self, block: BasicBlock) -> Any:
        return self.out_values[self.graph.index_of[block.bid]]


def solve(graph: BlockGraph, problem) -> DataflowResult:
    """Run ``problem`` to its least fixed point over ``graph``."""
    n = len(graph)
    in_values: List[Any] = [None] * n
    out_values: List[Any] = [None] * n
    if n == 0:
        return DataflowResult(graph, in_values, out_values)

    forward = problem.direction == FORWARD
    if not forward and problem.direction != BACKWARD:
        raise ValueError(f"bad dataflow direction {problem.direction!r}")
    edge_value = getattr(problem, "edge_value", None)
    join = problem.join
    transfer = problem.transfer
    boundary = problem.boundary()

    if forward:
        ptr, adj, adj_edge = graph.pred_ptr, graph.pred, graph.pred_edge
        out_ptr, out_adj = graph.succ_ptr, graph.succ
        order = graph.rpo
    else:
        ptr, adj, adj_edge = graph.succ_ptr, graph.succ, graph.succ_edge
        out_ptr, out_adj = graph.pred_ptr, graph.pred
        order = array("i", reversed(graph.rpo))

    worklist = deque(order)
    queued = bytearray(n)
    for i in order:
        queued[i] = 1

    while worklist:
        i = worklist.popleft()
        queued[i] = 0
        block = graph.blocks[i]

        # Join the values flowing in: boundary for boundary blocks, plus
        # one contribution per incoming (forward) / outgoing (backward)
        # edge whose far side has produced a value.
        value: Any = None
        if forward:
            if i == graph.entry_index:
                value = boundary
        else:
            if graph.succ_ptr[i] == graph.succ_ptr[i + 1]:
                value = boundary
        for e in range(ptr[i], ptr[i + 1]):
            other = out_values[adj[e]] if forward else in_values[adj[e]]
            if other is None:
                continue
            if edge_value is not None:
                other = edge_value(adj_edge[e], other)
                if other is None:
                    continue
            value = other if value is None else join(value, other)

        if value is None:
            continue  # bottom: nothing reaches this block (yet)

        result = transfer(block, value)
        if forward:
            in_values[i] = value
            if result == out_values[i]:
                continue
            out_values[i] = result
        else:
            out_values[i] = value
            if result == in_values[i]:
                continue
            in_values[i] = result

        for e in range(out_ptr[i], out_ptr[i + 1]):
            succ = out_adj[e]
            if not queued[succ]:
                queued[succ] = 1
                worklist.append(succ)

    return DataflowResult(graph, in_values, out_values)
