"""Flow-sensitive live ranges: dead stores and register pressure.

Block-level liveness is re-derived on the generic solver (a backward
union fixpoint identical to :mod:`repro.ir.liveness`, kept here so the
per-op pass below and the block-level sets always agree on one
analysis), then refined to op granularity by walking each block's ops
backward from its live-out set.  Two consumers:

* **Dead stores** — an op whose destinations are all dead immediately
  after it, with no side effects, computes a value nothing ever reads
  (``ir.dead-store``).  A guarded def of a dead register is still dead:
  whether or not the write commits, nobody reads it.
* **Register pressure** — the maximum number of simultaneously live
  registers per class at any program point of a block.  Simultaneously
  live registers pairwise interfere, so a clique of that size exists in
  the interference graph and *any* correct allocation needs at least
  that many registers of the class: a sound lower bound on demand.
  :func:`LiveRanges.region_pressure` takes the max over a region's
  blocks, which ``sched.pressure-exceeds-class`` compares against the
  machine's per-class register file.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, NamedTuple, Optional, Set

from repro.ir.cfg import CFG, BasicBlock
from repro.ir.operation import Operation
from repro.ir.registers import Register
from repro.ir.types import RegClass
from repro.analysis.solver import BACKWARD, BlockGraph, solve


class DeadStore(NamedTuple):
    """One op whose computed value is never read."""

    block: BasicBlock
    op: Operation
    position: int


class _LivenessProblem:
    """Backward may-liveness over register powersets."""

    direction = BACKWARD

    def __init__(self, graph: BlockGraph):
        self._graph = graph
        # (upward-exposed uses, defs) per block, dense-indexed.
        self.use_def: List = []
        for block in graph.blocks:
            uses: Set[Register] = set()
            defs: Set[Register] = set()
            for op in block.ops:
                for reg in op.used_registers():
                    if reg not in defs:
                        uses.add(reg)
                defs.update(op.dests)
            self.use_def.append((frozenset(uses), frozenset(defs)))

    def boundary(self) -> FrozenSet[Register]:
        return frozenset()

    def transfer(self, block: BasicBlock,
                 value: FrozenSet[Register]) -> FrozenSet[Register]:
        uses, defs = self.use_def[self._graph.index_of[block.bid]]
        return uses | (value - defs)

    @staticmethod
    def join(a: FrozenSet[Register],
             b: FrozenSet[Register]) -> FrozenSet[Register]:
        if a is b or b.issubset(a):
            return a
        return a | b


def block_peak_pressure(block: BasicBlock,
                        live_out) -> Dict[RegClass, int]:
    """Max simultaneously-live registers per class inside one block.

    Takes the block's live-out set explicitly so callers that only have
    block-level liveness in hand (the ``sched.pressure-exceeds-class``
    rule certifies against :class:`repro.ir.liveness.LivenessInfo`) share
    the exact walk :meth:`LiveRanges.block_pressure` memoizes.
    """
    live = set(live_out)
    counts = {rclass: 0 for rclass in RegClass}
    for reg in live:
        counts[reg.rclass] += 1
    peak = dict(counts)
    for position in range(len(block.ops) - 1, -1, -1):
        op = block.ops[position]
        for reg in op.dests:
            if reg in live:
                live.discard(reg)
                counts[reg.rclass] -= 1
        for reg in op.used_registers():
            if reg not in live:
                live.add(reg)
                counts[reg.rclass] += 1
        for rclass in RegClass:
            if counts[rclass] > peak[rclass]:
                peak[rclass] = counts[rclass]
    return peak


class LiveRanges:
    """Op-granular liveness facts for one CFG."""

    def __init__(self, cfg: CFG, params=()):
        self.cfg = cfg
        self.graph = BlockGraph(cfg)
        self.problem = _LivenessProblem(self.graph)
        self.result = solve(self.graph, self.problem)
        self._block_pressure: Optional[List[Dict[RegClass, int]]] = None

    # ------------------------------------------------------------------

    def live_in(self, block: BasicBlock) -> FrozenSet[Register]:
        value = self.result.value_in(block)
        return value if value is not None else frozenset()

    def live_out(self, block: BasicBlock) -> FrozenSet[Register]:
        value = self.result.value_out(block)
        return value if value is not None else frozenset()

    # ------------------------------------------------------------------

    def dead_stores(self) -> List[DeadStore]:
        """Ops computing values nothing reads, in program order.

        Side-effecting ops (stores, calls, branches, returns) are never
        reported — their usefulness does not flow through registers.
        Ops in unreachable blocks are skipped (``ir.unreachable-block``
        owns those).
        """
        found: List[DeadStore] = []
        for index, block in enumerate(self.graph.blocks):
            if self.result.in_values[index] is None:
                continue  # unreachable
            live = set(self.live_out(block))
            # Walk backward so "live after op" is exact per position.
            flagged: List[DeadStore] = []
            for position in range(len(block.ops) - 1, -1, -1):
                op = block.ops[position]
                if op.dests and not op.opcode.has_side_effects:
                    if all(reg not in live for reg in op.dests):
                        flagged.append(DeadStore(block, op, position))
                for reg in op.dests:
                    live.discard(reg)
                live.update(op.used_registers())
            found.extend(reversed(flagged))
        return found

    # ------------------------------------------------------------------

    def block_pressure(self, block: BasicBlock) -> Dict[RegClass, int]:
        """Max simultaneously-live registers per class inside ``block``."""
        if self._block_pressure is None:
            self._block_pressure = [None] * len(self.graph)  # type: ignore
        index = self.graph.index_of[block.bid]
        cached = self._block_pressure[index]
        if cached is not None:
            return cached
        peak = block_peak_pressure(block, self.live_out(block))
        self._block_pressure[index] = peak
        return peak

    def region_pressure(self, blocks) -> Dict[RegClass, int]:
        """Max per-class pressure over a set of blocks (e.g. one region).

        A lower bound on the registers any allocation of the region
        needs: the peak block's simultaneously-live set is a clique in
        the interference graph.
        """
        peak = {rclass: 0 for rclass in RegClass}
        for block in blocks:
            for rclass, count in self.block_pressure(block).items():
                if count > peak[rclass]:
                    peak[rclass] = count
        return peak
