"""Sound per-region lower bounds on schedule height.

The static half of the ROADMAP optimality-gap study: for one region and
one machine, how short could *any* legal schedule possibly be?  Two
bound families, each provably ≤ every height the list scheduler can
achieve under default options:

* **Critical path.**  The list scheduler places op *i* no earlier than
  ``max over placement predecessors p of cycle(p) + latency(p→i)`` (see
  :mod:`repro.schedule.list_scheduler`), so the longest latency chain
  through the *placement* edges of the very DDG the scheduler uses is a
  floor on the final cycle count.  Control edges are excluded — they
  exist only to shape heuristic heights and are broken by speculation,
  so counting them would overestimate (and be unsound as a bound).
* **Windowed resource saturation.**  Every op issues exactly once, and
  each cycle offers ``issue_width`` slots, at most
  ``max_memory_per_cycle`` memory ops, and ``max_branches_per_cycle``
  branch ops — the resource classes are selected by the *same*
  ``Operation.is_memory`` / ``Operation.is_branch`` predicates the list
  scheduler's per-cycle occupancy tables use, so the bound and the
  scheduler can never disagree about which cap an op consumes.  The
  plain floors ``ceil(ops / cap)`` per class are tightened with
  Fernandez-style windows over the precedence structure:

  - *forward*: every op with precedence-earliest issue ``est(i) ≥ t``
    must issue in cycle ``t`` or later, so
    ``H ≥ (t − 1) + ceil(#{i : est(i) ≥ t} / cap)``;
  - *backward*: ``down(i)`` (the longest latency chain from *i*'s issue
    to the last issue) forces ``issue(i) ≤ H − down(i) + 1``, so every
    op with ``down(i) ≥ d`` fits in the first ``H − d + 1`` cycles and
    ``H ≥ (d − 1) + ceil(#{i : down(i) ≥ d} / cap)``.

  Both are evaluated at every distinct ``est``/``down`` value per
  resource class; ``t = d = 1`` recover the plain floors, so the
  windowed bound is never looser.  ``est`` and ``down`` are precedence-
  only quantities, valid in *any* legal schedule, which is what makes
  the windows admissible.

The overall bound is the max of both families.  Soundness scope:
tree-pipeline regions under default
:class:`~repro.schedule.scheduler.ScheduleOptions` —
``dominator_parallelism`` may merge duplicate ops (an op stops
consuming a slot and inherits its survivor's cycle), which invalidates
both arguments, and ``schedule_copies`` adds ops after the DDG is built.
The corpus soundness gate and the validate oracle check the bound
against all four heuristics on exactly that default configuration, and
the exact backend (:mod:`repro.exact`) machine-certifies it against
proven optima: ``repro gap`` fails if the bound ever exceeds one.

The bound is computed from the same ``prepare → rename → build_ddg``
pipeline the scheduler runs, so synthesized guard/branch ops are
counted identically on both sides of the comparison;
:func:`bounds_from_ddg` exposes the math to callers (the exact backend)
that already hold a built DDG.
"""

from __future__ import annotations

from collections import deque
from typing import List, NamedTuple, Optional

from repro.ir.liveness import LivenessInfo
from repro.machine.model import MachineModel
from repro.regions.region import Region


class RegionBounds(NamedTuple):
    """Lower bounds on one region's schedule height for one machine."""

    #: Longest latency chain over placement edges, in cycles.
    critical_path: int
    #: Resource-saturation floor (windowed issue/memory/branch slots).
    resource: int
    #: Number of schedulable ops (after prep synthesizes guards/exits).
    ops: int
    memory_ops: int
    branch_ops: int

    @property
    def lower_bound(self) -> int:
        """The combined sound lower bound: max of both components."""
        return max(self.critical_path, self.resource)


def _windowed_floor(values: List[int], cap: int) -> int:
    """``max over t of (t − 1) + ceil(#{v ≥ t} / cap)`` for ``values``.

    The count of values ≥ t is a right-continuous decreasing step
    function, so the expression is maximized at some t equal to one of
    the values — scanning the distinct sorted values suffices.
    """
    if not values:
        return 0
    ordered = sorted(values)
    total = len(ordered)
    best = 0
    previous = None
    for position, value in enumerate(ordered):
        if value == previous:
            continue
        previous = value
        count = total - position
        floor = value - 1 + -(-count // cap)
        if floor > best:
            best = floor
    return best


def bounds_from_ddg(problem, ddg, machine: MachineModel) -> RegionBounds:
    """The bound math over an already-built (finalized) placement DDG.

    ``problem``/``ddg`` must come from the default pipeline (no
    materialized copy ops, no dominator parallelism) — the soundness
    scope documented on the module.
    """
    ddg.finalize()
    n = len(problem.sched_ops)
    if n == 0:
        return RegionBounds(0, 0, 0, 0, 0)

    # Forward Kahn pass over the placement CSR: earliest[i] is the
    # 1-based cycle op i could issue at were resources infinite —
    # exactly the scheduler's dependence constraint, minus slot limits.
    succ_ptr, succ_dst, succ_lat = ddg.succ_ptr, ddg.succ_dst, ddg.succ_lat
    waiting = list(ddg.in_degree)
    earliest = [1] * n
    queue = deque(i for i in range(n) if waiting[i] == 0)
    processed = 0
    while queue:
        i = queue.popleft()
        processed += 1
        base = earliest[i]
        for e in range(succ_ptr[i], succ_ptr[i + 1]):
            dst = succ_dst[e]
            candidate = base + succ_lat[e]
            if candidate > earliest[dst]:
                earliest[dst] = candidate
            waiting[dst] -= 1
            if waiting[dst] == 0:
                queue.append(dst)
    if processed != n:
        raise ValueError(
            f"placement DDG has a cycle: {processed}/{n} ops ordered"
        )
    critical_path = max(earliest)

    # Backward chain lengths: down[i] cycles must elapse from op i's
    # issue to the last issue.  Placement edges point from a lower to a
    # higher index (tree preorder, no copies), so reverse index order
    # is a valid reverse-topological sweep.
    down = [1] * n
    for i in range(n - 1, -1, -1):
        longest = 1
        for e in range(succ_ptr[i], succ_ptr[i + 1]):
            chain = succ_lat[e] + down[succ_dst[e]]
            if chain > longest:
                longest = chain
        down[i] = longest

    is_mem = [sop.op.is_memory for sop in problem.sched_ops]
    is_br = [sop.op.is_branch for sop in problem.sched_ops]
    memory_ops = sum(1 for flag in is_mem if flag)
    branch_ops = sum(1 for flag in is_br if flag)

    resource = 0
    classes = [(None, machine.issue_width)]
    if machine.max_memory_per_cycle is not None and memory_ops:
        classes.append((is_mem, machine.max_memory_per_cycle))
    if machine.max_branches_per_cycle is not None and branch_ops:
        classes.append((is_br, machine.max_branches_per_cycle))
    for member, cap in classes:
        if member is None:
            est_values, down_values = earliest, down
        else:
            est_values = [earliest[i] for i in range(n) if member[i]]
            down_values = [down[i] for i in range(n) if member[i]]
        resource = max(
            resource,
            _windowed_floor(est_values, cap),
            _windowed_floor(down_values, cap),
        )

    return RegionBounds(critical_path, resource, n, memory_ops, branch_ops)


def region_lower_bounds(
    region: Region,
    machine: MachineModel,
    liveness: Optional[LivenessInfo] = None,
) -> RegionBounds:
    """Compute both lower bounds for ``region`` on ``machine``.

    Runs the genuine preparation pipeline (the IR is never modified), so
    the op population matches what the list scheduler will place.
    Hyperblock regions go through a different pipeline (if-conversion,
    DAG dependences) and are rejected.
    """
    from repro.ir.analysis_cache import liveness_of
    from repro.regions.hyperblock import Hyperblock
    from repro.schedule.ddg import build_ddg
    from repro.schedule.prep import prepare_region
    from repro.schedule.renaming import rename_region

    if isinstance(region, Hyperblock):
        raise ValueError(
            "lower bounds are defined for tree-pipeline regions only; "
            "hyperblocks schedule through a different pipeline"
        )
    if liveness is None:
        liveness = liveness_of(region.root.cfg)

    problem = prepare_region(region, machine, liveness)
    copies = rename_region(problem, liveness)
    ddg = build_ddg(problem, machine, liveness=liveness, copies=copies)
    return bounds_from_ddg(problem, ddg, machine)
