"""Sound per-region lower bounds on schedule height.

The static half of the ROADMAP optimality-gap study: for one region and
one machine, how short could *any* legal schedule possibly be?  Two
classic bounds, each provably ≤ every height the list scheduler can
achieve under default options:

* **Critical path.**  The list scheduler places op *i* no earlier than
  ``max over placement predecessors p of cycle(p) + latency(p→i)`` (see
  :mod:`repro.schedule.list_scheduler`), so the longest latency chain
  through the *placement* edges of the very DDG the scheduler uses is a
  floor on the final cycle count.  Control edges are excluded — they
  exist only to shape heuristic heights and are broken by speculation,
  so counting them would overestimate (and be unsound as a bound).
* **Resource saturation.**  Every op issues exactly once and each cycle
  offers ``issue_width`` slots, at most ``max_memory_per_cycle`` memory
  ops and ``max_branches_per_cycle`` branch ops, so
  ``ceil(ops/width)`` (and the mem/branch analogues) are floors too.

The overall bound is the max of both.  Soundness scope: tree-pipeline
regions under default :class:`~repro.schedule.scheduler.ScheduleOptions`
— ``dominator_parallelism`` may merge duplicate ops (an op stops
consuming a slot and inherits its survivor's cycle), which invalidates
both arguments, and ``schedule_copies`` adds ops after the DDG is built.
The corpus soundness gate and the validate oracle check the bound
against all four heuristics on exactly that default configuration.

The bound is computed from the same ``prepare → rename → build_ddg``
pipeline the scheduler runs, so synthesized guard/branch ops are
counted identically on both sides of the comparison.
"""

from __future__ import annotations

from collections import deque
from math import ceil
from typing import NamedTuple, Optional

from repro.ir.liveness import LivenessInfo
from repro.machine.model import MachineModel
from repro.regions.region import Region


class RegionBounds(NamedTuple):
    """Lower bounds on one region's schedule height for one machine."""

    #: Longest latency chain over placement edges, in cycles.
    critical_path: int
    #: Resource-saturation floor (issue width, memory, branch slots).
    resource: int
    #: Number of schedulable ops (after prep synthesizes guards/exits).
    ops: int
    memory_ops: int
    branch_ops: int

    @property
    def lower_bound(self) -> int:
        """The combined sound lower bound: max of both components."""
        return max(self.critical_path, self.resource)


def region_lower_bounds(
    region: Region,
    machine: MachineModel,
    liveness: Optional[LivenessInfo] = None,
) -> RegionBounds:
    """Compute both lower bounds for ``region`` on ``machine``.

    Runs the genuine preparation pipeline (the IR is never modified), so
    the op population matches what the list scheduler will place.
    Hyperblock regions go through a different pipeline (if-conversion,
    DAG dependences) and are rejected.
    """
    from repro.ir.analysis_cache import liveness_of
    from repro.regions.hyperblock import Hyperblock
    from repro.schedule.ddg import build_ddg
    from repro.schedule.prep import prepare_region
    from repro.schedule.renaming import rename_region

    if isinstance(region, Hyperblock):
        raise ValueError(
            "lower bounds are defined for tree-pipeline regions only; "
            "hyperblocks schedule through a different pipeline"
        )
    if liveness is None:
        liveness = liveness_of(region.root.cfg)

    problem = prepare_region(region, machine, liveness)
    copies = rename_region(problem, liveness)
    ddg = build_ddg(problem, machine, liveness=liveness, copies=copies)
    ddg.finalize()

    n = len(problem.sched_ops)
    if n == 0:
        return RegionBounds(0, 0, 0, 0, 0)

    # Forward Kahn pass over the placement CSR: earliest[i] is the
    # 1-based cycle op i could issue at were resources infinite —
    # exactly the scheduler's dependence constraint, minus slot limits.
    succ_ptr, succ_dst, succ_lat = ddg.succ_ptr, ddg.succ_dst, ddg.succ_lat
    waiting = list(ddg.in_degree)
    earliest = [1] * n
    queue = deque(i for i in range(n) if waiting[i] == 0)
    processed = 0
    while queue:
        i = queue.popleft()
        processed += 1
        base = earliest[i]
        for e in range(succ_ptr[i], succ_ptr[i + 1]):
            dst = succ_dst[e]
            candidate = base + succ_lat[e]
            if candidate > earliest[dst]:
                earliest[dst] = candidate
            waiting[dst] -= 1
            if waiting[dst] == 0:
                queue.append(dst)
    if processed != n:
        raise ValueError(
            f"placement DDG has a cycle: {processed}/{n} ops ordered"
        )
    critical_path = max(earliest)

    memory_ops = sum(1 for sop in problem.sched_ops if sop.op.is_memory)
    branch_ops = sum(1 for sop in problem.sched_ops if sop.op.is_branch)
    resource = ceil(n / machine.issue_width)
    if machine.max_memory_per_cycle is not None and memory_ops:
        resource = max(
            resource, ceil(memory_ops / machine.max_memory_per_cycle)
        )
    if machine.max_branches_per_cycle is not None and branch_ops:
        resource = max(
            resource, ceil(branch_ops / machine.max_branches_per_cycle)
        )

    return RegionBounds(critical_path, resource, n, memory_ops, branch_ops)
