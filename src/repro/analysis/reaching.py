"""Reaching definitions, with uninitialized-use classification.

A *def site* is one (block, op position) pair writing a register; two
pseudo-sites complete the lattice at the function boundary:

* ``UNINIT`` — the register enters the function carrying no value;
* ``PARAM`` — the register is a declared function parameter.

The value domain maps each tracked register to the set of def sites
reaching a program point; sites are packed ints (block dense index and
op position), so set elements stay small and hashable.  Guarded
(predicated) defs are *weak*: they add their site without killing what
flowed in, because the write may be squashed at run time.  Unguarded
defs are *strong* and replace the incoming set — the classic
predicate-conservative formulation.

By default only the *observable support* is tracked: registers with at
least one upward-exposed use somewhere in the function (plus the
declared parameters).  A register every block defines before reading can
never observe its own reaching set, so carrying it through the fixpoint
is pure overhead — on the synthetic SPEC stand-ins this cuts the tracked
universe by an order of magnitude.  Pass ``universe`` explicitly to
track more.

Consumers:

* :func:`ReachingDefinitions.uninit_uses` classifies every register read
  as *must*-uninitialized (only ``UNINIT`` reaches: wrong on every
  path) or *may*-uninitialized (``UNINIT`` and real defs both reach:
  wrong on some path) — the ``ir.uninit-use`` lint rule.
* :func:`ReachingDefinitions.def_free_path` reconstructs one offending
  entry-to-use path along which the register is never strongly defined,
  for the rule's fix hint.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, NamedTuple, Optional, Set, Tuple

from repro.ir.cfg import CFG, BasicBlock
from repro.ir.operation import Operation
from repro.ir.registers import Register
from repro.analysis.solver import FORWARD, BlockGraph, solve

#: Pseudo def sites.
UNINIT = 0
PARAM = 1
_SITE_BASE = 2
_UNINIT_SET = frozenset((UNINIT,))
_PARAM_SET = frozenset((PARAM,))


def pack_site(block_index: int, position: int) -> int:
    """Pack one real def site into an int (op position capped at 16 bits)."""
    return ((block_index << 16) | (position & 0xFFFF)) + _SITE_BASE


def unpack_site(site: int) -> Tuple[int, int]:
    """(block dense index, op position) of a packed real site."""
    raw = site - _SITE_BASE
    return raw >> 16, raw & 0xFFFF


class UninitUse(NamedTuple):
    """One register read that ``UNINIT`` reaches."""

    block: BasicBlock
    op: Operation
    position: int
    reg: Register
    #: ``"must"`` — only UNINIT reaches; ``"may"`` — UNINIT and a real
    #: def both reach.
    kind: str


class _ReachingProblem:
    """The dataflow instance: forward, powerset-of-sites per register."""

    direction = FORWARD

    def __init__(self, graph: BlockGraph, universe: FrozenSet[Register],
                 params: FrozenSet[Register]):
        self.universe = universe
        self.params = params
        # Per block (dense index), per tracked register: (strong, sites) —
        # whether the block unconditionally kills the incoming set, and
        # the local sites that survive to the block's end.
        self.summaries: List[Dict[Register, Tuple[bool, FrozenSet[int]]]] = []
        for index, block in enumerate(graph.blocks):
            summary: Dict[Register, Tuple[bool, List[int]]] = {}
            for position, op in enumerate(block.ops):
                for reg in op.dests:
                    if reg not in universe:
                        continue
                    site = pack_site(index, position)
                    strong, sites = summary.get(reg, (False, []))
                    if op.guard is None:
                        summary[reg] = (True, [site])
                    else:
                        summary[reg] = (strong, sites + [site])
            self.summaries.append({
                reg: (strong, frozenset(sites))
                for reg, (strong, sites) in summary.items()
            })
        self._graph = graph

    def boundary(self) -> Dict[Register, FrozenSet[int]]:
        value = {reg: _UNINIT_SET for reg in self.universe}
        for reg in self.params:
            value[reg] = _PARAM_SET
        return value

    def transfer(self, block: BasicBlock,
                 value: Dict[Register, FrozenSet[int]]):
        summary = self.summaries[self._graph.index_of[block.bid]]
        if not summary:
            return value
        out = dict(value)
        for reg, (strong, sites) in summary.items():
            if strong:
                out[reg] = sites
            else:
                out[reg] = out.get(reg, _UNINIT_SET) | sites
        return out

    @staticmethod
    def join(a: Dict[Register, FrozenSet[int]],
             b: Dict[Register, FrozenSet[int]]):
        if a is b:
            return a
        out = dict(a)
        for reg, sites in b.items():
            mine = out.get(reg)
            if mine is None:
                out[reg] = sites
            elif not sites.issubset(mine):  # keep identity when possible
                out[reg] = mine | sites
        return out


def _observable_support(cfg: CFG) -> FrozenSet[Register]:
    """Registers with an upward-exposed use in at least one block."""
    support: Set[Register] = set()
    for block in cfg.blocks():
        defined: Set[Register] = set()
        for op in block.ops:
            for reg in op.used_registers():
                if reg not in defined:
                    support.add(reg)
            defined.update(op.dests)
    return frozenset(support)


class ReachingDefinitions:
    """Fixed-point reaching-def sets for one CFG."""

    def __init__(self, cfg: CFG, params: Tuple[Register, ...] = (),
                 universe: Optional[FrozenSet[Register]] = None):
        self.cfg = cfg
        self.graph = BlockGraph(cfg)
        self.params = frozenset(params)
        if universe is None:
            universe = _observable_support(cfg) | self.params
        self.universe = universe
        self.problem = _ReachingProblem(self.graph, universe, self.params)
        self.result = solve(self.graph, self.problem)

    # ------------------------------------------------------------------

    def reaching_in(self, block: BasicBlock):
        """Register -> def-site set at block entry (None if unreachable)."""
        return self.result.value_in(block)

    def reaching_out(self, block: BasicBlock):
        """Register -> def-site set at block exit (None if unreachable)."""
        return self.result.value_out(block)

    def uninit_uses(self) -> List[UninitUse]:
        """Every read (sources and guards) that ``UNINIT`` reaches.

        Uses inside blocks no path reaches are skipped — they never
        execute, and ``ir.unreachable-block`` already reports the block.
        """
        found: List[UninitUse] = []
        for index, block in enumerate(self.graph.blocks):
            value = self.result.in_values[index]
            if value is None:
                continue  # unreachable
            local: Dict[Register, Tuple[bool, FrozenSet[int]]] = {}
            for position, op in enumerate(block.ops):
                for reg in op.used_registers():
                    if reg not in self.universe:
                        continue
                    strong, sites = local.get(reg, (False, frozenset()))
                    if strong:
                        continue  # locally defined before this read
                    reaching = value.get(reg, _UNINIT_SET) | sites
                    if UNINIT not in reaching:
                        continue
                    kind = "must" if reaching == _UNINIT_SET else "may"
                    found.append(UninitUse(block, op, position, reg, kind))
                for reg in op.dests:
                    if reg not in self.universe:
                        continue
                    site = pack_site(index, position)
                    strong, sites = local.get(reg, (False, frozenset()))
                    if op.guard is None:
                        local[reg] = (True, frozenset((site,)))
                    else:
                        local[reg] = (strong, sites | {site})
            del local
        return found

    def def_free_path(self, reg: Register,
                      use_block: BasicBlock) -> List[str]:
        """One shortest entry-to-use path never strongly defining ``reg``.

        Returns block labels (``bb3`` style) for the lint fix hint; an
        empty list when no such path exists (the use is not uninit).
        """
        graph = self.graph
        target = graph.index_of[use_block.bid]
        start = graph.entry_index
        if start < 0:
            return []

        def strongly_defines(index: int) -> bool:
            entry = self.problem.summaries[index].get(reg)
            return entry is not None and entry[0]

        parent = {start: -1}
        queue = deque((start,))
        while queue:
            i = queue.popleft()
            if i == target:
                path = []
                while i != -1:
                    path.append(f"bb{graph.blocks[i].bid}")
                    i = parent[i]
                return list(reversed(path))
            if i != start and i != target and strongly_defines(i):
                continue  # a strong def en route kills UNINIT
            if i == start and strongly_defines(i):
                continue
            for e in range(graph.succ_ptr[i], graph.succ_ptr[i + 1]):
                succ = graph.succ[e]
                if succ not in parent:
                    parent[succ] = i
                    queue.append(succ)
        return []
