"""Reachability under constant-branch pruning.

A sparse conditional-constant skeleton sized to this IR: a register is
*known constant* when it has exactly one def in the whole function, that
def is unguarded, its defining op is a ``MOV`` of an immediate or a
``CMPP`` over constant operands, and the def site dominates the use
being asked about (single assignment alone does not imply the def
executes before the use — the synthetic workloads reuse registers
across sibling arms, so the dominance check is what keeps this sound).

Branches whose outcome is decided by a known constant (``BRCT``/``BRCF``
on a constant predicate, ``SWITCH`` on a constant selector) have their
untaken out-edges marked *dead*; forward reachability then runs on the
generic solver with an ``edge_value`` hook that refuses to propagate
along dead edges.  Blocks left at bottom are unreachable — either
structurally (no path at all) or because every path in runs through the
dead arm of a constant branch.

Consumers: ``ir.const-branch`` (each decided branch) and
``ir.unreachable-block`` (each bottom block).
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Set, Tuple

from repro.ir.cfg import CFG, BasicBlock, Edge
from repro.ir.operation import Operation
from repro.ir.registers import Register
from repro.ir.types import EdgeKind, Immediate, Opcode
from repro.analysis.solver import FORWARD, BlockGraph, solve


class ConstBranch(NamedTuple):
    """One branch whose outcome is statically decided."""

    block: BasicBlock
    op: Operation
    #: Human description of the decision, e.g. ``"always taken"`` or
    #: ``"always selects case 3"``.
    decision: str
    #: The out-edges the decision makes dead.
    dead_edges: Tuple[Edge, ...]


class _ReachProblem:
    """Two-point lattice (bottom/reached) with dead-edge filtering."""

    direction = FORWARD

    def __init__(self, dead_edge_ids: Set[int]):
        self._dead = dead_edge_ids

    def boundary(self) -> bool:
        return True

    def transfer(self, block: BasicBlock, value: bool) -> bool:
        return value

    @staticmethod
    def join(a: bool, b: bool) -> bool:
        return a or b

    def edge_value(self, edge: Edge, value: bool) -> Optional[bool]:
        return None if id(edge) in self._dead else value


class Reachability:
    """Const-aware reachability facts for one CFG."""

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        self.graph = BlockGraph(cfg)
        self._single_defs = self._collect_single_defs(cfg)
        self._const_memo: Dict[Register, Optional[object]] = {}
        self.const_branches: List[ConstBranch] = []
        dead: Set[int] = set()
        for block in self.graph.blocks:
            decided = self._decide_branch(block)
            if decided is None:
                continue
            self.const_branches.append(decided)
            dead.update(id(edge) for edge in decided.dead_edges)
        self.result = solve(self.graph, _ReachProblem(dead))

    # ------------------------------------------------------------------

    def is_reachable(self, block: BasicBlock) -> bool:
        return self.result.value_in(block) is not None

    def unreachable_blocks(self) -> List[BasicBlock]:
        """Blocks no executable path reaches (entry excluded by defn)."""
        return [
            block
            for index, block in enumerate(self.graph.blocks)
            if self.result.in_values[index] is None
        ]

    # ------------------------------------------------------------------
    # Constant environment

    @staticmethod
    def _collect_single_defs(cfg: CFG):
        """reg -> (block, position, op) for single-unguarded-def regs."""
        defs: Dict[Register, List[Tuple[BasicBlock, int, Operation]]] = {}
        guarded: Set[Register] = set()
        for block in cfg.blocks():
            for position, op in enumerate(block.ops):
                for reg in op.dests:
                    if op.guard is not None:
                        guarded.add(reg)
                    defs.setdefault(reg, []).append((block, position, op))
        return {
            reg: sites[0]
            for reg, sites in defs.items()
            if len(sites) == 1 and reg not in guarded
        }

    def _dominates_site(self, def_block: BasicBlock, def_pos: int,
                        use_block: BasicBlock, use_pos: int) -> bool:
        if def_block is use_block:
            return def_pos < use_pos
        from repro.ir.analysis_cache import dominators_of

        return dominators_of(self.cfg).strictly_dominates(
            def_block, use_block
        )

    def _const_operand(self, operand, use_block: BasicBlock,
                       use_pos: int):
        """The constant value of an operand at a use site, or None."""
        if isinstance(operand, Immediate):
            return operand.value
        if not isinstance(operand, Register):
            return None
        return self._const_register(operand, use_block, use_pos)

    def _const_register(self, reg: Register, use_block: BasicBlock,
                        use_pos: int):
        site = self._single_defs.get(reg)
        if site is None:
            return None
        def_block, def_pos, op = site
        if not self._dominates_site(def_block, def_pos, use_block, use_pos):
            return None
        if reg in self._const_memo:
            return self._const_memo[reg]
        # Pre-seed against self-reference (r = add r, 1 is never const).
        self._const_memo[reg] = None
        value = None
        if op.opcode is Opcode.MOV and len(op.srcs) == 1:
            value = self._const_operand(op.srcs[0], def_block, def_pos)
        elif op.opcode is Opcode.CMPP and op.cond is not None \
                and len(op.srcs) == 2 and len(op.dests) == 1:
            lhs = self._const_operand(op.srcs[0], def_block, def_pos)
            rhs = self._const_operand(op.srcs[1], def_block, def_pos)
            if lhs is not None and rhs is not None:
                value = op.cond.evaluate(lhs, rhs)
        self._const_memo[reg] = value
        return value

    # ------------------------------------------------------------------
    # Branch decisions

    def _decide_branch(self, block: BasicBlock) -> Optional[ConstBranch]:
        term = block.terminator
        if term is None or term.guard is not None:
            return None
        position = len(block.ops) - 1
        if term.opcode in (Opcode.BRCT, Opcode.BRCF):
            if not term.srcs or not isinstance(term.srcs[0], Register):
                return None
            value = self._const_register(term.srcs[0], block, position)
            if value is None:
                return None
            taken = bool(value) if term.opcode is Opcode.BRCT \
                else not bool(value)
            dead = block.fallthrough_edge if taken else block.taken_edge
            if dead is None:
                return None
            return ConstBranch(
                block, term,
                "always taken" if taken else "never taken",
                (dead,),
            )
        if term.opcode is Opcode.SWITCH:
            if not term.srcs:
                return None
            value = self._const_operand(term.srcs[0], block, position)
            if value is None:
                return None
            dead: List[Edge] = []
            matched = False
            for edge in block.out_edges:
                if edge.kind is EdgeKind.CASE:
                    if edge.case_value == value:
                        matched = True
                    else:
                        dead.append(edge)
            if matched:
                dead.extend(
                    edge for edge in block.out_edges
                    if edge.kind is EdgeKind.DEFAULT
                )
                decision = f"always selects case {value}"
            else:
                decision = "always selects the default case"
            if not dead:
                return None
            return ConstBranch(block, term, decision, tuple(dead))
        return None
