"""Cycle-accurate execution of region schedules.

Execution model (per region visit):

1. Cycles execute in order.  At the top of each cycle, register writes
   whose latency has elapsed commit (NUAL semantics: a consumer scheduled
   too early would read the *old* value — the DDG guarantees this never
   matters, and the co-simulation tests prove it).
2. Within a cycle, stores execute first — the Playdoh rule that "a store
   and any dependent memory operation can be scheduled in the same cycle".
3. Remaining ops execute: guarded ops whose predicate is false are
   squashed; everything else executes speculatively (dismissible
   semantics: a speculated divide-by-zero yields 0 rather than trapping,
   like Play-Doh's dismissible loads).
4. Exit branches whose predicate is true fire.  Exactly one exit fires
   per region visit (guard predicates are disjoint by construction; the
   simulator asserts this).  At the exit, in-flight writes drain, the
   exit's renaming copies apply (restoring original register names for
   the next region), and control transfers to the region owning the
   target block.

Cycle accounting: a region visit costs the cycle index at which its exit
fired — the same quantity the static estimator weights by profile counts.
Calls are executed recursively on the callee's own schedules; their cycles
are accounted to the callee (region-level scheduling treats calls as
atomic ops, as the paper's compiler does).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.util.errors import InterpreterError, SchedulingError
from repro.ir.clone import clone_program
from repro.ir.function import Function, Program
from repro.ir.registers import Register
from repro.ir.types import Immediate, Opcode
from repro.interp.ops import PURE_OPCODES, evaluate
from repro.interp.state import MachineState
from repro.machine.model import MachineModel
from repro.regions.region import RegionPartition
from repro.schedule.schedule import RegionSchedule, SchedOp
from repro.schedule.scheduler import ScheduleOptions, schedule_partition
from repro.evaluation.schemes import Scheme


class ScheduledFunction:
    """One function's regions and their schedules."""

    def __init__(self, function: Function, partition: RegionPartition,
                 schedules: List[RegionSchedule]):
        self.function = function
        self.partition = partition
        self.by_root: Dict[int, RegionSchedule] = {
            sched.region.root.bid: sched for sched in schedules
        }

    def schedule_for_block(self, bid: int) -> RegionSchedule:
        """The schedule of the region rooted at block ``bid``.

        Control only ever enters a region at its root (single-entry), so
        lookups by root id suffice.
        """
        try:
            return self.by_root[bid]
        except KeyError:
            raise SchedulingError(
                f"bb{bid} is not a region root in {self.function.name}"
            ) from None


class ScheduledProgram:
    """A fully scheduled program ready for simulation."""

    def __init__(self, program: Program, machine: MachineModel,
                 scheme_name: str):
        self.program = program
        self.machine = machine
        self.scheme_name = scheme_name
        self.functions: Dict[str, ScheduledFunction] = {}

    def add(self, scheduled: ScheduledFunction) -> None:
        self.functions[scheduled.function.name] = scheduled


def schedule_program(
    program: Program,
    scheme: Scheme,
    machine: MachineModel,
    options: Optional[ScheduleOptions] = None,
) -> ScheduledProgram:
    """Form regions and schedule every function; input program untouched."""
    options = options or ScheduleOptions()
    worked = clone_program(program) if scheme.mutates else program
    result = ScheduledProgram(worked, machine, scheme.name)
    for function in worked.functions():
        partition = scheme.form(function.cfg)
        schedules = schedule_partition(partition, machine, options)
        result.add(ScheduledFunction(function, partition, schedules))
    return result


class VLIWSimulator:
    """Executes a :class:`ScheduledProgram`."""

    def __init__(self, scheduled: ScheduledProgram,
                 max_region_visits: int = 2_000_000):
        self.scheduled = scheduled
        self.program = scheduled.program
        self.machine = scheduled.machine
        self.max_region_visits = max_region_visits
        self.memory: Dict[int, object] = MachineState.initial_memory(
            self.program
        )
        #: Total cycles spent, per the region-exit accounting above.
        self.cycles = 0
        self.region_visits = 0
        #: Speculated/guarded ops whose guard was false at execute time.
        self.squashes = 0
        #: In-flight long-latency writes applied at a region boundary.
        self.drained_writes = 0

    def record_metrics(self, metrics) -> None:
        """Count this run's totals into a metrics registry (gauges:
        simulator state is per-run and process-local, so these sit
        outside the serial/parallel determinism contract)."""
        metrics.gauge("sim.cycles", self.cycles)
        metrics.gauge("sim.region_visits", self.region_visits)
        metrics.gauge("sim.squashes", self.squashes)
        metrics.gauge("sim.drained_writes", self.drained_writes)

    # ------------------------------------------------------------------

    def run(self, args: Sequence[object] = ()):
        return self.call(self.program.entry_name, list(args))

    def call(self, name: str, args: Sequence[object]):
        scheduled = self.scheduled.functions[name]
        function = scheduled.function
        if len(args) != len(function.params):
            raise InterpreterError(
                f"{name} expects {len(function.params)} args, got {len(args)}"
            )
        state = MachineState(memory=self.memory, strict=False)
        for param, value in zip(function.params, args):
            state.write(param, value)

        block_id = function.cfg.entry.bid
        while True:
            self.region_visits += 1
            if self.region_visits > self.max_region_visits:
                raise InterpreterError("region visit budget exhausted")
            schedule = scheduled.schedule_for_block(block_id)
            outcome = self._run_region(schedule, state)
            if outcome.returned:
                return outcome.value
            block_id = outcome.target_bid

    # ------------------------------------------------------------------

    def _run_region(self, schedule: RegionSchedule,
                    state: MachineState) -> "_RegionOutcome":
        pending: List[Tuple[int, Register, object]] = []
        fired: Optional[Tuple[SchedOp, object]] = None

        for cycle_index, multiop in schedule.iter_bundles():
            # 1. Commit writes whose latency elapsed.
            still_pending = []
            for ready, register, value in pending:
                if ready <= cycle_index:
                    state.write(register, value)
                else:
                    still_pending.append((ready, register, value))
            pending = still_pending

            # 2. Stores first (Playdoh same-cycle forwarding).
            for sop in multiop:
                if sop.op.opcode is Opcode.ST:
                    self._execute_store(sop, state)

            # 3. Everything else.
            for sop in multiop:
                op = sop.op
                if op.opcode is Opcode.ST:
                    continue
                if sop.exit is not None:
                    result = self._try_exit(sop, state)
                    if result is not None:
                        if fired is not None:
                            raise SchedulingError(
                                f"two exits fired in one region visit: "
                                f"{fired[0]!r} and {sop!r}"
                            )
                        fired = (sop, result[0])
                    continue
                self._execute_compute(sop, state, pending, cycle_index)

            if fired is not None:
                self.cycles += cycle_index
                break
        else:
            if fired is None:
                raise SchedulingError(
                    f"region {schedule.region!r} finished with no exit fired"
                )

        # Drain in-flight writes at the boundary (stall-equivalent).
        self.drained_writes += len(pending)
        for _ready, register, value in pending:
            state.write(register, value)

        exit_sop, ret_value = fired
        # Apply the exit's renaming copies (original <- renamed).
        for exit, original, renamed in schedule.copies:
            if exit is exit_sop.exit:
                state.write(original, state.read(renamed))

        if exit_sop.exit.is_return:
            return _RegionOutcome(returned=True, value=ret_value)
        return _RegionOutcome(target_bid=exit_sop.exit.edge.dst.bid)

    # ------------------------------------------------------------------

    def _value(self, state: MachineState, operand):
        if isinstance(operand, Immediate):
            return operand.value
        return state.read(operand)

    def _guard_holds(self, state: MachineState, sop: SchedOp) -> bool:
        if sop.op.guard is None:
            return True
        return bool(state.read(sop.op.guard))

    def _execute_store(self, sop: SchedOp, state: MachineState) -> None:
        if not self._guard_holds(state, sop):
            self.squashes += 1
            return
        op = sop.op
        base = self._value(state, op.srcs[0])
        offset = self._value(state, op.srcs[1])
        value = self._value(state, op.srcs[2])
        state.store(base + offset, value)

    def _try_exit(self, sop: SchedOp, state: MachineState):
        """Returns (value,) when the exit fires, else None."""
        op = sop.op
        if op.opcode is Opcode.RET:
            if not self._guard_holds(state, sop):
                return None
            value = self._value(state, op.srcs[0]) if op.srcs else None
            return (value,)
        if op.opcode is Opcode.BRU:
            if not self._guard_holds(state, sop):
                return None
            return (None,)
        # Predicated exit branch.
        predicate = bool(self._value(state, op.srcs[0]))
        if op.opcode is Opcode.BRCT and predicate:
            return (None,)
        if op.opcode is Opcode.BRCF and not predicate:
            return (None,)
        return None

    def _execute_compute(self, sop: SchedOp, state: MachineState,
                         pending: List[Tuple[int, Register, object]],
                         cycle_index: int) -> None:
        op = sop.op
        opcode = op.opcode
        latency = self.machine.latency(op)

        def write(register: Register, value) -> None:
            if latency <= 1:
                state.write(register, value)
            else:
                pending.append((cycle_index + latency, register, value))

        if not self._guard_holds(state, sop):
            self.squashes += 1
            # Guarded op squashed; CMPPs still clear their dests so the
            # guard chain stays well-defined along not-taken paths.
            if opcode in (Opcode.CMPP, Opcode.NINSET, Opcode.PAND,
                          Opcode.PANDCN, Opcode.POR):
                for dest in op.dests:
                    write(dest, False)
            return

        if opcode in PURE_OPCODES:
            values = [self._value(state, s) for s in op.srcs]
            write(op.dest, evaluate(opcode, values, dismissible=True))
        elif opcode is Opcode.LD:
            base = self._value(state, op.srcs[0])
            offset = self._value(state, op.srcs[1])
            try:
                address = int(base) + int(offset)
            except (TypeError, ValueError):
                address = 0  # dismissible: garbage speculative address
            write(op.dest, state.load(address))
        elif opcode is Opcode.CMPP:
            lhs = self._value(state, op.srcs[0])
            rhs = self._value(state, op.srcs[1])
            try:
                result = bool(op.cond.evaluate(lhs, rhs))
            except TypeError:
                result = False  # speculative compare on junk
            write(op.dests[0], result)
            if len(op.dests) > 1:
                write(op.dests[1], not result)
        elif opcode is Opcode.PAND:
            values = [bool(self._value(state, s)) for s in op.srcs]
            write(op.dest, all(values))
        elif opcode is Opcode.PANDCN:
            values = [bool(self._value(state, s)) for s in op.srcs]
            rest = all(values[1:]) if len(values) > 1 else True
            write(op.dest, (not values[0]) and rest)
        elif opcode is Opcode.POR:
            values = [bool(self._value(state, s)) for s in op.srcs]
            write(op.dest, any(values))
        elif opcode is Opcode.NINSET:
            selector = self._value(state, op.srcs[0])
            members = {self._value(state, s) for s in op.srcs[1:]}
            write(op.dest, selector not in members)
        elif opcode is Opcode.PBR:
            write(op.dest, op.target)
        elif opcode is Opcode.CALL:
            values = [self._value(state, s) for s in op.srcs]
            result = self.call(op.callee, values)
            if op.dests:
                write(op.dest, result)
        elif opcode is Opcode.NOP:
            pass
        else:
            raise SchedulingError(
                f"simulator cannot execute opcode {opcode.value}"
            )


class _RegionOutcome:
    __slots__ = ("returned", "value", "target_bid")

    def __init__(self, returned: bool = False, value=None,
                 target_bid: Optional[int] = None):
        self.returned = returned
        self.value = value
        self.target_bid = target_bid


def simulate(
    program: Program,
    scheme: Scheme,
    machine: MachineModel,
    args: Sequence[object] = (),
    options: Optional[ScheduleOptions] = None,
):
    """Schedule and execute; returns (result, simulator).

    The simulator object exposes final memory and the dynamic cycle count.
    """
    scheduled = schedule_program(program, scheme, machine, options)
    simulator = VLIWSimulator(scheduled)
    result = simulator.run(args)
    return result, simulator
