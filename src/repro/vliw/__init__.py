"""VLIW schedule execution.

The paper *estimates* performance from schedule heights; this package goes
one step further and actually executes the schedules the region scheduler
produces — MultiOp by MultiOp, with non-unit latencies (results invisible
until issue + latency), predicated ops, speculation, renaming copies at
region exits, and predicated exit branches.  Two things fall out:

* a **correctness oracle**: for any executable program, the simulated
  scheduled program must return the same value and leave the same memory
  as the sequential interpreter (tested extensively in
  ``tests/test_cosim.py``);
* a **dynamic cycle count** that, when the profile weights match the
  simulated input, equals the static estimate
  ``sum(exit weight x exit cycle)`` exactly — validating the paper's
  estimation methodology within this framework.
"""

from repro.vliw.simulator import (
    ScheduledFunction,
    ScheduledProgram,
    VLIWSimulator,
    schedule_program,
    simulate,
)

__all__ = [
    "ScheduledFunction",
    "ScheduledProgram",
    "VLIWSimulator",
    "schedule_program",
    "simulate",
]
