"""The stable, typed entry points of the toolkit.

Everything a caller needs for the paper's workflow — load or compile a
program, name a scheme, evaluate the experiment grid, co-simulate, and
run the differential validator — lives here with plain-data arguments
(paths, spec strings, :class:`SchemeSpec`) instead of the internal
closure-holding objects.  The CLI and the tests go through this module;
the subpackage internals stay importable but are not the contract.

Scheme and machine parameters accept either the parsed object or its
textual name (``"treegion-td:2.0"``, ``"8U"``), so the facade composes
with configuration files and command lines without ad-hoc parsing at
every call site.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.ir.function import Program
from repro.ir.parser import parse_program
from repro.machine.model import MachineModel
from repro.schedule.scheduler import ScheduleOptions
from repro.evaluation.engine import (
    CellResult,
    GridCell,
    evaluate_cell,
    evaluate_grid as _evaluate_grid,
    machine_by_name,
)
from repro.evaluation.schemes import Scheme, SchemeSpec, SchemeSpecError
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.util.timing import NULL_TIMER, StageTimer

SchemeLike = Union[str, SchemeSpec, Scheme]
MachineLike = Union[str, MachineModel]


def load_program(path: Optional[str] = None, *,
                 text: Optional[str] = None,
                 optimize: bool = False) -> Program:
    """Load a program from a file path or a string.

    Textual IR dumps are detected by their ``program entry=`` header;
    anything else is treated as minic source.  ``optimize=True`` applies
    the classic optimization pipeline before returning.
    """
    if (path is None) == (text is None):
        raise ValueError("pass exactly one of path= or text=")
    if path is not None:
        with open(path) as handle:
            text = handle.read()
    assert text is not None
    if text.lstrip().startswith("program entry="):
        program = parse_program(text)
    else:
        program = compile_source(text)
    if optimize:
        from repro.opt import optimize_program

        optimize_program(program)
    return program


def compile_source(source: str, optimize: bool = False) -> Program:
    """minic source → verified IR program."""
    from repro.lang import compile_source as _compile

    program = _compile(source)
    if optimize:
        from repro.opt import optimize_program

        optimize_program(program)
    return program


def make_scheme(spec: SchemeLike) -> Scheme:
    """Resolve a scheme from a spec string, a SchemeSpec, or a Scheme."""
    if isinstance(spec, Scheme):
        return spec
    if isinstance(spec, SchemeSpec):
        return spec.build()
    return SchemeSpec.parse(spec).build()


def machine(name: MachineLike) -> MachineModel:
    """Resolve a machine model from its name (``1U``/``4U``/``8U``/<N>U)."""
    if isinstance(name, MachineModel):
        return name
    return machine_by_name(name)


def evaluate_grid(
    cells: Sequence[GridCell],
    *,
    programs: Optional[Dict[str, Program]] = None,
    program_texts: Optional[Dict[str, str]] = None,
    jobs: int = 1,
    timer: StageTimer = NULL_TIMER,
    metrics=NULL_METRICS,
    tracer=NULL_TRACER,
    region_memo=None,
    region_store=None,
) -> List[CellResult]:
    """Evaluate experiment grid cells (PR-1 engine; see its module doc).

    ``jobs=1`` runs the serial shared-work path, ``jobs>1`` (or 0 for
    the CPU count) fans out over a worker pool — both bit-identical to
    per-cell evaluation.  A supplied ``metrics`` registry collects the
    pipeline counters (identically on either path, worker registries
    merged in); a ``tracer`` records the run as spans.  ``region_memo``
    and ``region_store`` control the region-level result cache — see
    :func:`repro.evaluation.engine.evaluate_grid` (memoization is on by
    default and bit-identical; pass ``region_memo=False`` to disable).
    """
    return _evaluate_grid(
        cells, jobs=jobs, programs=programs, program_texts=program_texts,
        timer=timer, metrics=metrics, tracer=tracer,
        region_memo=region_memo, region_store=region_store,
    )


def cached_evaluate(
    cells: Sequence[GridCell],
    *,
    store=None,
    cache_dir: Optional[str] = None,
    cache_max_mb: float = 256,
    programs: Optional[Dict[str, Program]] = None,
    program_texts: Optional[Dict[str, str]] = None,
    jobs: int = 1,
    timer: StageTimer = NULL_TIMER,
    metrics=NULL_METRICS,
    tracer=NULL_TRACER,
    region_memo=None,
) -> List[CellResult]:
    """:func:`evaluate_grid` routed through the persistent artifact store.

    Every cell is first looked up in the store (an
    :class:`~repro.serve.store.ArtifactStore`, or one opened at
    ``cache_dir``); only the misses are evaluated — in one engine run,
    so the PR-1 work sharing still applies — and their results are
    written back.  Results are bit-identical to :func:`evaluate_grid`
    on every path (the store round-trips results losslessly).

    The region memo persists alongside the cell results: misses are
    evaluated with a region store rooted at ``<store dir>/regions``, so
    even a *changed* program reuses every region it has in common with
    earlier runs.  ``region_memo=False`` turns that layer off.

    Pass exactly one of ``store`` or ``cache_dir``; with neither this
    degrades to a plain :func:`evaluate_grid` call.
    """
    import os
    from repro.ir.printer import format_program
    from repro.serve.service import resolve_program_text
    from repro.serve.store import ArtifactStore, cell_key
    from repro.serve.jobs import JobRequest

    if store is not None and cache_dir is not None:
        raise ValueError("pass at most one of store= or cache_dir=")
    if store is None and cache_dir is None:
        return evaluate_grid(
            cells, programs=programs, program_texts=program_texts,
            jobs=jobs, timer=timer, metrics=metrics, tracer=tracer,
        )
    opened = store is None
    if opened:
        store = ArtifactStore(cache_dir, max_mb=cache_max_mb)
    try:
        with tracer.span("cached_evaluate", cells=len(cells)):
            keys: List[str] = []
            text_cache: Dict[str, str] = dict(program_texts or {})
            for cell in cells:
                text = text_cache.get(cell.benchmark)
                if text is None:
                    if programs is not None and cell.benchmark in programs:
                        text = format_program(programs[cell.benchmark])
                    else:
                        text = resolve_program_text(
                            JobRequest(cell=cell)
                        )
                    text_cache[cell.benchmark] = text
                keys.append(cell_key(text, cell))
            from repro.obs.metrics import metrics_scope

            with metrics_scope(metrics):
                found = {index: store.get(key)
                         for index, key in enumerate(keys)}
            miss_indices = [i for i, result in found.items()
                            if result is None]
            if miss_indices:
                region_spec = None
                if region_memo is not False:
                    region_spec = (os.path.join(store.directory, "regions"),
                                   store.max_bytes / (1024 * 1024))
                fresh = evaluate_grid(
                    [cells[i] for i in miss_indices],
                    programs=programs, program_texts=program_texts,
                    jobs=jobs, timer=timer, metrics=metrics,
                    tracer=tracer, region_memo=region_memo,
                    region_store=region_spec,
                )
                with metrics_scope(metrics):
                    for index, result in zip(miss_indices, fresh):
                        store.put(keys[index], result)
                        found[index] = result
            return [found[i] for i in range(len(cells))]
    finally:
        if opened:
            store.close()


def connect(endpoint, **kwargs):
    """Dial a compile front-end; returns a connected
    :class:`~repro.serve.client.Client` (use as a context manager).

    The endpoint string is the only transport switch —
    ``unix:///path/to.sock`` for a local socket, ``tcp://host:port``
    for a fleet across the network, or a bare filesystem path (treated
    as a unix socket)::

        with repro.api.connect("tcp://127.0.0.1:7421") as client:
            results = client.evaluate(cells, program)
            client.warm(grid)           # populate the fleet's caches
            print(client.stats())

    Keyword arguments (``timeout``, ``retries``, ...) pass through to
    :class:`~repro.serve.client.Client`.  Retries are idempotent by
    construction: requests are content-keyed, so a resend after a
    dropped connection dedups server-side instead of recomputing.
    """
    from repro.serve.client import connect as _connect

    return _connect(endpoint, **kwargs)


def open_fleet(
    *,
    shards: int = 2,
    cache_dir: Optional[str] = None,
    cache_max_mb: float = 256,
    jobs: int = 1,
    batch_size: int = 16,
    max_pending: int = 256,
    job_timeout: Optional[float] = None,
    retries: int = 2,
    metrics=NULL_METRICS,
    tracer=NULL_TRACER,
    **kwargs,
):
    """Open a :class:`~repro.serve.fleet.CompileFleet` in-process.

    The fleet shards work by content key across ``shards`` independent
    service+store pairs (each under ``cache_dir/shard-NN``), dedups
    in-flight requests, serves warm hits from an in-memory hot tier,
    and supervises/restarts failed shards.  Use as a context manager;
    serve it over a socket with ``repro serve --endpoint ...`` or
    :class:`~repro.serve.frontend.FrontendServer`.
    """
    from repro.serve.fleet import CompileFleet

    return CompileFleet(
        shards=shards, cache_dir=cache_dir, cache_max_mb=cache_max_mb,
        jobs=jobs, batch_size=batch_size, max_pending=max_pending,
        job_timeout=job_timeout, retries=retries, metrics=metrics,
        tracer=tracer, **kwargs,
    )


def open_service(
    *,
    cache_dir: Optional[str] = None,
    cache_max_mb: float = 256,
    jobs: int = 2,
    batch_size: int = 16,
    max_pending: int = 256,
    job_timeout: Optional[float] = None,
    retries: int = 2,
    metrics=NULL_METRICS,
    tracer=NULL_TRACER,
):
    """Open a single :class:`~repro.serve.service.CompileService`.

    .. deprecated::
        ``open_service`` predates the fleet and remains as a shim for
        single-shard, in-process use (it reads/writes the *unsharded*
        store layout at ``cache_dir``).  New code should use
        :func:`open_fleet` in-process or :func:`connect` against a
        served endpoint.
    """
    import warnings

    from repro.serve.service import CompileService
    from repro.serve.store import ArtifactStore

    warnings.warn(
        "repro.api.open_service is deprecated; use repro.api.open_fleet "
        "(in-process) or repro.api.connect (against a served endpoint)",
        DeprecationWarning, stacklevel=2,
    )
    store = None
    if cache_dir is not None:
        store = ArtifactStore(cache_dir, max_mb=cache_max_mb)
    return CompileService(
        store=store, jobs=jobs, batch_size=batch_size,
        max_pending=max_pending, job_timeout=job_timeout,
        retries=retries, metrics=metrics, tracer=tracer,
    )


def simulate(
    program: Program,
    scheme: SchemeLike = "treegion",
    machine_model: MachineLike = "4U",
    args: Sequence[object] = (),
    options: Optional[ScheduleOptions] = None,
):
    """Schedule ``program`` and execute it on the VLIW simulator.

    Returns ``(result, simulator)``; the simulator object exposes final
    memory and the dynamic cycle count.  The program should be profiled
    (or carry weights) before calling for meaningful schedules.
    """
    from repro.vliw.simulator import simulate as _simulate

    return _simulate(
        program, make_scheme(scheme), machine(machine_model), args, options,
    )


def lint_program(
    program: Program,
    *,
    schedule: bool = False,
    scheme: Optional[SchemeLike] = None,
    machine_model: Optional[MachineLike] = None,
    options: Optional[ScheduleOptions] = None,
):
    """Run the static-analysis rules; returns a
    :class:`~repro.lint.diagnostics.LintReport`.

    IR rules always run.  With ``schedule=True`` the program is also
    scheduled (default: treegion on 8U) and every region schedule is
    certified against the machine model and pre-scheduling DDG; schedule
    certification is skipped when the IR rules already found errors.
    """
    from repro.lint.run import lint_program as _lint

    return _lint(
        program,
        schedule=schedule,
        scheme=None if scheme is None else make_scheme(scheme),
        machine=None if machine_model is None else machine(machine_model),
        options=options,
    )


def analyze_program(
    program: Program,
    *,
    name: Optional[str] = None,
    schemes: Optional[Sequence[str]] = None,
    machines: Optional[Sequence[str]] = None,
    heuristics: Optional[Sequence[str]] = None,
    calls: bool = False,
    lint: bool = True,
):
    """Dataflow analysis report for one program (JSON-ready dict).

    Computes every region's critical-path and resource-saturation lower
    bounds on schedule height, schedules the same regions under the
    requested heuristics, and reports the bounds next to the achieved
    heights (``summary.sound`` is False if any bound exceeds an achieved
    height — a soundness bug).  ``lint=True`` adds the flow-sensitive
    lint summary; ``calls=True`` the whole-program call graph.  See
    :func:`repro.analysis.driver.analyze_program`.
    """
    from repro.analysis.driver import (
        DEFAULT_MACHINES, DEFAULT_SCHEMES,
        analyze_program as _analyze,
    )

    return _analyze(
        program,
        name=name,
        schemes=tuple(schemes) if schemes else DEFAULT_SCHEMES,
        machines=tuple(machines) if machines else DEFAULT_MACHINES,
        heuristics=heuristics,
        calls=calls,
        lint=lint,
    )


def gap_report(
    program: Program,
    *,
    name: Optional[str] = None,
    schemes: Optional[Sequence[str]] = None,
    machines: Optional[Sequence[str]] = None,
    budget: Optional[int] = None,
    max_ops: Optional[int] = None,
    lint: bool = True,
):
    """Optimality-gap report for one program (JSON-ready dict).

    Solves every region with the exact branch-and-bound backend
    (:mod:`repro.exact`), scores each list-scheduler heuristic's height
    against the proven optimum, and machine-certifies the
    :mod:`repro.analysis.bounds` lower bounds (``summary.sound`` is
    False if any bound exceeds a proven optimum).  ``budget`` caps the
    search per region (default
    :data:`repro.exact.backend.DEFAULT_NODE_BUDGET`); regions the budget
    cannot prove are reported ``budget-exceeded`` with the best
    heuristic height.  ``lint=True`` certifies every exact schedule with
    the ``sched.*`` legality rules.  See :func:`repro.exact.gap.
    gap_program`.
    """
    from repro.exact.gap import (
        DEFAULT_MACHINES, DEFAULT_SCHEMES, gap_program,
    )

    return gap_program(
        program,
        name=name,
        schemes=tuple(schemes) if schemes else DEFAULT_SCHEMES,
        machines=tuple(machines) if machines else DEFAULT_MACHINES,
        budget=budget,
        max_ops=max_ops,
        lint=lint,
    )


def validate(
    seeds: Union[int, Sequence[int]] = 50,
    *,
    start: int = 0,
    grid: Union[None, str, Sequence] = None,
    jobs: int = 1,
    shrink: bool = True,
    max_trials: int = 3000,
    engine_every: Optional[int] = None,
    report_dir: Optional[str] = None,
    progress=None,
    metrics=NULL_METRICS,
    tracer=NULL_TRACER,
):
    """Run the differential validation campaign; see :mod:`repro.validate`.

    ``seeds`` is a count (seeds ``start .. start+seeds-1``) or an
    explicit sequence.  ``grid`` is a list of cells or a spec string
    like ``"schemes=bb,treegion;machines=4U"``.  Returns a
    :class:`~repro.validate.runner.ValidationSummary`.
    """
    from repro.validate.runner import (
        ENGINE_SAMPLE_EVERY, parse_grid_spec, run_validation,
    )

    if isinstance(seeds, int):
        seeds = range(start, start + seeds)
    if grid is None or isinstance(grid, str):
        grid = parse_grid_spec(grid)
    return run_validation(
        list(seeds),
        grid=grid,
        jobs=jobs,
        shrink=shrink,
        max_trials=max_trials,
        engine_every=(ENGINE_SAMPLE_EVERY if engine_every is None
                      else engine_every),
        report_dir=report_dir,
        progress=progress,
        metrics=metrics,
        tracer=tracer,
    )


__all__ = [
    "load_program",
    "compile_source",
    "make_scheme",
    "machine",
    "evaluate_grid",
    "cached_evaluate",
    "connect",
    "open_fleet",
    "open_service",
    "evaluate_cell",
    "simulate",
    "lint_program",
    "analyze_program",
    "gap_report",
    "validate",
    "GridCell",
    "CellResult",
    "Scheme",
    "SchemeSpec",
    "SchemeSpecError",
    "ScheduleOptions",
    "MetricsRegistry",
    "NULL_METRICS",
    "Tracer",
    "NULL_TRACER",
]
