"""Region statistics: the raw numbers behind Tables 1–4.

The paper reports, per benchmark and region scheme: region count, average
and maximum basic blocks per region, average ops per region (Tables 1, 2,
4), and the code-expansion factor introduced by tail duplication (Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.ir.cfg import CFG
from repro.regions.region import RegionPartition


@dataclass(frozen=True)
class RegionStats:
    """Aggregate shape statistics for one partition (or several combined)."""

    region_count: int
    avg_blocks: float
    max_blocks: int
    avg_ops: float
    total_blocks: int
    total_ops: int

    def __str__(self) -> str:
        return (
            f"regions={self.region_count} avg_bb={self.avg_blocks:.2f} "
            f"max_bb={self.max_blocks} avg_ops={self.avg_ops:.2f}"
        )


def partition_stats(
    partitions: Iterable[RegionPartition], multi_block_only: bool = False
) -> RegionStats:
    """Combine statistics over one or more partitions (e.g. all functions
    of a benchmark).

    ``multi_block_only`` restricts to regions with at least two blocks —
    useful when reporting "superblocks formed" in the style of Table 4,
    where single leftover blocks are not counted as superblocks.
    """
    block_counts: List[int] = []
    op_counts: List[int] = []
    for partition in partitions:
        for region in partition:
            if multi_block_only and region.block_count < 2:
                continue
            block_counts.append(region.block_count)
            op_counts.append(region.op_count)
    count = len(block_counts)
    if count == 0:
        return RegionStats(0, 0.0, 0, 0.0, 0, 0)
    return RegionStats(
        region_count=count,
        avg_blocks=sum(block_counts) / count,
        max_blocks=max(block_counts),
        avg_ops=sum(op_counts) / count,
        total_blocks=sum(block_counts),
        total_ops=sum(op_counts),
    )


def code_expansion(original_ops: int, cfg: CFG) -> float:
    """Code-size growth factor after formation (Table 3).

    ``original_ops`` is the function's op count before any tail
    duplication; the paper's numbers are program-level aggregates of
    exactly this ratio.
    """
    if original_ops <= 0:
        return 1.0
    return cfg.total_ops / original_ops
