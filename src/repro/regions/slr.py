"""Simple linear region (SLR) formation.

Section 3 of the paper: "Simple linear regions are formed in the same
manner as superblocks, but tail duplication is not permitted.  In fact,
their formation is implemented as a special case of treegion formation,
where for a given node (basic block) placed into an SLR, the successor node
with the highest profile weight is selected next for possible inclusion
rather than all successors of the node.  The result is a single-entry,
multiple-exit region formed without tail duplication."

We follow that construction literally: the treegion absorb loop with a
successor function returning only the heaviest out-edge's destination
(ties broken by edge order, deterministically).
"""

from __future__ import annotations

from typing import List

from repro.ir.cfg import BasicBlock, CFG, Edge
from repro.regions.absorb import absorb_into_tree, grow_partition
from repro.regions.region import Region, RegionPartition


def heaviest_successor(block: BasicBlock) -> List[BasicBlock]:
    """The destination of the heaviest out-edge (first edge wins ties)."""
    best: Edge = None  # type: ignore[assignment]
    for edge in block.out_edges:
        if best is None or edge.weight > best.weight:
            best = edge
    return [best.dst] if best is not None else []


def form_slrs(cfg: CFG) -> RegionPartition:
    """Partition the CFG into simple linear regions."""

    def absorb(region: Region, node: BasicBlock, partition: RegionPartition) -> None:
        absorb_into_tree(region, node, partition, successors_of=heaviest_successor)

    return grow_partition(cfg, "slr", absorb)
