"""Scheduling regions: the shared framework plus the *linear* baselines.

The paper compares treegions (in :mod:`repro.core`) against three linear
region types, all implemented here:

* basic-block regions (:func:`form_basic_block_regions`);
* simple linear regions, SLRs (:func:`form_slrs`) — superblock-like chains
  grown along the heaviest successor, with no tail duplication (Section 3);
* superblocks (:func:`form_superblocks`) — profile-driven traces made
  single-entry by tail duplication (Section 4's comparison baseline).

A key observation the implementation leans on (and the paper makes
explicitly for SLRs): every region type here is a *tree* of basic blocks —
linear regions are just degenerate trees — so one :class:`Region` class and
one scheduler serve every scheme.
"""

from repro.regions.region import Region, RegionExit, RegionPartition
from repro.regions.basic import form_basic_block_regions
from repro.regions.slr import form_slrs
from repro.regions.superblock import form_superblocks, SuperblockLimits
from repro.regions.stats import (
    RegionStats,
    partition_stats,
    code_expansion,
)

__all__ = [
    "Region",
    "RegionExit",
    "RegionPartition",
    "form_basic_block_regions",
    "form_slrs",
    "form_superblocks",
    "SuperblockLimits",
    "RegionStats",
    "partition_stats",
    "code_expansion",
]
