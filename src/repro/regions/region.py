"""The region abstraction shared by every scheme in the paper.

A :class:`Region` is a single-entry set of basic blocks whose internal
control flow forms a *tree* rooted at the entry: basic-block regions are
1-node trees, SLRs and superblocks are chains, treegions are general trees.
This mirrors the paper's observation that SLR formation "is implemented as
a special case of treegion formation" — and it lets one DDG builder, one
list scheduler, and one estimator serve all four region types.

Exits: any CFG edge from a member block to a non-member (or back to the
region's own root — the loop-back case) leaves the region, as does falling
off a ``RET`` block.  Each :class:`RegionExit` knows its source block, its
profile weight, and later (after scheduling) the cycle at which it retires;
profile-weighted execution time is ``sum(exit.weight * exit.cycle)``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.util.errors import SchedulingError
from repro.ir.cfg import BasicBlock, Edge
from repro.ir.types import Opcode


class RegionExit:
    """One way control can leave a region.

    Either wraps a CFG edge leaving the member set, or marks the function
    return in a ``RET``-terminated member (``edge is None``).
    """

    __slots__ = ("source", "edge", "weight")

    def __init__(self, source: BasicBlock, edge: Optional[Edge], weight: float):
        self.source = source
        self.edge = edge
        self.weight = weight

    @property
    def is_return(self) -> bool:
        return self.edge is None

    @property
    def target(self) -> Optional[BasicBlock]:
        return self.edge.dst if self.edge is not None else None

    def __repr__(self) -> str:
        dest = self.edge.dst.name if self.edge else "ret"
        return f"<exit {self.source.name} -> {dest} w={self.weight:g}>"


class Region:
    """A single-entry tree of basic blocks.

    Blocks are kept in absorption order with the root first.  The tree
    structure (parent/children) is recorded as blocks are added; formation
    code supplies the parent, and the invariant that a non-root member's
    parent is a member is enforced.
    """

    _next_rid = 0

    def __init__(self, kind: str):
        self.kind = kind
        Region._next_rid += 1
        self.rid = Region._next_rid
        self.blocks: List[BasicBlock] = []
        self._members: Dict[int, BasicBlock] = {}
        self._parent: Dict[int, Optional[BasicBlock]] = {}
        self._children: Dict[int, List[BasicBlock]] = {}

    # ------------------------------------------------------------------
    # Construction

    def add_block(self, block: BasicBlock, parent: Optional[BasicBlock] = None) -> None:
        """Add ``block`` with the given tree parent (None only for the root)."""
        if block.bid in self._members:
            raise SchedulingError(f"bb{block.bid} added to region twice")
        if parent is None and self.blocks:
            raise SchedulingError(
                f"region already has root bb{self.root.bid}; "
                f"bb{block.bid} needs a parent"
            )
        if parent is not None and parent.bid not in self._members:
            raise SchedulingError(
                f"parent bb{parent.bid} of bb{block.bid} is not in the region"
            )
        self.blocks.append(block)
        self._members[block.bid] = block
        self._parent[block.bid] = parent
        self._children[block.bid] = []
        if parent is not None:
            self._children[parent.bid].append(block)

    # ------------------------------------------------------------------
    # Membership / tree structure

    @property
    def root(self) -> BasicBlock:
        if not self.blocks:
            raise SchedulingError("empty region has no root")
        return self.blocks[0]

    def __contains__(self, block: BasicBlock) -> bool:
        return self._members.get(block.bid) is block

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)

    def parent(self, block: BasicBlock) -> Optional[BasicBlock]:
        return self._parent[block.bid]

    def children(self, block: BasicBlock) -> List[BasicBlock]:
        return list(self._children[block.bid])

    def is_leaf(self, block: BasicBlock) -> bool:
        return not self._children[block.bid]

    def leaves(self) -> List[BasicBlock]:
        return [b for b in self.blocks if self.is_leaf(b)]

    def depth(self, block: BasicBlock) -> int:
        """Tree depth of a member (root = 0)."""
        depth = 0
        current = self._parent[block.bid]
        while current is not None:
            depth += 1
            current = self._parent[current.bid]
        return depth

    def path_to(self, block: BasicBlock) -> List[BasicBlock]:
        """Members from the root down to ``block`` inclusive."""
        path = [block]
        current = self._parent[block.bid]
        while current is not None:
            path.append(current)
            current = self._parent[current.bid]
        path.reverse()
        return path

    def subtree(self, block: BasicBlock) -> List[BasicBlock]:
        """``block`` and every member below it, preorder."""
        result: List[BasicBlock] = []
        stack = [block]
        while stack:
            current = stack.pop()
            result.append(current)
            stack.extend(reversed(self._children[current.bid]))
        return result

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """Tree dominance: in a treegion every block dominates its subtree."""
        current: Optional[BasicBlock] = b
        while current is not None:
            if current is a:
                return True
            current = self._parent[current.bid]
        return False

    @property
    def path_count(self) -> int:
        """Number of distinct root-to-leaf execution paths."""
        return len(self.leaves())

    def paths(self) -> List[List[BasicBlock]]:
        """All root-to-leaf paths, in leaf order."""
        return [self.path_to(leaf) for leaf in self.leaves()]

    # ------------------------------------------------------------------
    # Exits

    def exits(self) -> List[RegionExit]:
        """All exits in block order, sources before their out-edges.

        A member edge is an exit when its destination is outside the region
        or is the region root (a back-edge re-entering the region counts as
        leaving it: the trip through the region ends).  ``RET`` members
        contribute a return exit weighted by the block's weight.
        """
        result: List[RegionExit] = []
        for block in self.blocks:
            term = block.terminator
            if term is not None and term.opcode is Opcode.RET:
                result.append(RegionExit(block, None, block.weight))
                continue
            for edge in block.out_edges:
                if edge.dst not in self or edge.dst is self.root:
                    result.append(RegionExit(block, edge, edge.weight))
        return result

    def exit_count_below(self, block: BasicBlock) -> int:
        """Exits reachable from ``block`` within the region.

        This is the *exit count* of every op in ``block`` for the exit-count
        heuristic: "the number of exits that follow the Op in control flow
        in the treegion".
        """
        members = self.subtree(block)
        member_ids = {b.bid for b in members}
        count = 0
        for member in members:
            term = member.terminator
            if term is not None and term.opcode is Opcode.RET:
                count += 1
                continue
            for edge in member.out_edges:
                if edge.dst.bid not in member_ids or edge.dst is self.root:
                    count += 1
        return count

    # ------------------------------------------------------------------
    # Statistics

    @property
    def op_count(self) -> int:
        return sum(len(b.ops) for b in self.blocks)

    @property
    def block_count(self) -> int:
        return len(self.blocks)

    def distinct_origins(self) -> List[int]:
        """Original block ids represented (duplicates counted once)."""
        seen: Dict[int, None] = {}
        for block in self.blocks:
            seen.setdefault(block.origin, None)
        return list(seen)

    def __repr__(self) -> str:
        ids = ", ".join(f"bb{b.bid}" for b in self.blocks[:8])
        more = "..." if len(self.blocks) > 8 else ""
        return f"<{self.kind} region #{self.rid} [{ids}{more}]>"


class RegionPartition:
    """A set of regions covering a CFG, each block in exactly one region."""

    def __init__(self, kind: str):
        self.kind = kind
        self.regions: List[Region] = []
        self._by_block: Dict[int, Region] = {}

    def add(self, region: Region) -> Region:
        self.regions.append(region)
        for block in region.blocks:
            if block.bid in self._by_block:
                raise SchedulingError(
                    f"bb{block.bid} belongs to two regions"
                )
            self._by_block[block.bid] = region
        return region

    def region_of(self, block: BasicBlock) -> Optional[Region]:
        return self._by_block.get(block.bid)

    def __iter__(self) -> Iterator[Region]:
        return iter(self.regions)

    def __len__(self) -> int:
        return len(self.regions)

    def covers(self, blocks: Sequence[BasicBlock]) -> bool:
        return all(b.bid in self._by_block for b in blocks)

    def verify_covering(self, cfg) -> None:
        """Check the partition invariant: every block in exactly one region."""
        for block in cfg.blocks():
            region = self._by_block.get(block.bid)
            if region is None:
                raise SchedulingError(f"bb{block.bid} is in no region")
        total = sum(len(r) for r in self.regions)
        if total != len(cfg):
            raise SchedulingError(
                f"partition holds {total} blocks, CFG has {len(cfg)}"
            )
