"""Hyperblock formation (Mahlke et al., MICRO-25) — the paper's planned
comparison point.

Section 6: "The serialization of code using predication as in hyperblocks
is an alternative to using tail duplication to eliminate merge points.  We
also plan to compare the tradeoffs between hyperblocks and treegions
directly and to evaluate the merits of predication versus speculation for
scheduling."  This module (with :mod:`repro.schedule.hyperblock`)
implements that comparison.

A **hyperblock** is a single-entry, *acyclic* set of blocks whose internal
control flow is removed by if-conversion: side paths execute under
predicates and only the taken path's results commit.  Unlike a treegion it
may contain merge points (no tail duplication needed); unlike a treegion
its off-path ops are *predicated*, not speculated — they cannot issue
before their guard resolves.

Formation here grows from a root like ``treeform`` but absorbs a block
only when **every** predecessor is already inside (single-entry preserved,
joins if-converted), never absorbs a block with an edge back into the
region (acyclicity; an edge to the root is allowed and becomes a region
exit, so loop bodies if-convert cleanly), excludes blocks containing
calls (predicated calls are not in the machine model), and respects an op
budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.util.ordered import OrderedSet
from repro.ir.cfg import BasicBlock, CFG
from repro.ir.types import Opcode
from repro.regions.region import Region, RegionPartition


@dataclass(frozen=True)
class HyperblockLimits:
    """Knobs bounding hyperblock growth."""

    max_ops: int = 160
    max_blocks: int = 24


class Hyperblock(Region):
    """A single-entry acyclic region scheduled by if-conversion.

    The generic :class:`Region` tree fields are still maintained — the
    tree parent of an absorbed block is its *first* absorbed predecessor —
    but hyperblock consumers use the DAG structure (``dag_preds`` /
    ``dag_succs`` over member blocks) rather than the tree.
    """

    def __init__(self):
        super().__init__("hyperblock")

    # ------------------------------------------------------------------
    # DAG structure

    def dag_preds(self, block: BasicBlock) -> List[BasicBlock]:
        """Member predecessors of a member (excluding edges into the root)."""
        if block is self.root:
            return []
        return [e.src for e in block.in_edges if e.src in self]

    def dag_succs(self, block: BasicBlock) -> List[BasicBlock]:
        """Member successors reached by internal edges."""
        return [
            e.dst for e in block.out_edges
            if e.dst in self and e.dst is not self.root
        ]

    def topological_order(self) -> List[BasicBlock]:
        """Members in dependency order (root first); the region is acyclic
        by construction, which this asserts."""
        remaining = {b.bid: len(self.dag_preds(b)) for b in self.blocks}
        ready = [b for b in self.blocks if remaining[b.bid] == 0]
        order: List[BasicBlock] = []
        while ready:
            block = ready.pop(0)
            order.append(block)
            for succ in self.dag_succs(block):
                remaining[succ.bid] -= 1
                if remaining[succ.bid] == 0:
                    ready.append(succ)
        if len(order) != len(self.blocks):
            raise AssertionError("hyperblock contains a cycle")
        return order

    def reachable_from(self, block: BasicBlock) -> List[BasicBlock]:
        """Members reachable from ``block`` through internal edges
        (inclusive)."""
        seen = OrderedSet()
        stack = [block]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.dag_succs(current))
        return list(seen)

    def exit_count_below(self, block: BasicBlock) -> int:
        """Exits reachable from ``block`` (the exit-count heuristic input,
        generalized from the treegion subtree to DAG reachability)."""
        members = self.reachable_from(block)
        member_ids = {b.bid for b in members}
        count = 0
        for member in members:
            term = member.terminator
            if term is not None and term.opcode is Opcode.RET:
                count += 1
                continue
            for edge in member.out_edges:
                if edge.dst.bid not in member_ids or edge.dst is self.root:
                    count += 1
        return count


def _has_call(block: BasicBlock) -> bool:
    return any(op.opcode is Opcode.CALL for op in block.ops)


class _HyperblockFormer:
    def __init__(self, cfg: CFG, limits: HyperblockLimits):
        self.cfg = cfg
        self.limits = limits
        self.partition = RegionPartition("hyperblock")

    def run(self) -> RegionPartition:
        unprocessed: OrderedSet = OrderedSet()
        if self.cfg.entry is not None:
            unprocessed.add(self.cfg.entry)

        def drain() -> None:
            while unprocessed:
                node = unprocessed.pop_first()
                if self.partition.region_of(node) is not None:
                    continue
                region = self._grow(node)
                self.partition.add(region)
                for block in region.blocks:
                    for succ in block.successors:
                        if self.partition.region_of(succ) is None:
                            unprocessed.add(succ)

        drain()
        for block in self.cfg.blocks():
            if self.partition.region_of(block) is None:
                unprocessed.add(block)
                drain()
        self.partition.verify_covering(self.cfg)
        return self.partition

    # ------------------------------------------------------------------

    def _grow(self, root: BasicBlock) -> Hyperblock:
        region = Hyperblock()
        region.add_block(root)
        op_budget = self.limits.max_ops - len(root.ops)

        changed = True
        while changed and len(region) < self.limits.max_blocks:
            changed = False
            for candidate in self._frontier(region):
                if not self._absorbable(region, candidate, op_budget):
                    continue
                parent = next(
                    e.src for e in candidate.in_edges if e.src in region
                )
                region.add_block(candidate, parent)
                op_budget -= len(candidate.ops)
                changed = True
                break
        return region

    def _frontier(self, region: Hyperblock) -> List[BasicBlock]:
        seen = OrderedSet()
        for block in region.blocks:
            for succ in block.successors:
                if succ not in region:
                    seen.add(succ)
        return list(seen)

    def _absorbable(self, region: Hyperblock, block: BasicBlock,
                    op_budget: int) -> bool:
        if self.partition.region_of(block) is not None:
            return False
        if len(block.ops) > op_budget:
            return False
        if _has_call(block):
            return False  # no predicated calls in the machine model
        # Single entry: every predecessor already if-converted inside.
        for edge in block.in_edges:
            if edge.src not in region:
                return False
        # Acyclicity: no internal edge back to a non-root member.
        for edge in block.out_edges:
            if edge.dst in region and edge.dst is not region.root:
                return False
        return True


def form_hyperblocks(
    cfg: CFG, limits: Optional[HyperblockLimits] = None
) -> RegionPartition:
    """Partition ``cfg`` into hyperblocks.  Does not modify the CFG."""
    return _HyperblockFormer(cfg, limits or HyperblockLimits()).run()
