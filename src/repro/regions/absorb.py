"""The generic region-growing machinery behind Figure 2 of the paper.

``treeform`` (Figure 2) grows regions from the CFG entry: each root absorbs
reachable non-merge-point blocks, and the merge points left hanging off the
region's leaves — its *saplings* — seed new regions.  SLR formation is the
same loop with a restricted successor function ("the successor node with the
highest profile weight is selected next for possible inclusion"), so both
share this module; treegion formation proper lives in
:mod:`repro.core.formation` and plugs in the absorb-everything policy.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.util.ordered import OrderedSet
from repro.ir.cfg import BasicBlock, CFG
from repro.regions.region import Region, RegionPartition

#: An absorb policy: fills ``region`` starting from ``node``; must not touch
#: blocks already claimed by ``partition``.
AbsorbFn = Callable[[Region, BasicBlock, RegionPartition], None]


def absorb_into_tree(
    region: Region,
    node: BasicBlock,
    partition: RegionPartition,
    successors_of: Optional[Callable[[BasicBlock], List[BasicBlock]]] = None,
    parent: Optional[BasicBlock] = None,
) -> None:
    """Figure 2's ``absorb-into-tree``: DFS absorption of non-merge-points.

    Successors are pushed to the *front* of the candidate queue (line 26 of
    the paper's listing), giving depth-first growth.  ``successors_of``
    restricts which successors are considered (SLR formation passes the
    single heaviest one); by default all CFG successors are candidates.

    ``parent`` attaches ``node`` below an existing member instead of making
    it the root — Figure 11's tail-duplication flow absorbs each duplicate
    under the tree block whose edge was retargeted to it.
    """
    if successors_of is None:
        successors_of = lambda block: block.successors  # noqa: E731

    candidates: List[Tuple[BasicBlock, Optional[BasicBlock]]] = [(node, parent)]
    while candidates:
        block, parent = candidates.pop(0)
        if block in region:
            continue
        if region.blocks and block.is_merge_point():
            continue
        if partition.region_of(block) is not None:
            continue
        region.add_block(block, parent)
        new_candidates = [(succ, block) for succ in successors_of(block)]
        candidates = new_candidates + candidates


def region_saplings(region: Region) -> List[BasicBlock]:
    """Successor blocks just outside the region, in discovery order.

    These are the merge points (or unselected successors, for SLRs) that
    delimit the region; ``treeform`` seeds new regions from them.
    """
    seen = OrderedSet()
    for block in region.blocks:
        for succ in block.successors:
            if succ not in region or succ is region.root:
                if succ is not region.root:
                    seen.add(succ)
    return list(seen)


def grow_partition(
    cfg: CFG,
    kind: str,
    absorb: AbsorbFn,
    make_region: Optional[Callable[[], Region]] = None,
) -> RegionPartition:
    """Figure 2's ``treeform`` driver, generic over the absorb policy.

    Starts from the CFG entry, then repeatedly roots new regions at
    saplings until the whole CFG is consumed; blocks unreachable from the
    entry are swept up afterwards in id order so the partition always
    covers the CFG.
    """
    if make_region is None:
        make_region = lambda: Region(kind)  # noqa: E731

    partition = RegionPartition(kind)
    unprocessed: OrderedSet = OrderedSet()
    if cfg.entry is not None:
        unprocessed.add(cfg.entry)

    def drain() -> None:
        while unprocessed:
            node = unprocessed.pop_first()
            if partition.region_of(node) is not None:
                continue
            region = make_region()
            absorb(region, node, partition)
            partition.add(region)
            for sapling in region_saplings(region):
                if partition.region_of(sapling) is None:
                    unprocessed.add(sapling)

    drain()
    for block in cfg.blocks():
        if partition.region_of(block) is None:
            unprocessed.add(block)
            drain()
    partition.verify_covering(cfg)
    return partition
