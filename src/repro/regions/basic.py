"""Basic-block regions: the paper's baseline scheme.

One region per block.  Scheduled on the single-issue machine this is the
denominator of every speedup the paper reports.
"""

from __future__ import annotations

from repro.ir.cfg import CFG
from repro.regions.region import Region, RegionPartition


def form_basic_block_regions(cfg: CFG) -> RegionPartition:
    """Wrap every block of the CFG in its own one-block region."""
    partition = RegionPartition("basic-block")
    for block in cfg.blocks():
        region = Region("basic-block")
        region.add_block(block)
        partition.add(region)
    partition.verify_covering(cfg)
    return partition
