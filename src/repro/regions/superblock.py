"""Superblock formation: profile-driven traces made single-entry.

Follows the Hwu et al. construction the paper compares against (its
footnote 2 notes LEGO reimplements the published algorithm):

1. **Trace selection.**  Seeds are picked heaviest-first; traces grow
   forward and backward along *mutually most likely* edges (the edge must
   be both the source's heaviest out-edge and the destination's heaviest
   in-edge), never revisiting a block, never including the same original
   block twice (no implicit unrolling across back edges).
2. **Tail duplication.**  Side entrances into the middle of a trace are
   removed by cloning the trace suffix and retargeting the side edges to
   the clone chain, which re-enters the pool and is formed into its own
   region(s) later.  A global code-expansion budget truncates traces
   instead of duplicating once exceeded, bounding both code growth and the
   formation loop itself.

The resulting regions are single-entry chains — degenerate trees — so the
common region scheduler handles them unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.ir.cfg import BasicBlock, CFG, Edge
from repro.obs.metrics import current_metrics
from repro.regions.region import Region, RegionPartition


@dataclass(frozen=True)
class SuperblockLimits:
    """Knobs bounding superblock formation.

    Attributes:
        max_blocks: Maximum trace length in blocks.
        expansion_limit: Cap on total function code size as a multiple of
            its pre-formation size; side entrances whose removal would
            exceed it truncate the trace instead of duplicating.  The
            default is calibrated so realized expansion matches the
            paper's Table 3 superblock column (~1.18 average).
        require_mutual: Grow only along mutually-most-likely edges (the
            published heuristic); disabling it gives greedier traces.
    """

    max_blocks: int = 64
    expansion_limit: float = 1.25
    require_mutual: bool = True


def _best_out_edge(block: BasicBlock) -> Optional[Edge]:
    best: Optional[Edge] = None
    for edge in block.out_edges:
        if best is None or edge.weight > best.weight:
            best = edge
    return best


def _best_in_edge(block: BasicBlock) -> Optional[Edge]:
    best: Optional[Edge] = None
    for edge in block.in_edges:
        if best is None or edge.weight > best.weight:
            best = edge
    return best


class _SuperblockFormer:
    def __init__(self, cfg: CFG, limits: SuperblockLimits):
        self.cfg = cfg
        self.limits = limits
        self.visited: Dict[int, bool] = {}
        self.original_ops = max(1, cfg.total_ops)
        self.traces: List[List[BasicBlock]] = []
        self.finished: Dict[int, bool] = {}
        self.partition = RegionPartition("superblock")

    # ------------------------------------------------------------------

    def run(self) -> RegionPartition:
        while True:
            seed = self._pick_seed()
            if seed is None:
                break
            trace = self._grow_trace(seed)
            trace = self._remove_side_entrances(trace)
            self.traces.append(trace)
            for block in trace:
                self.finished[block.bid] = True
        # Regions are built only after *every* trace is formed:
        # duplicating a later trace points clone out-edges at original
        # destinations, which can sit mid-trace in an earlier one —
        # re-introducing a side entrance after its own removal pass ran.
        for trace in self.traces:
            for piece in self._split_late_side_entries(trace):
                region = Region("superblock")
                parent: Optional[BasicBlock] = None
                for block in piece:
                    region.add_block(block, parent)
                    parent = block
                self.partition.add(region)
        self.partition.verify_covering(self.cfg)
        return self.partition

    def _split_late_side_entries(
        self, trace: List[BasicBlock]
    ) -> List[List[BasicBlock]]:
        """Split a trace at every block with a non-chain in-edge.

        Each piece stays a single-entry chain (region roots may have any
        number of in-edges), so the schedule-legality invariant holds at
        the cost of a shorter trace — the same trade truncation makes.
        """
        metrics = current_metrics()
        pieces = [[trace[0]]]
        for prev, block in zip(trace, trace[1:]):
            if any(edge.src is not prev for edge in block.in_edges):
                metrics.inc("superblock.late_splits")
                pieces.append([block])
            else:
                pieces[-1].append(block)
        return pieces

    # ------------------------------------------------------------------

    def _pick_seed(self) -> Optional[BasicBlock]:
        """Heaviest unclaimed block; ties go to the lowest id."""
        best: Optional[BasicBlock] = None
        for block in self.cfg.blocks():
            if self.finished.get(block.bid):
                continue
            if self.visited.get(block.bid):
                continue
            if best is None or block.weight > best.weight:
                best = block
        return best

    def _claimed(self, block: BasicBlock) -> bool:
        return (
            self.visited.get(block.bid, False)
            or self.finished.get(block.bid, False)
        )

    def _grow_trace(self, seed: BasicBlock) -> List[BasicBlock]:
        trace = [seed]
        origins = {seed.origin}
        self.visited[seed.bid] = True

        # Grow forward.
        while len(trace) < self.limits.max_blocks:
            last = trace[-1]
            if last.terminator is not None and not last.out_edges:
                break
            edge = _best_out_edge(last)
            if edge is None:
                break
            nxt = edge.dst
            if self._claimed(nxt) or nxt.origin in origins:
                break
            if self.limits.require_mutual and _best_in_edge(nxt) is not edge:
                break
            trace.append(nxt)
            origins.add(nxt.origin)
            self.visited[nxt.bid] = True

        # Grow backward from the seed.
        while len(trace) < self.limits.max_blocks:
            first = trace[0]
            edge = _best_in_edge(first)
            if edge is None:
                break
            prev = edge.src
            if self._claimed(prev) or prev.origin in origins:
                break
            if self.limits.require_mutual and _best_out_edge(prev) is not edge:
                break
            trace.insert(0, prev)
            origins.add(prev.origin)
            self.visited[prev.bid] = True

        return trace

    # ------------------------------------------------------------------

    def _expansion_budget_left(self) -> int:
        cap = int(self.limits.expansion_limit * self.original_ops)
        return cap - self.cfg.total_ops

    def _remove_side_entrances(self, trace: List[BasicBlock]) -> List[BasicBlock]:
        """Tail-duplicate suffixes so every non-root block is single-entry.

        Scans the trace top-down; each side-entered block either has the
        remaining suffix cloned (side edges retargeted to the clone chain)
        or, when the expansion budget is exhausted, the trace is truncated
        there and the released blocks return to the pool.
        """
        i = 1
        while i < len(trace):
            block = trace[i]
            side_edges = [e for e in block.in_edges if e.src is not trace[i - 1]]
            if not side_edges:
                i += 1
                continue
            suffix = trace[i:]
            suffix_ops = sum(len(b.ops) for b in suffix)
            if suffix_ops > self._expansion_budget_left():
                # Truncate: release the suffix back to the pool.
                for released in suffix:
                    self.visited[released.bid] = False
                return trace[:i]
            self._duplicate_suffix(suffix, side_edges)
            i += 1
        return trace

    def _duplicate_suffix(self, suffix: List[BasicBlock], side_edges: List[Edge]) -> None:
        """Clone ``suffix`` as a chain and move ``side_edges`` onto it."""
        moved = sum(e.weight for e in side_edges)
        metrics = current_metrics()
        clones: List[BasicBlock] = []
        for block in suffix:
            clone = self.cfg.new_block(name=f"{block.name}.sbdup")
            clone.origin = block.origin
            for op in block.ops:
                clones_op = op.clone(self.cfg._op_ids.allocate())
                clone.ops.append(clones_op)
            metrics.inc("tail_dup.blocks")
            metrics.inc("tail_dup.ops", len(clone.ops))
            clones.append(clone)

        # Wire clone out-edges: internal trace edges chain the clones;
        # everything else targets the original destinations.  Weights move
        # proportionally with the diverted flow.
        flowing = moved
        for idx, block in enumerate(suffix):
            clone = clones[idx]
            clone.weight = flowing
            block.weight = max(0.0, block.weight - flowing)
            total_out = sum(e.weight for e in block.out_edges)
            next_flow = 0.0
            for edge in block.out_edges:
                if total_out > 0:
                    share = flowing * (edge.weight / total_out)
                elif block.out_edges:
                    share = flowing / len(block.out_edges)
                else:
                    share = 0.0
                internal = (
                    idx + 1 < len(suffix) and edge.dst is suffix[idx + 1]
                )
                dst = clones[idx + 1] if internal else edge.dst
                new_edge = self.cfg.add_edge(
                    clone, dst, edge.kind, case_value=edge.case_value, weight=share
                )
                term = clone.terminator
                if term is not None and edge.kind.value == "taken" and internal:
                    term.target = dst.bid
                edge.weight = max(0.0, edge.weight - share)
                if internal:
                    next_flow = share
            flowing = next_flow

        for edge in side_edges:
            self.cfg.retarget_edge(edge, clones[0])


def form_superblocks(
    cfg: CFG, limits: Optional[SuperblockLimits] = None
) -> RegionPartition:
    """Partition ``cfg`` into superblocks.  **Mutates the CFG** (tail
    duplication adds blocks); clone the function first if the original
    must survive (see :func:`repro.ir.clone.clone_function`).
    """
    return _SuperblockFormer(cfg, limits or SuperblockLimits()).run()
