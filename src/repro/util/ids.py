"""Deterministic integer id allocation.

Every IR entity (block, operation, register, region) carries a small integer
id unique within its owning container.  Ids are handed out by an
:class:`IdAllocator` so that construction order — which is deterministic
throughout this library — fully determines the ids, making printed IR and
schedules reproducible across runs.
"""

from __future__ import annotations


class IdAllocator:
    """Hands out consecutive integer ids starting from a given value."""

    def __init__(self, start: int = 0):
        self._next = start

    def allocate(self) -> int:
        """Return the next id and advance the counter."""
        value = self._next
        self._next += 1
        return value

    def reserve(self, up_to: int) -> None:
        """Ensure future ids are strictly greater than ``up_to``.

        Used when importing entities with pre-assigned ids (e.g. the IR
        parser) so fresh allocations never collide.
        """
        if up_to >= self._next:
            self._next = up_to + 1

    @property
    def next_id(self) -> int:
        """The id the next call to :meth:`allocate` will return."""
        return self._next

    def __repr__(self) -> str:
        return f"IdAllocator(next={self._next})"
