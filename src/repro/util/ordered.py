"""An insertion-ordered set.

CPython dicts preserve insertion order, so a dict with ``None`` values gives
us an ordered set with O(1) membership tests.  Determinism matters here:
region formation and scheduling iterate over sets of blocks and ops, and the
paper's algorithms (Figures 2 and 11) are queue-based, so iteration order is
part of the algorithm, not an implementation detail.
"""

from __future__ import annotations

from typing import Generic, Hashable, Iterable, Iterator, Optional, TypeVar

T = TypeVar("T", bound=Hashable)


class OrderedSet(Generic[T]):
    """A set that iterates in insertion order."""

    def __init__(self, items: Optional[Iterable[T]] = None):
        self._items: dict = {}
        if items is not None:
            for item in items:
                self._items[item] = None

    def add(self, item: T) -> None:
        """Insert ``item``; a re-insert keeps the original position."""
        self._items.setdefault(item, None)

    def discard(self, item: T) -> None:
        """Remove ``item`` if present."""
        self._items.pop(item, None)

    def remove(self, item: T) -> None:
        """Remove ``item``; raise ``KeyError`` if absent."""
        del self._items[item]

    def update(self, items: Iterable[T]) -> None:
        for item in items:
            self.add(item)

    def pop_first(self) -> T:
        """Remove and return the oldest item; raise ``KeyError`` if empty."""
        if not self._items:
            raise KeyError("pop_first from an empty OrderedSet")
        item = next(iter(self._items))
        del self._items[item]
        return item

    def __contains__(self, item: object) -> bool:
        return item in self._items

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, OrderedSet):
            return set(self._items) == set(other._items)
        if isinstance(other, (set, frozenset)):
            return set(self._items) == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"OrderedSet({list(self._items)!r})"
