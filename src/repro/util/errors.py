"""Exception hierarchy for the library.

Every error raised by this library derives from :class:`ReproError`, so
callers embedding the compiler can catch one type.  Subclasses separate the
phases: IR construction/validation, the minic frontend, interpretation, and
scheduling.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class IRValidationError(ReproError):
    """The IR violates a structural invariant (see ``repro.ir.verify``)."""


class FrontendError(ReproError):
    """A minic source program failed to lex, parse, or type-check."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" at {line}:{column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class InterpreterError(ReproError):
    """The IR interpreter hit an undefined value or a malformed program."""


class StepLimitExceeded(InterpreterError):
    """Execution ran past the interpreter's step budget.

    Carries where execution was when the budget ran out, so callers (the
    validation oracle in particular) can distinguish "this program simply
    runs long" from genuine divergence, and can report the spin location.
    """

    def __init__(self, steps: int, function_name: str = "?",
                 block_id: int = -1):
        super().__init__(
            f"execution exceeded {steps} steps in {function_name}/"
            f"bb{block_id} (infinite loop?)"
        )
        self.steps = steps
        self.function_name = function_name
        self.block_id = block_id


class SchedulingError(ReproError):
    """Region formation or list scheduling failed an internal invariant."""


class ScheduleCertificationError(SchedulingError):
    """The static certifier rejected a schedule (``repro.lint``).

    Raised only when certification is explicitly requested
    (``ScheduleOptions(certify=True)``); carries the error diagnostics so
    callers can report which rules the schedule violated.
    """

    def __init__(self, diagnostics):
        self.diagnostics = list(diagnostics)
        rules = sorted({d.rule for d in self.diagnostics})
        super().__init__(
            f"schedule failed certification: {len(self.diagnostics)} "
            f"error(s) from rule(s) {', '.join(rules)}"
        )
