"""Small statistics helpers shared by benchmarks, reports, and the CLI."""

from __future__ import annotations

from typing import Iterable


def geometric_mean(values: Iterable[float]) -> float:
    """The geometric mean of ``values``.

    An empty input returns 1.0 — the empty-product convention — instead of
    crashing; speedup tables over an empty benchmark selection then render
    as the neutral "no change" factor.  Negative inputs are rejected (the
    geometric mean is undefined for them) while a zero anywhere makes the
    whole mean zero, as expected.
    """
    values = list(values)
    if not values:
        return 1.0
    product = 1.0
    for value in values:
        if value < 0:
            raise ValueError(
                f"geometric mean is undefined for negative values: {value!r}"
            )
        product *= value
    return product ** (1.0 / len(values))
