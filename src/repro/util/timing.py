"""Lightweight wall-time stage instrumentation.

The evaluation pipeline is a chain of well-separated stages — region
formation, renaming, DDG construction, list scheduling, time estimation —
and performance work needs per-stage numbers, not just end-to-end totals.
:class:`StageTimer` accumulates wall time (``time.perf_counter``) per named
stage and can merge timers coming back from worker processes.

The hot paths accept an *optional* timer; :data:`NULL_TIMER` is a shared
no-op stand-in so instrumented code never branches on ``None``::

    timer = timer or NULL_TIMER
    with timer.stage("ddg"):
        ddg = build_ddg(...)

``NullTimer.stage`` returns a reusable singleton context manager and never
touches the clock, so uninstrumented runs pay only an attribute call.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Optional


class _StageHandle:
    """Context manager accumulating one stage interval into a timer."""

    __slots__ = ("_timer", "_name", "_start")

    def __init__(self, timer: "StageTimer", name: str):
        self._timer = timer
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_StageHandle":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self._timer.add(self._name, perf_counter() - self._start)
        return False


class StageTimer:
    """Accumulates wall-time and entry counts per named stage."""

    __slots__ = ("totals", "counts")

    def __init__(self):
        self.totals: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}

    def stage(self, name: str) -> _StageHandle:
        """Context manager timing one entry of ``name``."""
        return _StageHandle(self, name)

    def add(self, name: str, seconds: float, count: int = 1) -> None:
        """Credit ``seconds`` of wall time to ``name`` directly."""
        self.totals[name] = self.totals.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + count

    def merge(self, other: "StageTimer") -> None:
        """Fold another timer's stages into this one (worker merge)."""
        for name, seconds in other.totals.items():
            self.add(name, seconds, other.counts.get(name, 0))

    @property
    def total(self) -> float:
        return sum(self.totals.values())

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """JSON-ready snapshot: stage -> {seconds, count}."""
        return {
            name: {"seconds": self.totals[name],
                   "count": self.counts.get(name, 0)}
            for name in sorted(self.totals)
        }

    def format(self) -> str:
        lines = []
        for name in sorted(self.totals, key=self.totals.get, reverse=True):
            lines.append(
                f"{name:>16s}  {self.totals[name]:8.3f}s"
                f"  x{self.counts.get(name, 0)}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<StageTimer {self.total:.3f}s over {len(self.totals)} stages>"


class _NullStage:
    __slots__ = ()

    def __enter__(self) -> "_NullStage":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_STAGE = _NullStage()


class NullTimer:
    """No-op :class:`StageTimer` stand-in; never reads the clock."""

    __slots__ = ()

    def stage(self, name: str) -> _NullStage:
        return _NULL_STAGE

    def add(self, name: str, seconds: float, count: int = 1) -> None:
        pass

    def merge(self, other) -> None:
        pass


#: Shared no-op timer: ``timer = timer or NULL_TIMER``.
NULL_TIMER = NullTimer()


def ensure_timer(timer: Optional[StageTimer]):
    """Normalize an optional timer argument to something with the API."""
    return timer if timer is not None else NULL_TIMER
