"""Small shared utilities: id allocation, ordered sets, validation errors."""

from repro.util.ids import IdAllocator
from repro.util.ordered import OrderedSet
from repro.util.errors import ReproError, IRValidationError, SchedulingError

__all__ = [
    "IdAllocator",
    "OrderedSet",
    "ReproError",
    "IRValidationError",
    "SchedulingError",
]
