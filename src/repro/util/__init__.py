"""Small shared utilities: id allocation, ordered sets, validation errors,
stage timing, and statistics helpers."""

from repro.util.ids import IdAllocator
from repro.util.ordered import OrderedSet
from repro.util.errors import (
    InterpreterError,
    IRValidationError,
    ReproError,
    SchedulingError,
    StepLimitExceeded,
)
from repro.util.stats import geometric_mean
from repro.util.timing import NULL_TIMER, NullTimer, StageTimer

__all__ = [
    "IdAllocator",
    "OrderedSet",
    "ReproError",
    "IRValidationError",
    "InterpreterError",
    "SchedulingError",
    "StepLimitExceeded",
    "geometric_mean",
    "StageTimer",
    "NullTimer",
    "NULL_TIMER",
]
