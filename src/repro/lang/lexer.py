"""minic tokenizer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.util.errors import FrontendError

KEYWORDS = frozenset({
    "func", "var", "array", "if", "else", "while", "for", "return",
    "break", "continue", "switch", "case", "default",
})

#: Multi-character operators, longest first so maximal munch works.
OPERATORS = (
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ",", ";", ":",
)


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is one of ``"ident"``, ``"int"``, ``"float"``, ``"op"``, a
    keyword (its own kind), or ``"eof"``.
    """

    kind: str
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"<{self.kind} {self.text!r} @{self.line}:{self.column}>"


def tokenize(source: str) -> List[Token]:
    """Produce the token list for a minic source string."""
    tokens: List[Token] = []
    line, column = 1, 1
    index = 0
    length = len(source)

    def error(message: str):
        raise FrontendError(message, line, column)

    while index < length:
        char = source[index]

        if char == "\n":
            index += 1
            line += 1
            column = 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if source.startswith("//", index):
            while index < length and source[index] != "\n":
                index += 1
            continue
        if source.startswith("/*", index):
            end = source.find("*/", index + 2)
            if end < 0:
                error("unterminated block comment")
            skipped = source[index:end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                column = len(skipped) - skipped.rfind("\n")
            else:
                column += len(skipped)
            index = end + 2
            continue

        if char.isdigit():
            start = index
            while index < length and (source[index].isdigit() or source[index] == "."):
                index += 1
            text = source[start:index]
            if text.count(".") > 1:
                error(f"bad number {text!r}")
            kind = "float" if "." in text else "int"
            tokens.append(Token(kind, text, line, column))
            column += index - start
            continue

        if char.isalpha() or char == "_":
            start = index
            while index < length and (source[index].isalnum() or source[index] == "_"):
                index += 1
            text = source[start:index]
            kind = text if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, column))
            column += index - start
            continue

        for operator in OPERATORS:
            if source.startswith(operator, index):
                tokens.append(Token("op", operator, line, column))
                index += len(operator)
                column += len(operator)
                break
        else:
            error(f"unexpected character {char!r}")

    tokens.append(Token("eof", "", line, column))
    return tokens
