"""minic abstract syntax tree."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


# ----------------------------------------------------------------------
# Expressions

@dataclass
class Expr:
    line: int = 0


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class VarRef(Expr):
    name: str = ""


@dataclass
class Index(Expr):
    """Global array element: ``name[index]``."""

    name: str = ""
    index: Optional[Expr] = None


@dataclass
class Unary(Expr):
    op: str = ""
    operand: Optional[Expr] = None


@dataclass
class Binary(Expr):
    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Call(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)


# ----------------------------------------------------------------------
# Statements

@dataclass
class Stmt:
    line: int = 0


@dataclass
class VarDecl(Stmt):
    name: str = ""
    init: Optional[Expr] = None


@dataclass
class Assign(Stmt):
    """``name = expr`` or ``name[index] = expr``."""

    name: str = ""
    index: Optional[Expr] = None
    value: Optional[Expr] = None


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class If(Stmt):
    cond: Optional[Expr] = None
    then_body: List[Stmt] = field(default_factory=list)
    else_body: List[Stmt] = field(default_factory=list)


@dataclass
class While(Stmt):
    cond: Optional[Expr] = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Stmt] = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Switch(Stmt):
    selector: Optional[Expr] = None
    cases: List[Tuple[int, List[Stmt]]] = field(default_factory=list)
    default: List[Stmt] = field(default_factory=list)


# ----------------------------------------------------------------------
# Top level

@dataclass
class GlobalDecl:
    name: str
    size: int = 1
    initial: List[object] = field(default_factory=list)
    line: int = 0


@dataclass
class FuncDecl:
    name: str
    params: List[str] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class Module:
    globals: List[GlobalDecl] = field(default_factory=list)
    functions: List[FuncDecl] = field(default_factory=list)
