"""minic recursive-descent parser.

Grammar (EBNF, whitespace/comments elided):

    module    := (global | func)*
    global    := "var" ident ["=" number] ";"
               | "array" ident "[" int "]" ["=" "{" number ("," number)* "}"] ";"
    func      := "func" ident "(" [ident ("," ident)*] ")" block
    block     := "{" stmt* "}"
    stmt      := "var" ident ["=" expr] ";"
               | ident ("=" | "[" expr "]" "=") expr ";"
               | "if" "(" expr ")" block ["else" (block | if-stmt)]
               | "while" "(" expr ")" block
               | "for" "(" simple? ";" expr? ";" simple? ")" block
               | "break" ";" | "continue" ";"
               | "return" [expr] ";"
               | "switch" "(" expr ")" "{" case* [defaultcase] "}"
               | expr ";"
    case      := "case" int ":" block
    defaultcase := "default" ":" block
    expr      := or ; or := and ("||" and)* ; and := bitor ("&&" bitor)*
    bitor     := bitxor ("|" bitxor)* ; bitxor := bitand ("^" bitand)*
    bitand    := cmp ("&" cmp)*
    cmp       := shift (("=="|"!="|"<"|"<="|">"|">=") shift)?
    shift     := add (("<<"|">>") add)*
    add       := mul (("+"|"-") mul)* ; mul := unary (("*"|"/"|"%") unary)*
    unary     := ("-"|"!"|"~") unary | primary
    primary   := number | ident ["(" args ")" | "[" expr "]"] | "(" expr ")"
"""

from __future__ import annotations

from typing import List, Optional

from repro.util.errors import FrontendError
from repro.lang import ast
from repro.lang.lexer import Token, tokenize


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.position = 0

    # ------------------------------------------------------------------
    # Token plumbing

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        self.position += 1
        return token

    def check(self, kind: str, text: Optional[str] = None) -> bool:
        token = self.current
        if token.kind != kind:
            return False
        return text is None or token.text == text

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        if not self.check(kind, text):
            want = text or kind
            raise FrontendError(
                f"expected {want!r}, found {self.current.text or self.current.kind!r}",
                self.current.line, self.current.column,
            )
        return self.advance()

    # ------------------------------------------------------------------
    # Top level

    def parse_module(self) -> ast.Module:
        module = ast.Module()
        while not self.check("eof"):
            if self.check("var"):
                module.globals.append(self._global_var())
            elif self.check("array"):
                module.globals.append(self._global_array())
            elif self.check("func"):
                module.functions.append(self._function())
            else:
                raise FrontendError(
                    f"expected declaration, found {self.current.text!r}",
                    self.current.line, self.current.column,
                )
        return module

    def _number_literal(self) -> object:
        negative = self.accept("op", "-") is not None
        token = self.advance()
        if token.kind == "int":
            value: object = int(token.text)
        elif token.kind == "float":
            value = float(token.text)
        else:
            raise FrontendError("expected a number", token.line, token.column)
        return -value if negative else value

    def _global_var(self) -> ast.GlobalDecl:
        line = self.expect("var").line
        name = self.expect("ident").text
        initial: List[object] = []
        if self.accept("op", "="):
            initial = [self._number_literal()]
        self.expect("op", ";")
        return ast.GlobalDecl(name, size=1, initial=initial, line=line)

    def _global_array(self) -> ast.GlobalDecl:
        line = self.expect("array").line
        name = self.expect("ident").text
        self.expect("op", "[")
        size = int(self.expect("int").text)
        self.expect("op", "]")
        initial: List[object] = []
        if self.accept("op", "="):
            self.expect("op", "{")
            if not self.check("op", "}"):
                initial.append(self._number_literal())
                while self.accept("op", ","):
                    initial.append(self._number_literal())
            self.expect("op", "}")
        self.expect("op", ";")
        if len(initial) > size:
            raise FrontendError(
                f"array {name!r} initializer longer than its size", line
            )
        return ast.GlobalDecl(name, size=size, initial=initial, line=line)

    def _function(self) -> ast.FuncDecl:
        line = self.expect("func").line
        name = self.expect("ident").text
        self.expect("op", "(")
        params: List[str] = []
        if self.check("ident"):
            params.append(self.advance().text)
            while self.accept("op", ","):
                params.append(self.expect("ident").text)
        self.expect("op", ")")
        body = self._block()
        return ast.FuncDecl(name, params=params, body=body, line=line)

    # ------------------------------------------------------------------
    # Statements

    def _block(self) -> List[ast.Stmt]:
        self.expect("op", "{")
        body: List[ast.Stmt] = []
        while not self.check("op", "}"):
            body.append(self._statement())
        self.expect("op", "}")
        return body

    def _statement(self) -> ast.Stmt:
        if self.check("var"):
            return self._var_decl()
        if self.check("if"):
            return self._if()
        if self.check("while"):
            return self._while()
        if self.check("for"):
            return self._for()
        if self.check("switch"):
            return self._switch()
        if self.check("break"):
            line = self.advance().line
            self.expect("op", ";")
            return ast.Break(line=line)
        if self.check("continue"):
            line = self.advance().line
            self.expect("op", ";")
            return ast.Continue(line=line)
        if self.check("return"):
            line = self.advance().line
            value = None if self.check("op", ";") else self._expr()
            self.expect("op", ";")
            return ast.Return(line=line, value=value)
        statement = self._simple_statement()
        self.expect("op", ";")
        return statement

    def _simple_statement(self) -> ast.Stmt:
        """Assignment or expression statement (no trailing ';')."""
        if self.check("var"):
            return self._var_decl(consume_semicolon=False)
        if self.check("ident"):
            save = self.position
            name_token = self.advance()
            if self.accept("op", "="):
                value = self._expr()
                return ast.Assign(line=name_token.line, name=name_token.text,
                                  value=value)
            if self.check("op", "["):
                self.advance()
                index = self._expr()
                self.expect("op", "]")
                if self.accept("op", "="):
                    value = self._expr()
                    return ast.Assign(line=name_token.line,
                                      name=name_token.text,
                                      index=index, value=value)
            self.position = save  # plain expression after all
        expr = self._expr()
        return ast.ExprStmt(line=expr.line, expr=expr)

    def _var_decl(self, consume_semicolon: bool = True) -> ast.VarDecl:
        line = self.expect("var").line
        name = self.expect("ident").text
        init = None
        if self.accept("op", "="):
            init = self._expr()
        if consume_semicolon:
            self.expect("op", ";")
        return ast.VarDecl(line=line, name=name, init=init)

    def _if(self) -> ast.If:
        line = self.expect("if").line
        self.expect("op", "(")
        cond = self._expr()
        self.expect("op", ")")
        then_body = self._block()
        else_body: List[ast.Stmt] = []
        if self.accept("else"):
            if self.check("if"):
                else_body = [self._if()]
            else:
                else_body = self._block()
        return ast.If(line=line, cond=cond, then_body=then_body,
                      else_body=else_body)

    def _while(self) -> ast.While:
        line = self.expect("while").line
        self.expect("op", "(")
        cond = self._expr()
        self.expect("op", ")")
        return ast.While(line=line, cond=cond, body=self._block())

    def _for(self) -> ast.For:
        line = self.expect("for").line
        self.expect("op", "(")
        init = None if self.check("op", ";") else self._simple_statement()
        self.expect("op", ";")
        cond = None if self.check("op", ";") else self._expr()
        self.expect("op", ";")
        step = None if self.check("op", ")") else self._simple_statement()
        self.expect("op", ")")
        return ast.For(line=line, init=init, cond=cond, step=step,
                       body=self._block())

    def _switch(self) -> ast.Switch:
        line = self.expect("switch").line
        self.expect("op", "(")
        selector = self._expr()
        self.expect("op", ")")
        self.expect("op", "{")
        cases = []
        default: List[ast.Stmt] = []
        seen_values = set()
        while not self.check("op", "}"):
            if self.accept("case"):
                negative = self.accept("op", "-") is not None
                value = int(self.expect("int").text)
                if negative:
                    value = -value
                if value in seen_values:
                    raise FrontendError(f"duplicate case {value}", line)
                seen_values.add(value)
                self.expect("op", ":")
                cases.append((value, self._block()))
            elif self.accept("default"):
                self.expect("op", ":")
                default = self._block()
            else:
                raise FrontendError(
                    f"expected 'case' or 'default', found {self.current.text!r}",
                    self.current.line, self.current.column,
                )
        self.expect("op", "}")
        if not cases:
            raise FrontendError("switch needs at least one case", line)
        return ast.Switch(line=line, selector=selector, cases=cases,
                          default=default)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing via nested helpers)

    def _binary_level(self, operators, next_level):
        left = next_level()
        while self.current.kind == "op" and self.current.text in operators:
            op = self.advance().text
            right = next_level()
            left = ast.Binary(line=left.line, op=op, left=left, right=right)
        return left

    def _expr(self) -> ast.Expr:
        return self._or()

    def _or(self):
        return self._binary_level(("||",), self._and)

    def _and(self):
        return self._binary_level(("&&",), self._bitor)

    def _bitor(self):
        return self._binary_level(("|",), self._bitxor)

    def _bitxor(self):
        return self._binary_level(("^",), self._bitand)

    def _bitand(self):
        return self._binary_level(("&",), self._cmp)

    def _cmp(self):
        left = self._shift()
        if self.current.kind == "op" and self.current.text in (
            "==", "!=", "<", "<=", ">", ">=",
        ):
            op = self.advance().text
            right = self._shift()
            return ast.Binary(line=left.line, op=op, left=left, right=right)
        return left

    def _shift(self):
        return self._binary_level(("<<", ">>"), self._add)

    def _add(self):
        return self._binary_level(("+", "-"), self._mul)

    def _mul(self):
        return self._binary_level(("*", "/", "%"), self._unary)

    def _unary(self):
        if self.current.kind == "op" and self.current.text in ("-", "!", "~"):
            token = self.advance()
            operand = self._unary()
            return ast.Unary(line=token.line, op=token.text, operand=operand)
        return self._primary()

    def _primary(self):
        token = self.current
        if token.kind == "int":
            self.advance()
            return ast.IntLit(line=token.line, value=int(token.text))
        if token.kind == "float":
            self.advance()
            return ast.FloatLit(line=token.line, value=float(token.text))
        if token.kind == "ident":
            self.advance()
            if self.accept("op", "("):
                args: List[ast.Expr] = []
                if not self.check("op", ")"):
                    args.append(self._expr())
                    while self.accept("op", ","):
                        args.append(self._expr())
                self.expect("op", ")")
                return ast.Call(line=token.line, name=token.text, args=args)
            if self.accept("op", "["):
                index = self._expr()
                self.expect("op", "]")
                return ast.Index(line=token.line, name=token.text, index=index)
            return ast.VarRef(line=token.line, name=token.text)
        if self.accept("op", "("):
            inner = self._expr()
            self.expect("op", ")")
            return inner
        raise FrontendError(
            f"expected an expression, found {token.text or token.kind!r}",
            token.line, token.column,
        )


def parse(source: str) -> ast.Module:
    """Tokenize and parse minic source into a module AST."""
    return _Parser(tokenize(source)).parse_module()
