"""minic: a small C-like language compiled to the IR.

The paper's pipeline starts from C (SPECint95) compiled by IMPACT; minic
plays that role for programs small enough to write by hand.  It supports
globals and global arrays, functions with parameters and recursion,
``if``/``else``, ``while``, ``for``, ``break``/``continue``,
``switch``/``case``/``default`` (lowered to the IR's multiway branch),
short-circuit ``&&``/``||``, and the usual integer/float arithmetic.

    >>> from repro.lang import compile_source
    >>> program = compile_source('''
    ...     func main(n) {
    ...         var acc = 0;
    ...         var i = 0;
    ...         while (i < n) { acc = acc + i; i = i + 1; }
    ...         return acc;
    ...     }
    ... ''')

The produced :class:`~repro.ir.function.Program` is ready for the
interpreter, the profiler, region formation, and scheduling.
"""

from repro.lang.compiler import compile_source
from repro.lang.lexer import tokenize
from repro.lang.parser import parse

__all__ = ["compile_source", "tokenize", "parse"]
