"""Lowering minic ASTs to the IR.

Design notes:

* Local variables live in fixed virtual registers for the whole function
  (no SSA) — re-assignments rewrite the same register, so branchy minic
  code produces exactly the cross-path register conflicts the treegion
  scheduler's renaming pass exists for.
* Globals and global arrays live in data memory (``LD``/``ST`` against
  immediate base addresses assigned by :class:`Program`'s layout).
* Conditions lower *as control*: short-circuit ``&&``/``||`` become
  branch trees, comparisons become ``CMPP`` + ``BRCT``.  Conditions used
  *as values* (``x = a < b``) lower to a 0/1 diamond, giving realistic
  merge points.
* ``switch`` lowers to the IR's multiway branch with one case edge per
  label; case bodies never fall through (each jumps to the join).
* ``/`` and ``%`` are integer (truncating) operations; ``+ - *`` work on
  floats too (values are dynamically typed at the interpreter level).
* Variables are function-scoped; ``break``/``continue`` bind to the
  innermost loop.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.util.errors import FrontendError
from repro.ir.builder import IRBuilder, Value
from repro.ir.cfg import BasicBlock
from repro.ir.function import Function, Program
from repro.ir.registers import Register
from repro.ir.types import CompareCond, Immediate, Opcode
from repro.ir.verify import verify_program
from repro.lang import ast
from repro.lang.parser import parse

_ARITH = {
    "+": Opcode.ADD, "-": Opcode.SUB, "*": Opcode.MUL,
    "/": Opcode.DIV, "%": Opcode.MOD,
    "&": Opcode.AND, "|": Opcode.OR, "^": Opcode.XOR,
    "<<": Opcode.SHL, ">>": Opcode.SHR,
}
_COMPARE = {
    "==": CompareCond.EQ, "!=": CompareCond.NE,
    "<": CompareCond.LT, "<=": CompareCond.LE,
    ">": CompareCond.GT, ">=": CompareCond.GE,
}


class _FunctionLowering:
    def __init__(self, program: Program, module: ast.Module,
                 decl: ast.FuncDecl):
        self.program = program
        self.module = module
        self.decl = decl
        self.fn = Function(decl.name)
        for name in decl.params:
            param = self.fn.regs.fresh_gpr()
            self.fn.params.append(param)
        self.b = IRBuilder(self.fn)
        self.vars: Dict[str, Register] = dict(zip(decl.params, self.fn.params))
        #: (continue target, break target) per enclosing loop.
        self.loops: List[Tuple[BasicBlock, BasicBlock]] = []

    # ------------------------------------------------------------------

    def lower(self) -> Function:
        entry = self.b.block("entry")
        self.b.at(entry)
        terminated = self._lower_body(self.decl.body)
        if not terminated:
            self.b.ret(0)  # implicit "return 0" at the end
        return self.fn

    def _lower_body(self, body: List[ast.Stmt]) -> bool:
        """Lower statements into the current block.

        Returns True if control definitely left (return/break/continue),
        in which case the remaining statements were unreachable and were
        dropped.
        """
        for statement in body:
            if self._lower_stmt(statement):
                return True
        return False

    # ------------------------------------------------------------------
    # Statements

    def _lower_stmt(self, statement: ast.Stmt) -> bool:
        if isinstance(statement, ast.VarDecl):
            if statement.name in self.vars:
                raise FrontendError(
                    f"variable {statement.name!r} redeclared", statement.line
                )
            register = self.fn.regs.fresh_gpr()
            self.vars[statement.name] = register
            init: ast.Expr = statement.init or ast.IntLit(value=0)
            self._expr_into(init, register)
            return False
        if isinstance(statement, ast.Assign):
            return self._lower_assign(statement)
        if isinstance(statement, ast.ExprStmt):
            self._expr(statement.expr)
            return False
        if isinstance(statement, ast.If):
            return self._lower_if(statement)
        if isinstance(statement, ast.While):
            return self._lower_while(statement)
        if isinstance(statement, ast.For):
            return self._lower_for(statement)
        if isinstance(statement, ast.Switch):
            return self._lower_switch(statement)
        if isinstance(statement, ast.Return):
            value = self._expr(statement.value) if statement.value else 0
            self.b.ret(value)
            return True
        if isinstance(statement, ast.Break):
            if not self.loops:
                raise FrontendError("'break' outside a loop", statement.line)
            self.b.jump(self.loops[-1][1])
            return True
        if isinstance(statement, ast.Continue):
            if not self.loops:
                raise FrontendError("'continue' outside a loop", statement.line)
            self.b.jump(self.loops[-1][0])
            return True
        raise FrontendError(f"cannot lower {type(statement).__name__}",
                            statement.line)

    def _lower_assign(self, statement: ast.Assign) -> bool:
        if statement.index is not None:
            address = self._global_address(statement.name, statement.line)
            index = self._expr(statement.index)
            value = self._expr(statement.value)
            self.b.st(address, index, value)
            return False
        if statement.name in self.vars:
            self._expr_into(statement.value, self.vars[statement.name])
            return False
        if statement.name in self.program.globals:
            address = self.program.globals[statement.name].address
            value = self._expr(statement.value)
            self.b.st(address, 0, value)
            return False
        raise FrontendError(f"assignment to undeclared {statement.name!r}",
                            statement.line)

    def _lower_if(self, statement: ast.If) -> bool:
        then_bb = self.b.block("then")
        else_bb = self.b.block("else") if statement.else_body else None
        join = self.b.block("join")
        self._branch(statement.cond, then_bb, else_bb or join)

        self.b.at(then_bb)
        if not self._lower_body(statement.then_body):
            self.b.jump(join)
        then_done = False

        if else_bb is not None:
            self.b.at(else_bb)
            if not self._lower_body(statement.else_body):
                self.b.jump(join)

        self.b.at(join)
        if not join.in_edges:
            # Both arms escaped; the join is unreachable — give it a
            # trivially-valid body so the verifier stays happy.
            self.b.ret(0)
            return True
        return False

    def _lower_while(self, statement: ast.While) -> bool:
        header = self.b.block("while.header")
        body = self.b.block("while.body")
        exit_bb = self.b.block("while.exit")
        self.b.fallthrough(header)

        self.b.at(header)
        self._branch(statement.cond, body, exit_bb)

        self.loops.append((header, exit_bb))
        self.b.at(body)
        if not self._lower_body(statement.body):
            self.b.jump(header)
        self.loops.pop()

        self.b.at(exit_bb)
        if not exit_bb.in_edges:
            self.b.ret(0)
            return True
        return False

    def _lower_for(self, statement: ast.For) -> bool:
        if statement.init is not None:
            self._lower_stmt(statement.init)
        header = self.b.block("for.header")
        body = self.b.block("for.body")
        step = self.b.block("for.step")
        exit_bb = self.b.block("for.exit")
        self.b.fallthrough(header)

        self.b.at(header)
        if statement.cond is not None:
            self._branch(statement.cond, body, exit_bb)
        else:
            self.b.jump(body)

        self.loops.append((step, exit_bb))
        self.b.at(body)
        if not self._lower_body(statement.body):
            self.b.jump(step)
        self.loops.pop()

        self.b.at(step)
        if statement.step is not None:
            self._lower_stmt(statement.step)
        self.b.jump(header)

        self.b.at(exit_bb)
        if not exit_bb.in_edges:
            self.b.ret(0)
            return True
        return False

    def _lower_switch(self, statement: ast.Switch) -> bool:
        selector = self._as_register(self._expr(statement.selector))
        case_blocks = [
            (value, self.b.block(f"case{value}"))
            for value, _ in statement.cases
        ]
        default_bb = self.b.block("default")
        join = self.b.block("switch.join")
        self.b.switch(selector, case_blocks, default_bb)

        for (value, body), (_, block) in zip(statement.cases, case_blocks):
            self.b.at(block)
            if not self._lower_body(body):
                self.b.jump(join)

        self.b.at(default_bb)
        if not self._lower_body(statement.default):
            self.b.jump(join)

        self.b.at(join)
        if not join.in_edges:
            self.b.ret(0)
            return True
        return False

    # ------------------------------------------------------------------
    # Conditions as control flow

    def _branch(self, cond: ast.Expr, true_bb: BasicBlock,
                false_bb: BasicBlock) -> None:
        """Lower ``cond`` so control reaches true_bb/false_bb."""
        if isinstance(cond, ast.Binary) and cond.op == "&&":
            middle = self.b.block("and.rhs")
            self._branch(cond.left, middle, false_bb)
            self.b.at(middle)
            self._branch(cond.right, true_bb, false_bb)
            return
        if isinstance(cond, ast.Binary) and cond.op == "||":
            middle = self.b.block("or.rhs")
            self._branch(cond.left, true_bb, middle)
            self.b.at(middle)
            self._branch(cond.right, true_bb, false_bb)
            return
        if isinstance(cond, ast.Unary) and cond.op == "!":
            self._branch(cond.operand, false_bb, true_bb)
            return
        if isinstance(cond, ast.Binary) and cond.op in _COMPARE:
            left = self._expr(cond.left)
            right = self._expr(cond.right)
            predicate = self.b.cmpp(_COMPARE[cond.op], left, right)
            self.b.br_true(predicate, true_bb, false_bb)
            return
        # Any other expression: nonzero means true.
        value = self._expr(cond)
        predicate = self.b.cmpp(CompareCond.NE, value, 0)
        self.b.br_true(predicate, true_bb, false_bb)

    # ------------------------------------------------------------------
    # Expressions as values

    def _expr(self, expr: ast.Expr) -> Value:
        return self._expr_into(expr, None)

    def _as_register(self, value: Value) -> Register:
        if isinstance(value, Register):
            return value
        return self.b.mov(value)

    def _expr_into(self, expr: ast.Expr,
                   dest: Optional[Register]) -> Value:
        """Lower ``expr``; if ``dest`` is given the result lands there."""
        if isinstance(expr, ast.IntLit):
            return self._literal(expr.value, dest)
        if isinstance(expr, ast.FloatLit):
            return self._literal(expr.value, dest)
        if isinstance(expr, ast.VarRef):
            return self._var_ref(expr, dest)
        if isinstance(expr, ast.Index):
            address = self._global_address(expr.name, expr.line)
            index = self._expr(expr.index)
            return self.b.ld(address, index, dest=dest)
        if isinstance(expr, ast.Call):
            if not self.module_has_function(expr.name):
                raise FrontendError(f"call to unknown function {expr.name!r}",
                                    expr.line)
            args = [self._expr(a) for a in expr.args]
            return self.b.call(expr.name, args, dest=dest)
        if isinstance(expr, ast.Unary):
            return self._unary(expr, dest)
        if isinstance(expr, ast.Binary):
            return self._binary(expr, dest)
        raise FrontendError(f"cannot lower {type(expr).__name__}", expr.line)

    def module_has_function(self, name: str) -> bool:
        return any(f.name == name for f in self.module.functions)

    def _literal(self, value, dest: Optional[Register]) -> Value:
        if dest is None:
            return Immediate(value)
        return self.b.mov(value, dest=dest)

    def _var_ref(self, expr: ast.VarRef, dest: Optional[Register]) -> Value:
        if expr.name in self.vars:
            register = self.vars[expr.name]
            if dest is None or dest == register:
                return register
            return self.b.mov(register, dest=dest)
        if expr.name in self.program.globals:
            address = self.program.globals[expr.name].address
            return self.b.ld(address, 0, dest=dest)
        raise FrontendError(f"undefined variable {expr.name!r}", expr.line)

    def _global_address(self, name: str, line: int) -> int:
        var = self.program.globals.get(name)
        if var is None:
            raise FrontendError(f"undefined global/array {name!r}", line)
        return var.address

    def _unary(self, expr: ast.Unary, dest: Optional[Register]) -> Value:
        if expr.op == "-":
            return self._emit_unop(Opcode.NEG, expr.operand, dest)
        if expr.op == "~":
            return self._emit_unop(Opcode.NOT, expr.operand, dest)
        if expr.op == "!":
            return self._bool_diamond(expr, dest)
        raise FrontendError(f"unknown unary operator {expr.op!r}", expr.line)

    def _emit_unop(self, opcode: Opcode, operand: ast.Expr,
                   dest: Optional[Register]) -> Register:
        value = self._expr(operand)
        dest = dest or self.fn.regs.fresh_gpr()
        self.b.emit(opcode, dests=[dest], srcs=[value])
        return dest

    def _binary(self, expr: ast.Binary, dest: Optional[Register]) -> Value:
        if expr.op in _ARITH:
            left = self._expr(expr.left)
            right = self._expr(expr.right)
            dest = dest or self.fn.regs.fresh_gpr()
            self.b.emit(_ARITH[expr.op], dests=[dest], srcs=[left, right])
            return dest
        if expr.op in _COMPARE or expr.op in ("&&", "||"):
            return self._bool_diamond(expr, dest)
        raise FrontendError(f"unknown operator {expr.op!r}", expr.line)

    def _bool_diamond(self, expr: ast.Expr,
                      dest: Optional[Register]) -> Register:
        """A condition used as a value: materialize 0/1 via a diamond."""
        dest = dest or self.fn.regs.fresh_gpr()
        true_bb = self.b.block("bool.true")
        false_bb = self.b.block("bool.false")
        join = self.b.block("bool.join")
        self._branch(expr, true_bb, false_bb)
        self.b.at(true_bb)
        self.b.mov(1, dest=dest)
        self.b.jump(join)
        self.b.at(false_bb)
        self.b.mov(0, dest=dest)
        self.b.fallthrough(join)
        self.b.at(join)
        return dest


def compile_module(module: ast.Module, entry: str = "main") -> Program:
    """Lower a parsed module to a verified IR program."""
    program = Program(entry=entry)
    for declaration in module.globals:
        program.add_global(declaration.name, size=declaration.size,
                           initial=declaration.initial)
    for decl in module.functions:
        lowering = _FunctionLowering(program, module, decl)
        program.add_function(lowering.lower())
    if not program.has_function(entry):
        raise FrontendError(f"program has no '{entry}' function")
    verify_program(program)
    return program


def compile_source(source: str, entry: str = "main") -> Program:
    """Parse and lower minic source text to a verified IR program."""
    return compile_module(parse(source), entry=entry)
