"""One-shot experiment report generation.

``generate_report`` runs a configurable-scale version of every study in
the repository — region statistics, heuristic speedups, tail duplication
vs superblocks, hyperblocks, profile variation, and the dynamic-core
comparison — and renders a single markdown document.  Used by
``examples/full_report.py``; the committed EXPERIMENTS.md was produced
from the full-scale benchmark runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core import form_treegions
from repro.interp import profile_program
from repro.machine import VLIW_4U, universal_machine
from repro.obs.metrics import NULL_METRICS, NullMetrics
from repro.obs.tracer import NULL_TRACER
from repro.regions import form_slrs, partition_stats
from repro.schedule import ScheduleOptions
from repro.schedule.priorities import DEP_HEIGHT, HEURISTICS
from repro.util.stats import geometric_mean as _geomean
from repro.util.timing import NULL_TIMER
from repro.evaluation.engine import GridCell, evaluate_grid
from repro.evaluation.schemes import bb_scheme, treegion_scheme
from repro.evaluation.variation import variation_study
from repro.workloads.specint import BENCHMARK_NAMES, build_benchmark


def _table(header: List[str], rows: List[List[str]]) -> List[str]:
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    lines.append("")
    return lines


class ReportBuilder:
    """Collects study results and renders markdown.

    Grid-shaped studies (heuristic speedups, scheme comparison) run
    through :func:`repro.evaluation.engine.evaluate_grid`, so ``jobs``
    fans them out over worker processes; results are identical to the
    serial path regardless.
    """

    def __init__(self, benchmarks: Optional[List[str]] = None,
                 jobs: int = 1, timer=NULL_TIMER, metrics=NULL_METRICS,
                 tracer=NULL_TRACER, cache_dir: Optional[str] = None,
                 cache_max_mb: float = 256.0, region_memo=None):
        self.benchmarks = benchmarks or list(BENCHMARK_NAMES)
        self.jobs = jobs
        self.timer = timer
        self.metrics = metrics
        self.tracer = tracer
        self.cache_dir = cache_dir
        self.cache_max_mb = cache_max_mb
        self.region_memo = region_memo
        self.lines: List[str] = [
            "# Treegion scheduling — experiment report",
            "",
            f"Benchmarks: {', '.join(self.benchmarks)}",
            "",
        ]
        self._baselines: Dict[str, float] = {}

    def _grid(self, grid: List[GridCell]):
        if self.cache_dir is not None:
            from repro.api import cached_evaluate

            return cached_evaluate(
                grid, cache_dir=self.cache_dir,
                cache_max_mb=self.cache_max_mb, jobs=self.jobs,
                timer=self.timer, metrics=self.metrics,
                tracer=self.tracer, region_memo=self.region_memo,
            )
        return evaluate_grid(grid, jobs=self.jobs, timer=self.timer,
                             metrics=self.metrics, tracer=self.tracer,
                             region_memo=self.region_memo)

    def _baseline(self, name: str) -> float:
        if not self._baselines:
            grid = [GridCell(bench, "bb", "1U", DEP_HEIGHT)
                    for bench in self.benchmarks]
            for cell, result in zip(grid, self._grid(grid)):
                self._baselines[cell.benchmark] = result.time
        return self._baselines[name]

    # ------------------------------------------------------------------

    def add_region_statistics(self) -> None:
        rows = []
        for name in self.benchmarks:
            function = build_benchmark(name).entry_function
            tree = partition_stats([form_treegions(function.cfg)])
            slr = partition_stats([form_slrs(function.cfg)])
            rows.append([
                name,
                f"{tree.avg_blocks:.2f}", f"{tree.avg_ops:.1f}",
                f"{slr.avg_blocks:.2f}", f"{slr.avg_ops:.1f}",
            ])
        self.lines.append("## Region statistics (Tables 1 & 2)")
        self.lines.append("")
        self.lines.extend(_table(
            ["program", "tree bb", "tree ops", "slr bb", "slr ops"], rows
        ))

    def add_heuristic_speedups(self, machine_name: str = "4U") -> None:
        grid = [
            GridCell(name, "treegion", machine_name, heuristic)
            for name in self.benchmarks
            for heuristic in HEURISTICS
        ]
        results = iter(self._grid(grid))
        rows = []
        means = {heuristic: [] for heuristic in HEURISTICS}
        for name in self.benchmarks:
            base = self._baseline(name)
            cells = [name]
            for heuristic in HEURISTICS:
                speedup = base / next(results).time
                means[heuristic].append(speedup)
                cells.append(f"{speedup:.2f}")
            rows.append(cells)
        rows.append(["geomean"] + [
            f"{_geomean(means[h]):.2f}" for h in HEURISTICS
        ])
        self.lines.append(
            f"## Treegion heuristics, {machine_name} (Figure 8)"
        )
        self.lines.append("")
        self.lines.extend(_table(["program"] + list(HEURISTICS), rows))

    def add_scheme_comparison(self, machine_name: str = "8U") -> None:
        schemes = [
            ("bb", "bb"),
            ("slr", "slr"),
            ("superblock", "superblock"),
            ("hyperblock", "hyperblock"),
            ("treegion", "treegion"),
            ("treegion-td(3.0)", "treegion-td:3.0"),
        ]
        grid = [
            GridCell(name, spec, machine_name, "global_weight",
                     dominator_parallelism=True)
            for name in self.benchmarks
            for _, spec in schemes
        ]
        results = iter(self._grid(grid))
        rows = []
        means: Dict[str, List[float]] = {label: [] for label, _ in schemes}
        for name in self.benchmarks:
            base = self._baseline(name)
            cells = [name]
            for label, _ in schemes:
                speedup = base / next(results).time
                means[label].append(speedup)
                cells.append(f"{speedup:.2f}")
            rows.append(cells)
        rows.append(["geomean"] + [
            f"{_geomean(means[label]):.2f}" for label, _ in schemes
        ])
        self.lines.append(
            f"## All schemes, {machine_name}, global weight "
            "(Figures 6 & 13 + hyperblocks)"
        )
        self.lines.append("")
        self.lines.extend(_table(
            ["program"] + [label for label, _ in schemes], rows
        ))

    def add_variation_study(self, seeds: Sequence[int] = (7, 19)) -> None:
        rows = []
        for name in self.benchmarks[:4]:
            program = build_benchmark(name)
            results = variation_study(
                program, treegion_scheme, VLIW_4U,
                heuristics=list(HEURISTICS), seeds=list(seeds),
            )
            rows.append([name] + [
                f"{results[h]['degradation']:.3f}" for h in HEURISTICS
            ])
        self.lines.append("## Profile-variation robustness (Section 6)")
        self.lines.append("")
        self.lines.extend(_table(["program"] + list(HEURISTICS), rows))

    def add_dynamic_comparison(self) -> None:
        from repro.dynamic import DynamicParams, collect_trace, simulate_trace
        from repro.vliw import simulate
        from repro.workloads.minic_programs import (
            build_minic_program,
            minic_program_names,
        )

        options = ScheduleOptions(heuristic="global_weight")
        rows = []
        for name in minic_program_names():
            program, args = build_minic_program(name)
            _result, trace = collect_trace(program, args)
            profile_program(program, inputs=[args])
            _res, bb1 = simulate(program, bb_scheme(), universal_machine(1),
                                 args, options)
            _res, tree = simulate(program, treegion_scheme(), VLIW_4U, args,
                                  options)
            ooo = simulate_trace(trace, DynamicParams(issue_width=4,
                                                      window=32))
            rows.append([
                name,
                f"{bb1.cycles / tree.cycles:.2f}",
                f"{bb1.cycles / ooo.cycles:.2f}",
            ])
        self.lines.append("## Static treegions vs out-of-order core "
                          "(Section 6)")
        self.lines.append("")
        self.lines.extend(_table(["program", "treegion 4U", "ooo 4-wide"],
                                 rows))

    def add_analysis(self) -> None:
        """Schedule-height lower bounds vs achieved heights per benchmark.

        Runs :func:`repro.analysis.driver.analyze_program` over the
        report's benchmarks (bb + treegion on 4U/8U, every heuristic)
        and tabulates how tight the sound critical-path/resource bound
        is against the best achieved height.  An unsound bound (bound
        above an achieved height) would be a scheduler or analysis bug
        and is flagged loudly.
        """
        from repro.analysis.driver import analyze_program

        rows = []
        any_unsound = False
        for name in self.benchmarks:
            program = build_benchmark(name)
            result = analyze_program(program, name=name, lint=False)
            summary = result["summary"]
            any_unsound = any_unsound or not summary["sound"]
            rows.append([
                name,
                str(summary["regions"]),
                f"{summary['tight']}/{summary['regions']}",
                f"{summary['mean_gap']:.2f}",
                str(summary["max_gap"]),
                "yes" if summary["sound"] else "**NO**",
            ])
        self.lines.append("## Analysis: schedule-height lower bounds")
        self.lines.append("")
        self.lines.append(
            "Per-region critical-path and resource-saturation lower "
            "bounds (bb + treegion, 4U + 8U, every heuristic); `tight` "
            "counts regions where the best achieved height equals the "
            "bound."
        )
        self.lines.append("")
        self.lines.extend(_table(
            ["program", "regions", "tight", "mean gap", "max gap",
             "sound"], rows
        ))
        if any_unsound:
            self.lines.append(
                "**WARNING: an analysis lower bound exceeded an "
                "achieved schedule height — soundness bug.**"
            )
            self.lines.append("")

    def add_gap(self, budget: int = 20_000) -> None:
        """Optimality gap: heuristic heights vs proven B&B optima.

        Runs :func:`repro.exact.gap.gap_program` (bb + treegion, 4U +
        8U) over the report's benchmarks and tabulates, per benchmark,
        how many regions the exact backend proved within ``budget``
        nodes and how often each heuristic hit the proven optimum.  The
        run executes inside the report's metrics scope, so the
        ``exact.*`` search counters land in the Observability section.
        """
        from repro.exact.gap import gap_program, gap_summary
        from repro.obs.metrics import metrics_scope

        rows = []
        all_rows: List[Dict[str, object]] = []
        skipped = 0
        heuristics = list(HEURISTICS)
        with metrics_scope(self.metrics):
            for name in self.benchmarks:
                program = build_benchmark(name)
                result = gap_program(program, name=name, budget=budget)
                summary = result["summary"]
                all_rows.extend(result["regions"])
                skipped += summary["skipped"]
                best = max(
                    heuristics,
                    key=lambda h: summary["heuristics"][h]["optimal"],
                )
                stats = summary["heuristics"][best]
                rows.append([
                    name,
                    str(summary["regions"]),
                    f"{summary['proven']}/{summary['regions']}",
                    f"{best} "
                    f"({stats['optimal_fraction'] * 100:.0f}%)",
                    "yes" if summary["sound"] else "**NO**",
                ])
        total = gap_summary(all_rows, heuristics, skipped=skipped)
        self.lines.append("## Exact backend: optimality gap")
        self.lines.append("")
        self.lines.append(
            "Branch-and-bound proven optima (bb + treegion, 4U + 8U, "
            f"node budget {budget}) against every heuristic's schedule "
            "height; `best heuristic` is the heuristic most often at "
            "the proven optimum for that benchmark."
        )
        self.lines.append("")
        self.lines.extend(_table(
            ["program", "regions", "proven", "best heuristic", "sound"],
            rows,
        ))
        opt = ", ".join(
            f"{h} {total['heuristics'][h]['optimal_fraction'] * 100:.1f}%"
            for h in heuristics
        )
        self.lines.append(
            f"Corpus: {total['proven']}/{total['regions']} proven "
            f"({total['proven_fraction'] * 100:.1f}%); optimal rate — "
            f"{opt}."
        )
        self.lines.append("")
        if total["unsound_bounds"]:
            self.lines.append(
                "**WARNING: an analysis lower bound exceeded a proven "
                "optimum — soundness bug.**"
            )
            self.lines.append("")

    def add_observability(self) -> None:
        """Per-stage timing and pipeline-counter tables for the studies
        run so far (plain text inside code fences, stable column order,
        so two report runs diff cleanly)."""
        if not isinstance(self.metrics, NullMetrics):
            # Publish the analysis-cache hit/miss/eviction gauges
            # (cache.* for scheduler-feeding lookups, cache.analysis.*
            # for the dataflow analyses the Analysis section just ran).
            from repro.ir.analysis_cache import record_cache_metrics

            record_cache_metrics(self.metrics)
        have_timer = self.timer is not NULL_TIMER and self.timer.counts
        have_metrics = (not isinstance(self.metrics, NullMetrics)
                        and (self.metrics.counters or self.metrics.gauges))
        if not have_timer and not have_metrics:
            return
        self.lines.append("## Observability")
        self.lines.append("")
        if have_timer:
            self.lines.append("Per-stage wall time (all studies, worker "
                              "timers merged in):")
            self.lines.append("")
            self.lines.append("```")
            self.lines.append(self.timer.format())
            self.lines.append("```")
            self.lines.append("")
        if have_metrics:
            self.lines.append("Pipeline counters:")
            self.lines.append("")
            self.lines.append("```")
            self.lines.append(self.metrics.format_table())
            self.lines.append("```")
            self.lines.append("")

    # ------------------------------------------------------------------

    def render(self) -> str:
        return "\n".join(self.lines) + "\n"


def generate_report(benchmarks: Optional[List[str]] = None,
                    jobs: int = 1, timer=NULL_TIMER, metrics=NULL_METRICS,
                    tracer=NULL_TRACER, cache_dir: Optional[str] = None,
                    cache_max_mb: float = 256.0, region_memo=None) -> str:
    """Run every study and return the markdown report.

    ``jobs`` parallelizes the grid-shaped studies (see
    :func:`repro.evaluation.engine.evaluate_grid`).  Passing a
    ``timer``/``metrics`` pair appends an Observability section with
    per-stage timings and pipeline counters for the grid studies
    (region-memo hit/miss/byte gauges included).  ``cache_dir`` routes
    the grid studies through the persistent artifact store
    (:mod:`repro.serve.store`), so repeated reports reuse each other's
    schedule results.  ``region_memo=False`` disables the region-level
    result cache (see :func:`repro.evaluation.engine.evaluate_grid`).
    """
    builder = ReportBuilder(benchmarks, jobs=jobs, timer=timer,
                            metrics=metrics, tracer=tracer,
                            cache_dir=cache_dir,
                            cache_max_mb=cache_max_mb,
                            region_memo=region_memo)
    with tracer.span("report.region_statistics"):
        builder.add_region_statistics()
    with tracer.span("report.heuristic_speedups"):
        builder.add_heuristic_speedups("4U")
    with tracer.span("report.scheme_comparison"):
        builder.add_scheme_comparison("8U")
    with tracer.span("report.variation_study"):
        builder.add_variation_study()
    with tracer.span("report.dynamic_comparison"):
        builder.add_dynamic_comparison()
    with tracer.span("report.analysis"):
        builder.add_analysis()
    with tracer.span("report.gap"):
        builder.add_gap()
    builder.add_observability()
    return builder.render()
