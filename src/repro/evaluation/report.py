"""One-shot experiment report generation.

``generate_report`` runs a configurable-scale version of every study in
the repository — region statistics, heuristic speedups, tail duplication
vs superblocks, hyperblocks, profile variation, and the dynamic-core
comparison — and renders a single markdown document.  Used by
``examples/full_report.py``; the committed EXPERIMENTS.md was produced
from the full-scale benchmark runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core import form_treegions
from repro.core.tail_duplication import TreegionLimits
from repro.interp import profile_program
from repro.machine import PAPER_MACHINES, VLIW_4U, VLIW_8U, universal_machine
from repro.regions import form_slrs, partition_stats
from repro.schedule import ScheduleOptions
from repro.schedule.priorities import HEURISTICS
from repro.evaluation.runner import baseline_time, evaluate_program
from repro.evaluation.schemes import (
    bb_scheme,
    hyperblock_scheme,
    slr_scheme,
    superblock_scheme,
    treegion_scheme,
    treegion_td_scheme,
)
from repro.evaluation.variation import variation_study
from repro.workloads.specint import BENCHMARK_NAMES, build_benchmark


def _geomean(values: Sequence[float]) -> float:
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def _table(header: List[str], rows: List[List[str]]) -> List[str]:
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    lines.append("")
    return lines


class ReportBuilder:
    """Collects study results and renders markdown."""

    def __init__(self, benchmarks: Optional[List[str]] = None):
        self.benchmarks = benchmarks or list(BENCHMARK_NAMES)
        self.lines: List[str] = [
            "# Treegion scheduling — experiment report",
            "",
            f"Benchmarks: {', '.join(self.benchmarks)}",
            "",
        ]
        self._baselines: Dict[str, float] = {}

    def _baseline(self, name: str) -> float:
        if name not in self._baselines:
            self._baselines[name] = baseline_time(build_benchmark(name))
        return self._baselines[name]

    # ------------------------------------------------------------------

    def add_region_statistics(self) -> None:
        rows = []
        for name in self.benchmarks:
            function = build_benchmark(name).entry_function
            tree = partition_stats([form_treegions(function.cfg)])
            slr = partition_stats([form_slrs(function.cfg)])
            rows.append([
                name,
                f"{tree.avg_blocks:.2f}", f"{tree.avg_ops:.1f}",
                f"{slr.avg_blocks:.2f}", f"{slr.avg_ops:.1f}",
            ])
        self.lines.append("## Region statistics (Tables 1 & 2)")
        self.lines.append("")
        self.lines.extend(_table(
            ["program", "tree bb", "tree ops", "slr bb", "slr ops"], rows
        ))

    def add_heuristic_speedups(self, machine_name: str = "4U") -> None:
        machine = PAPER_MACHINES[machine_name]
        rows = []
        means = {heuristic: [] for heuristic in HEURISTICS}
        for name in self.benchmarks:
            program = build_benchmark(name)
            base = self._baseline(name)
            cells = [name]
            for heuristic in HEURISTICS:
                result = evaluate_program(
                    program, treegion_scheme(), machine,
                    ScheduleOptions(heuristic=heuristic),
                )
                speedup = base / result.time
                means[heuristic].append(speedup)
                cells.append(f"{speedup:.2f}")
            rows.append(cells)
        rows.append(["geomean"] + [
            f"{_geomean(means[h]):.2f}" for h in HEURISTICS
        ])
        self.lines.append(
            f"## Treegion heuristics, {machine_name} (Figure 8)"
        )
        self.lines.append("")
        self.lines.extend(_table(["program"] + list(HEURISTICS), rows))

    def add_scheme_comparison(self, machine_name: str = "8U") -> None:
        machine = PAPER_MACHINES[machine_name]
        schemes = [
            ("bb", bb_scheme()),
            ("slr", slr_scheme()),
            ("superblock", superblock_scheme()),
            ("hyperblock", hyperblock_scheme()),
            ("treegion", treegion_scheme()),
            ("treegion-td(3.0)",
             treegion_td_scheme(TreegionLimits(code_expansion=3.0))),
        ]
        options = ScheduleOptions(heuristic="global_weight",
                                  dominator_parallelism=True)
        rows = []
        means: Dict[str, List[float]] = {label: [] for label, _ in schemes}
        for name in self.benchmarks:
            program = build_benchmark(name)
            base = self._baseline(name)
            cells = [name]
            for label, scheme in schemes:
                result = evaluate_program(program, scheme, machine, options)
                speedup = base / result.time
                means[label].append(speedup)
                cells.append(f"{speedup:.2f}")
            rows.append(cells)
        rows.append(["geomean"] + [
            f"{_geomean(means[label]):.2f}" for label, _ in schemes
        ])
        self.lines.append(
            f"## All schemes, {machine_name}, global weight "
            "(Figures 6 & 13 + hyperblocks)"
        )
        self.lines.append("")
        self.lines.extend(_table(
            ["program"] + [label for label, _ in schemes], rows
        ))

    def add_variation_study(self, seeds: Sequence[int] = (7, 19)) -> None:
        rows = []
        for name in self.benchmarks[:4]:
            program = build_benchmark(name)
            results = variation_study(
                program, treegion_scheme, VLIW_4U,
                heuristics=list(HEURISTICS), seeds=list(seeds),
            )
            rows.append([name] + [
                f"{results[h]['degradation']:.3f}" for h in HEURISTICS
            ])
        self.lines.append("## Profile-variation robustness (Section 6)")
        self.lines.append("")
        self.lines.extend(_table(["program"] + list(HEURISTICS), rows))

    def add_dynamic_comparison(self) -> None:
        from repro.dynamic import DynamicParams, collect_trace, simulate_trace
        from repro.vliw import simulate
        from repro.workloads.minic_programs import (
            build_minic_program,
            minic_program_names,
        )

        options = ScheduleOptions(heuristic="global_weight")
        rows = []
        for name in minic_program_names():
            program, args = build_minic_program(name)
            _result, trace = collect_trace(program, args)
            profile_program(program, inputs=[args])
            _res, bb1 = simulate(program, bb_scheme(), universal_machine(1),
                                 args, options)
            _res, tree = simulate(program, treegion_scheme(), VLIW_4U, args,
                                  options)
            ooo = simulate_trace(trace, DynamicParams(issue_width=4,
                                                      window=32))
            rows.append([
                name,
                f"{bb1.cycles / tree.cycles:.2f}",
                f"{bb1.cycles / ooo.cycles:.2f}",
            ])
        self.lines.append("## Static treegions vs out-of-order core "
                          "(Section 6)")
        self.lines.append("")
        self.lines.extend(_table(["program", "treegion 4U", "ooo 4-wide"],
                                 rows))

    # ------------------------------------------------------------------

    def render(self) -> str:
        return "\n".join(self.lines) + "\n"


def generate_report(benchmarks: Optional[List[str]] = None) -> str:
    """Run every study and return the markdown report."""
    builder = ReportBuilder(benchmarks)
    builder.add_region_statistics()
    builder.add_heuristic_speedups("4U")
    builder.add_scheme_comparison("8U")
    builder.add_variation_study()
    builder.add_dynamic_comparison()
    return builder.render()
