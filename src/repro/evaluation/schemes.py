"""Region-formation schemes, packaged for the experiment runner.

A :class:`Scheme` bundles a region former with its parameters and records
whether formation mutates the CFG (tail duplication does), so the runner
knows to work on a clone.  The five schemes the paper compares:

* ``bb`` — basic blocks (the speedup baseline, Section 3);
* ``slr`` — simple linear regions (Section 3);
* ``treegion`` — treegions without tail duplication (Section 3);
* ``superblock`` — profile traces + tail duplication (Section 4);
* ``treegion-td`` — treegions with tail duplication (Section 4), with the
  code-expansion limit in the name (``treegion-td(2.0)``).

:class:`SchemeSpec` is the typed, picklable description of a scheme: it
parses the spec strings used everywhere schemes cross a textual boundary
(CLI flags, grid cells, worker processes) and round-trips through
``str()``.  :class:`Scheme` objects close over formation callables and are
*not* picklable; a spec is what you keep and ship, ``spec.build()`` is
what you call at the point of use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.ir.cfg import CFG
from repro.obs.metrics import NULL_METRICS, current_metrics
from repro.regions.basic import form_basic_block_regions
from repro.regions.hyperblock import HyperblockLimits, form_hyperblocks
from repro.regions.region import RegionPartition
from repro.regions.slr import form_slrs
from repro.regions.superblock import SuperblockLimits, form_superblocks
from repro.core.formation import form_treegions
from repro.core.tail_duplication import TreegionLimits, form_treegions_td


@dataclass(frozen=True)
class Scheme:
    """A named region-formation strategy."""

    name: str
    form: Callable[[CFG], RegionPartition]
    #: True when formation tail-duplicates (the runner clones the program).
    mutates: bool = False


def _counted(form: Callable[[CFG], RegionPartition]
             ) -> Callable[[CFG], RegionPartition]:
    """Wrap a former so each run counts formed regions/blocks into the
    active metrics registry (formation happens once per (benchmark,
    scheme, function) on every engine path, so these counters merge
    deterministically)."""

    def run(cfg: CFG) -> RegionPartition:
        partition = form(cfg)
        metrics = current_metrics()
        if metrics is not NULL_METRICS:
            regions = list(partition)
            metrics.inc("formation.regions", len(regions))
            metrics.inc("formation.blocks",
                        sum(r.block_count for r in regions))
        return partition

    return run


def bb_scheme() -> Scheme:
    return Scheme("bb", _counted(form_basic_block_regions))


def slr_scheme() -> Scheme:
    return Scheme("slr", _counted(form_slrs))


def treegion_scheme() -> Scheme:
    return Scheme("treegion", _counted(form_treegions))


def superblock_scheme(limits: Optional[SuperblockLimits] = None) -> Scheme:
    limits = limits or SuperblockLimits()
    return Scheme(
        "superblock",
        _counted(lambda cfg: form_superblocks(cfg, limits)),
        mutates=True,
    )


def treegion_td_scheme(limits: Optional[TreegionLimits] = None) -> Scheme:
    limits = limits or TreegionLimits()
    return Scheme(
        f"treegion-td({limits.code_expansion:g})",
        _counted(lambda cfg: form_treegions_td(cfg, limits)),
        mutates=True,
    )


def hyperblock_scheme(limits: Optional[HyperblockLimits] = None) -> Scheme:
    """If-converted hyperblocks (the paper's Section 6 comparison point:
    predication instead of tail duplication + speculation)."""
    limits = limits or HyperblockLimits()
    return Scheme(
        "hyperblock",
        _counted(lambda cfg: form_hyperblocks(cfg, limits)),
    )


# ----------------------------------------------------------------------
# Typed scheme specs


class SchemeSpecError(ValueError):
    """A scheme spec string could not be parsed."""


#: Scheme kinds that take no parameter.
_PLAIN_KINDS = ("bb", "slr", "treegion", "superblock", "hyperblock")


@dataclass(frozen=True)
class SchemeSpec:
    """A parsed, picklable scheme description.

    ``kind`` is one of ``bb``, ``slr``, ``treegion``, ``superblock``,
    ``hyperblock``, ``treegion-td``; ``limit`` is the code-expansion limit
    for ``treegion-td`` (``None`` selects the default
    :class:`~repro.core.tail_duplication.TreegionLimits`).

    The canonical string form (``str(spec)``) is ``<kind>`` or
    ``treegion-td:<limit>``; :meth:`parse` also accepts the display form
    ``treegion-td(<limit>)`` that :class:`Scheme` names use, so
    ``SchemeSpec.parse(str(spec)) == spec`` always holds.
    """

    kind: str
    limit: Optional[float] = None

    def __post_init__(self):
        if self.kind not in _PLAIN_KINDS and self.kind != "treegion-td":
            raise SchemeSpecError(
                f"unknown scheme {self.kind!r}; expected one of "
                f"{', '.join(_PLAIN_KINDS)} or treegion-td[:<limit>]"
            )
        if self.limit is not None:
            if self.kind != "treegion-td":
                raise SchemeSpecError(
                    f"scheme {self.kind!r} takes no parameter "
                    f"(got {self.limit!r})"
                )
            if self.limit < 1.0:
                raise SchemeSpecError(
                    f"treegion-td code-expansion limit must be >= 1.0, "
                    f"got {self.limit:g}"
                )

    @classmethod
    def parse(cls, spec: str) -> "SchemeSpec":
        """Parse a spec string (``treegion``, ``treegion-td:2.0``, or the
        display form ``treegion-td(2.0)``) into a :class:`SchemeSpec`."""
        text = spec.strip()
        if not text:
            raise SchemeSpecError("empty scheme spec")
        if text in _PLAIN_KINDS or text == "treegion-td":
            return cls(text)
        if ":" in text:
            head, _, tail = text.partition(":")
        elif text.endswith(")") and "(" in text:
            head, _, tail = text[:-1].partition("(")
        else:
            raise SchemeSpecError(
                f"unknown scheme spec {spec!r}; expected one of "
                f"{', '.join(_PLAIN_KINDS)} or treegion-td:<limit>"
            )
        head = head.strip()
        try:
            limit = float(tail)
        except ValueError:
            raise SchemeSpecError(
                f"bad parameter {tail!r} in scheme spec {spec!r} "
                f"(expected a number)"
            ) from None
        return cls(head, limit)

    def __str__(self) -> str:
        if self.limit is None:
            return self.kind
        return f"{self.kind}:{self.limit:g}"

    def build(self) -> Scheme:
        """Instantiate the :class:`Scheme` this spec describes."""
        if self.kind == "bb":
            return bb_scheme()
        if self.kind == "slr":
            return slr_scheme()
        if self.kind == "treegion":
            return treegion_scheme()
        if self.kind == "superblock":
            return superblock_scheme()
        if self.kind == "hyperblock":
            return hyperblock_scheme()
        if self.limit is None:
            return treegion_td_scheme()
        return treegion_td_scheme(TreegionLimits(code_expansion=self.limit))


def parse_scheme_spec(spec: str) -> SchemeSpec:
    """Module-level alias for :meth:`SchemeSpec.parse`."""
    return SchemeSpec.parse(spec)
