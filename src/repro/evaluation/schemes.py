"""Region-formation schemes, packaged for the experiment runner.

A :class:`Scheme` bundles a region former with its parameters and records
whether formation mutates the CFG (tail duplication does), so the runner
knows to work on a clone.  The five schemes the paper compares:

* ``bb`` — basic blocks (the speedup baseline, Section 3);
* ``slr`` — simple linear regions (Section 3);
* ``treegion`` — treegions without tail duplication (Section 3);
* ``superblock`` — profile traces + tail duplication (Section 4);
* ``treegion-td`` — treegions with tail duplication (Section 4), with the
  code-expansion limit in the name (``treegion-td(2.0)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.ir.cfg import CFG
from repro.regions.basic import form_basic_block_regions
from repro.regions.hyperblock import HyperblockLimits, form_hyperblocks
from repro.regions.region import RegionPartition
from repro.regions.slr import form_slrs
from repro.regions.superblock import SuperblockLimits, form_superblocks
from repro.core.formation import form_treegions
from repro.core.tail_duplication import TreegionLimits, form_treegions_td


@dataclass(frozen=True)
class Scheme:
    """A named region-formation strategy."""

    name: str
    form: Callable[[CFG], RegionPartition]
    #: True when formation tail-duplicates (the runner clones the program).
    mutates: bool = False


def bb_scheme() -> Scheme:
    return Scheme("bb", form_basic_block_regions)


def slr_scheme() -> Scheme:
    return Scheme("slr", form_slrs)


def treegion_scheme() -> Scheme:
    return Scheme("treegion", form_treegions)


def superblock_scheme(limits: Optional[SuperblockLimits] = None) -> Scheme:
    limits = limits or SuperblockLimits()
    return Scheme(
        "superblock",
        lambda cfg: form_superblocks(cfg, limits),
        mutates=True,
    )


def treegion_td_scheme(limits: Optional[TreegionLimits] = None) -> Scheme:
    limits = limits or TreegionLimits()
    return Scheme(
        f"treegion-td({limits.code_expansion:g})",
        lambda cfg: form_treegions_td(cfg, limits),
        mutates=True,
    )


def hyperblock_scheme(limits: Optional[HyperblockLimits] = None) -> Scheme:
    """If-converted hyperblocks (the paper's Section 6 comparison point:
    predication instead of tail duplication + speculation)."""
    limits = limits or HyperblockLimits()
    return Scheme(
        "hyperblock",
        lambda cfg: form_hyperblocks(cfg, limits),
    )
