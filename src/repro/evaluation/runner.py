"""The experiment runner: form regions, schedule, estimate, compare.

The estimated execution time of a program under a scheme is

    sum over regions of sum over exits of  weight(exit) * retire_cycle(exit)

(the paper's Figures 4/5 arithmetic, applied program-wide), and the
performance metric is speedup over basic-block scheduling on the
single-issue universal machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.ir.clone import clone_program
from repro.ir.function import Program
from repro.machine.model import MachineModel
from repro.machine.presets import SCALAR_1U
from repro.obs.metrics import NULL_METRICS, metrics_scope
from repro.obs.tracer import NULL_TRACER
from repro.regions.region import RegionPartition
from repro.regions.stats import RegionStats, partition_stats
from repro.schedule.priorities import DEP_HEIGHT
from repro.schedule.schedule import RegionSchedule
from repro.schedule.scheduler import ScheduleOptions, schedule_partition
from repro.util.timing import NULL_TIMER, StageTimer
from repro.evaluation.schemes import Scheme, bb_scheme


@dataclass
class EvaluationResult:
    """Everything one (program, scheme, machine, options) run produced."""

    scheme: str
    machine: str
    heuristic: str
    #: Estimated execution time (profile-weighted cycles).
    time: float
    #: Code expansion factor vs the original program (1.0 when the scheme
    #: does not duplicate).
    code_expansion: float
    #: Per-function partitions (on the possibly-duplicated clone).
    partitions: List[RegionPartition] = field(default_factory=list)
    #: All region schedules.
    schedules: List[RegionSchedule] = field(default_factory=list)
    #: The program the partitions refer to (clone if the scheme mutates).
    program: Optional[Program] = None

    @property
    def stats(self) -> RegionStats:
        return partition_stats(self.partitions)

    @property
    def multi_block_stats(self) -> RegionStats:
        return partition_stats(self.partitions, multi_block_only=True)

    @property
    def total_copies(self) -> int:
        return sum(len(s.copies) for s in self.schedules)

    @property
    def total_merged(self) -> int:
        return sum(len(s.merged) for s in self.schedules)

    @property
    def total_speculated(self) -> int:
        return sum(s.speculated_count for s in self.schedules)


def evaluate_program(
    program: Program,
    scheme: Scheme,
    machine: MachineModel,
    options: Optional[ScheduleOptions] = None,
    timer: StageTimer = NULL_TIMER,
    metrics=NULL_METRICS,
    tracer=NULL_TRACER,
) -> EvaluationResult:
    """Run one full formation + scheduling + estimation pipeline.

    The input program is never modified: schemes that tail-duplicate run
    on a deep clone (returned in the result for inspection).  ``timer``
    accumulates per-stage wall time (formation + the scheduler's stages);
    ``metrics`` collects pipeline counters and ``tracer`` records the run
    as nested spans (program → function → formation/schedule_region →
    prep/renaming/ddg/list_schedule).
    """
    options = options or ScheduleOptions()
    with metrics_scope(metrics), \
            tracer.span("evaluate_program", scheme=scheme.name,
                        machine=machine.name,
                        heuristic=options.heuristic):
        with timer.stage("clone"):
            worked = clone_program(program) if scheme.mutates else program
        original_ops = sum(fn.cfg.total_ops for fn in program.functions())

        result = EvaluationResult(
            scheme=scheme.name,
            machine=machine.name,
            heuristic=options.heuristic,
            time=0.0,
            code_expansion=1.0,
            program=worked,
        )
        for function in worked.functions():
            with tracer.span("function", function=function.name):
                with timer.stage("formation"), tracer.span("formation"):
                    partition = scheme.form(function.cfg)
                schedules = schedule_partition(partition, machine, options,
                                               timer=timer, tracer=tracer)
                result.partitions.append(partition)
                result.schedules.extend(schedules)
                with timer.stage("estimate"):
                    result.time += sum(s.weighted_time for s in schedules)

        final_ops = sum(fn.cfg.total_ops for fn in worked.functions())
        if original_ops > 0:
            result.code_expansion = final_ops / original_ops
        return result


def baseline_time(
    program: Program, options: Optional[ScheduleOptions] = None
) -> float:
    """Basic-block scheduling on the 1-issue machine: the paper's
    speedup denominator."""
    options = options or ScheduleOptions(heuristic=DEP_HEIGHT)
    return evaluate_program(program, bb_scheme(), SCALAR_1U, options).time


def speedup_over_baseline(
    result: EvaluationResult, baseline: float
) -> float:
    """Speedup = T(bb, 1U) / T(scheme, machine)."""
    if result.time <= 0:
        return float("inf") if baseline > 0 else 1.0
    return baseline / result.time
