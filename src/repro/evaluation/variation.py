"""Profile-variation studies (the paper's first future-work item).

"First, we would like to investigate the performance of treegion schedules
across different sets of inputs, to see the effects of profile variations
using the various heuristics" — Section 6.  The paper also hypothesizes
(Section 3) that the exit-count heuristic, while weaker under a faithful
profile, "may preserve performance better" under variation, and notes that
dependence height "is useful when profile information is unavailable or
unreliable".

Machinery:

* :func:`edge_probabilities` — turn profiled edge weights into per-block
  branching probabilities;
* :func:`solve_weights` — recover steady-state block/edge weights for a
  given probability assignment by solving the linear flow system
  ``w = e + P^T w`` (numpy dense solve; loops handled exactly);
* :func:`perturb_profile` — jitter the probabilities multiplicatively
  (log-normal noise) and occasionally flip a two-way branch, then re-solve
  — a synthetic "different input set";
* :func:`time_under_current_weights` — re-price existing schedules under
  whatever weights the CFG currently carries (the schedules themselves
  are unchanged: that is the point of the study).

The headline property, tested in ``tests/test_variation.py``: treegion
formation is profile-independent and the dependence-height heuristic uses
no weights, so its schedules are *invariant* under profile variation,
while global weight trades some robustness for its peak performance.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.ir.cfg import CFG
from repro.schedule.schedule import RegionSchedule


def edge_probabilities(cfg: CFG) -> Dict[int, float]:
    """Per-edge branch probabilities derived from profiled weights.

    Keyed by ``id(edge)``.  Blocks whose out-edges carry no weight get a
    uniform split (the paper's region formers behave the same way on
    zero-profile code).
    """
    probabilities: Dict[int, float] = {}
    for block in cfg.blocks():
        if not block.out_edges:
            continue
        total = sum(edge.weight for edge in block.out_edges)
        for edge in block.out_edges:
            if total > 0:
                probabilities[id(edge)] = edge.weight / total
            else:
                probabilities[id(edge)] = 1.0 / len(block.out_edges)
    return probabilities


def solve_weights(
    cfg: CFG,
    probabilities: Dict[int, float],
    entry_count: float,
) -> Tuple[Dict[int, float], Dict[int, float]]:
    """Block and edge weights consistent with the given probabilities.

    Solves the flow equations ``w_b = entry_b + sum_{e: e.dst = b} p_e *
    w_{e.src}`` exactly — loops become geometric series without any
    iteration cap.  Returns ({bid: weight}, {id(edge): weight}).

    Raises ``numpy.linalg.LinAlgError`` if the system is singular (a loop
    with no exit probability); profiled CFGs of terminating programs are
    always solvable.
    """
    blocks = cfg.blocks()
    index = {block.bid: i for i, block in enumerate(blocks)}
    n = len(blocks)
    matrix = np.eye(n)
    entry_vector = np.zeros(n)
    if cfg.entry is not None:
        entry_vector[index[cfg.entry.bid]] = entry_count
    for block in blocks:
        for edge in block.out_edges:
            probability = probabilities.get(id(edge), 0.0)
            matrix[index[edge.dst.bid], index[block.bid]] -= probability
    solution = np.linalg.solve(matrix, entry_vector)

    block_weights = {block.bid: max(0.0, float(solution[index[block.bid]]))
                     for block in blocks}
    edge_weights: Dict[int, float] = {}
    for block in blocks:
        for edge in block.out_edges:
            edge_weights[id(edge)] = (
                block_weights[block.bid] * probabilities.get(id(edge), 0.0)
            )
    return block_weights, edge_weights


def apply_weights(cfg: CFG, block_weights: Dict[int, float],
                  edge_weights: Dict[int, float]) -> None:
    """Write solved weights back onto the CFG."""
    for block in cfg.blocks():
        block.weight = block_weights[block.bid]
        for edge in block.out_edges:
            edge.weight = edge_weights[id(edge)]


def snapshot_weights(cfg: CFG):
    """Capture current weights so a study can restore them afterwards."""
    return (
        {block.bid: block.weight for block in cfg.blocks()},
        {id(edge): edge.weight
         for block in cfg.blocks() for edge in block.out_edges},
    )


def restore_weights(cfg: CFG, snapshot) -> None:
    block_weights, edge_weights = snapshot
    for block in cfg.blocks():
        block.weight = block_weights[block.bid]
        for edge in block.out_edges:
            edge.weight = edge_weights[id(edge)]


def perturb_profile(
    cfg: CFG,
    seed: int,
    magnitude: float = 0.5,
    flip_probability: float = 0.1,
    entry_count: Optional[float] = None,
) -> None:
    """Mutate the CFG's weights into a plausible "different input" profile.

    Each out-edge probability is scaled by log-normal noise of the given
    magnitude; two-way branches additionally *flip* (swap arm
    probabilities) with ``flip_probability`` — the kind of change a
    different input set produces.  Weights are then re-solved for flow
    consistency.
    """
    rng = random.Random(seed)
    if entry_count is None:
        entry_count = cfg.entry.weight if cfg.entry is not None else 1.0
        if entry_count <= 0:
            entry_count = 1.0
    probabilities = edge_probabilities(cfg)
    for block in cfg.blocks():
        edges = block.out_edges
        if not edges:
            continue
        raw = []
        for edge in edges:
            noise = np.exp(rng.gauss(0.0, magnitude))
            raw.append(max(1e-9, probabilities[id(edge)] * noise))
        if len(edges) == 2 and rng.random() < flip_probability:
            raw.reverse()
        total = sum(raw)
        for edge, value in zip(edges, raw):
            probabilities[id(edge)] = value / total
    block_weights, edge_weights = solve_weights(cfg, probabilities,
                                                entry_count)
    apply_weights(cfg, block_weights, edge_weights)


def time_under_current_weights(schedules: Iterable[RegionSchedule]) -> float:
    """Re-price fixed schedules under the CFG's *current* weights.

    Exit retire cycles stay what the (training-profile) scheduler chose;
    only the weights change — exactly the situation of running a schedule
    on an input it was not tuned for.
    """
    total = 0.0
    for schedule in schedules:
        for record in schedule.exits:
            exit = record.exit
            weight = (
                exit.edge.weight if exit.edge is not None
                else exit.source.weight
            )
            total += weight * record.cycle
    return total


def variation_study(
    program,
    scheme_factory,
    machine,
    heuristics: Sequence[str],
    seeds: Sequence[int],
    magnitude: float = 0.5,
) -> Dict[str, Dict[str, float]]:
    """Quantify each heuristic's robustness to profile variation.

    For each heuristic: schedule under the training profile; for each
    perturbation seed, re-price the *fixed* schedules under the perturbed
    profile and compare against an oracle rescheduled with the perturbed
    profile.  Returns, per heuristic::

        {"train": T_train, "test": mean T_test(fixed schedule),
         "oracle": mean T_test(rescheduled), "degradation": test/oracle}

    Degradation 1.0 = perfectly robust.
    """
    from repro.ir.clone import clone_program
    from repro.schedule.scheduler import ScheduleOptions, schedule_partition

    results: Dict[str, Dict[str, float]] = {}
    for heuristic in heuristics:
        worked = clone_program(program)
        scheme = scheme_factory()
        partitions = []
        schedules = []
        options = ScheduleOptions(heuristic=heuristic)
        for function in worked.functions():
            partition = scheme.form(function.cfg)
            partitions.append(partition)
            schedules.extend(schedule_partition(partition, machine, options))
        train_time = sum(s.weighted_time for s in schedules)

        test_times: List[float] = []
        oracle_times: List[float] = []
        for seed in seeds:
            snapshots = []
            for function in worked.functions():
                snapshots.append(snapshot_weights(function.cfg))
                perturb_profile(function.cfg, seed, magnitude=magnitude)
            test_times.append(time_under_current_weights(schedules))
            oracle = []
            for partition in partitions:
                oracle.extend(schedule_partition(partition, machine, options))
            oracle_times.append(time_under_current_weights(oracle))
            for function, snapshot in zip(worked.functions(), snapshots):
                restore_weights(function.cfg, snapshot)

        mean_test = sum(test_times) / len(test_times)
        mean_oracle = sum(oracle_times) / len(oracle_times)
        results[heuristic] = {
            "train": train_time,
            "test": mean_test,
            "oracle": mean_oracle,
            "degradation": mean_test / mean_oracle if mean_oracle else 1.0,
        }
    return results
