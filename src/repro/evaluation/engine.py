"""Parallel, cached evaluation of the full experiment grid.

The paper's experiments sweep a grid of (benchmark × scheme × machine ×
heuristic) cells; evaluating each cell independently repeats a lot of
work — the clone, the region formation, liveness, dominators, register
bounds, and the priority-key ingredients are all identical across the
machines and heuristics of one (benchmark, scheme) pair.  This module
provides :func:`evaluate_grid`, which exploits that structure:

* **serial path** (``jobs=1``, the default): cells are grouped by
  (benchmark, scheme); the clone and formation run once per group, the
  version-keyed analysis cache (:mod:`repro.ir.analysis_cache`) serves
  liveness/dominators/register bounds to every region, and priority keys
  are computed once per (region, machine) and shared across heuristics;

* **parallel path** (``jobs>1``, or ``jobs=0`` for the CPU count): work
  fans out over a ``multiprocessing`` pool at *cell* granularity, and
  large programs additionally split *by function* (formation and
  estimation are per-function independent, so a contiguous slice of
  functions is a self-contained work item).  Workers rebuild benchmark
  programs from their names — schemes hold closures and programs are
  heavy, so neither crosses the process boundary — and the parent merges
  partial results **in function order**, reproducing the serial float
  accumulation exactly.

Both paths are guaranteed bit-identical to per-cell serial evaluation
(:func:`evaluate_cell`): same ``time``, same ``code_expansion``, same
per-region schedule lengths.  ``tests/test_engine.py`` enforces this.

Cells name their scheme by *spec string* (``"bb"``, ``"slr"``,
``"treegion"``, ``"superblock"``, ``"hyperblock"``,
``"treegion-td:2.0"``) precisely because :class:`Scheme` objects close
over formers and are not picklable; :func:`build_scheme` turns a spec
back into a scheme anywhere, including inside a worker.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.ir.analysis_cache import liveness_of
from repro.ir.clone import clone_function, clone_program
from repro.ir.function import Program
from repro.machine.model import MachineModel
from repro.machine.presets import PAPER_MACHINES, SCALAR_1U
from repro.obs.metrics import NULL_METRICS, MetricsRegistry, metrics_scope
from repro.obs.tracer import NULL_TRACER
from repro.schedule.priorities import HEURISTICS
from repro.schedule.scheduler import ScheduleOptions, schedule_region
from repro.util.timing import NULL_TIMER, StageTimer
from repro.evaluation.schemes import Scheme, SchemeSpec

#: Machines addressable by name from a grid cell.
MACHINES: Dict[str, MachineModel] = {"1U": SCALAR_1U, **PAPER_MACHINES}

#: Functions-per-task threshold above which a cell splits across workers.
SPLIT_THRESHOLD = 8


def build_scheme(spec: str) -> Scheme:
    """Turn a scheme spec string into a :class:`Scheme`.

    Deprecated ad-hoc path: the parsing now lives in
    :class:`repro.evaluation.schemes.SchemeSpec`; prefer
    ``SchemeSpec.parse(spec).build()`` (or ``repro.api.make_scheme``).
    Kept as a thin delegate because grid cells and workers still name
    schemes by spec string.
    """
    return SchemeSpec.parse(spec).build()


def machine_by_name(name: str) -> MachineModel:
    """Resolve a machine name (``1U``/``4U``/``8U``, or any ``<N>U``)."""
    machine = MACHINES.get(name)
    if machine is not None:
        return machine
    if name.endswith("U") and name[:-1].isdigit():
        from repro.machine.presets import universal_machine

        return universal_machine(int(name[:-1]), name=name)
    raise ValueError(
        f"unknown machine {name!r}; use one of {sorted(MACHINES)} or <N>U"
    )


@dataclass(frozen=True)
class GridCell:
    """One experiment: a benchmark under one scheme/machine/heuristic."""

    benchmark: str
    scheme: str
    machine: str
    heuristic: str
    dominator_parallelism: bool = False
    schedule_copies: bool = False
    backend: str = "heuristic"

    def options(self) -> ScheduleOptions:
        return ScheduleOptions(
            heuristic=self.heuristic,
            dominator_parallelism=self.dominator_parallelism,
            schedule_copies=self.schedule_copies,
            backend=self.backend,
        )


@dataclass
class CellResult:
    """The numbers one grid cell produced (picklable, program-free)."""

    cell: GridCell
    #: Estimated execution time (profile-weighted cycles).
    time: float
    #: Code expansion factor vs the original program.
    code_expansion: float
    #: Schedule length (cycles) of every region, in deterministic
    #: (function, region) order.
    schedule_lengths: Tuple[int, ...] = ()
    total_copies: int = 0
    total_merged: int = 0
    total_speculated: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "benchmark": self.cell.benchmark,
            "scheme": self.cell.scheme,
            "machine": self.cell.machine,
            "heuristic": self.cell.heuristic,
            "time": self.time,
            "code_expansion": self.code_expansion,
            "copies": self.total_copies,
            "merged": self.total_merged,
            "speculated": self.total_speculated,
        }


def default_grid(
    benchmarks: Optional[Sequence[str]] = None,
    schemes: Sequence[str] = ("bb", "treegion", "treegion-td:2.0"),
    machines: Sequence[str] = ("4U", "8U"),
    heuristics: Sequence[str] = HEURISTICS,
) -> List[GridCell]:
    """The paper's evaluation grid (8 benchmarks × 3 schemes × 2 machines
    × 4 heuristics = 192 cells with the defaults)."""
    if benchmarks is None:
        from repro.workloads.specint import BENCHMARK_NAMES

        benchmarks = BENCHMARK_NAMES
    return [
        GridCell(bench, scheme, machine, heuristic)
        for bench in benchmarks
        for scheme in schemes
        for machine in machines
        for heuristic in heuristics
    ]


# ----------------------------------------------------------------------
# Per-function evaluation core
#
# Formation and estimation are independent per function, so everything
# below works on (function, partition) pairs; both execution paths are
# built from the same pieces, which is what makes them bit-identical.


@dataclass
class _FunctionPartial:
    """One function's contribution to a cell (picklable)."""

    time: float
    original_ops: int
    final_ops: int
    schedule_lengths: Tuple[int, ...]
    copies: int = 0
    merged: int = 0
    speculated: int = 0


def _schedule_function_partition(
    partition,
    original_ops: int,
    final_ops: int,
    cell: GridCell,
    machine: MachineModel,
    timer: StageTimer,
    key_caches: Optional[Dict[Tuple[int, str], Dict]] = None,
    memo=None,
) -> _FunctionPartial:
    """Schedule one function's formed partition for one cell.

    With a :class:`repro.schedule.memo.RegionMemo` supplied, regions go
    through it (hits come back as summaries); the accumulation below
    reads only the attributes schedules and summaries share.
    """
    options = cell.options()
    schedules = []
    for region in partition:
        liveness = liveness_of(region.root.cfg)
        if memo is not None:
            schedules.append(
                memo.schedule(region, machine, options, liveness,
                              timer=timer)
            )
            continue
        key_cache = None
        if key_caches is not None and not cell.schedule_copies:
            key_cache = key_caches.setdefault((id(region), cell.machine), {})
        schedules.append(
            schedule_region(region, machine, options, liveness,
                            timer=timer, key_cache=key_cache)
        )
    with timer.stage("estimate"):
        time = sum(s.weighted_time for s in schedules)
    return _FunctionPartial(
        time=time,
        original_ops=original_ops,
        final_ops=final_ops,
        schedule_lengths=tuple(s.length for s in schedules),
        copies=sum(s.copy_count for s in schedules),
        merged=sum(s.merged_count for s in schedules),
        speculated=sum(s.speculated_count for s in schedules),
    )


def _merge_partials(cell: GridCell,
                    partials: Sequence[_FunctionPartial]) -> CellResult:
    """Fold per-function partials (already in function order) into one
    result, reproducing the serial runner's accumulation order."""
    time = 0.0
    lengths: List[int] = []
    original_ops = final_ops = copies = merged = speculated = 0
    for partial in partials:
        time += partial.time
        lengths.extend(partial.schedule_lengths)
        original_ops += partial.original_ops
        final_ops += partial.final_ops
        copies += partial.copies
        merged += partial.merged
        speculated += partial.speculated
    expansion = final_ops / original_ops if original_ops > 0 else 1.0
    return CellResult(
        cell=cell,
        time=time,
        code_expansion=expansion,
        schedule_lengths=tuple(lengths),
        total_copies=copies,
        total_merged=merged,
        total_speculated=speculated,
    )


# ----------------------------------------------------------------------
# Region memo plumbing


def _open_region_store(spec):
    """An artifact store from an instance, a directory, or (dir, max_mb)."""
    if spec is None:
        return None
    if hasattr(spec, "get_payload"):
        return spec
    from repro.serve.store import ArtifactStore

    if isinstance(spec, str):
        return ArtifactStore(spec)
    directory, max_mb = spec
    return ArtifactStore(directory, max_mb=max_mb)


def _resolve_memo(region_memo):
    """Turn ``evaluate_grid``'s ``region_memo`` argument into a memo.

    ``False`` → None (memo off); ``None``/``True`` → the process-global
    :func:`repro.schedule.memo.global_memo` (``None`` additionally
    honours ``REPRO_REGION_MEMO=0``); anything else is used as-is.
    """
    if region_memo is False:
        return None
    if region_memo is None or region_memo is True:
        if region_memo is None and \
                os.environ.get("REPRO_REGION_MEMO") == "0":
            return None
        from repro.schedule.memo import global_memo

        return global_memo()
    return region_memo


#: Per-worker-process region store handles, keyed by directory (opening
#: a store re-reads the index; once per process is enough).
_worker_stores: Dict[str, object] = {}


def _worker_region_store(directory: str, max_mb: float):
    store = _worker_stores.get(directory)
    if store is None:
        from repro.serve.store import ArtifactStore

        store = ArtifactStore(directory, max_mb=max_mb)
        _worker_stores[directory] = store
    return store


def evaluate_cell(
    cell: GridCell,
    program: Optional[Program] = None,
    timer: StageTimer = NULL_TIMER,
    metrics=NULL_METRICS,
    tracer=NULL_TRACER,
) -> CellResult:
    """Evaluate one grid cell from scratch (the reference serial path).

    Exactly :func:`repro.evaluation.runner.evaluate_program` with the
    cell's parameters, reduced to a picklable :class:`CellResult`.
    """
    if program is None:
        from repro.workloads.specint import build_benchmark

        program = build_benchmark(cell.benchmark)
    scheme = build_scheme(cell.scheme)
    with metrics_scope(metrics), \
            tracer.span("evaluate_cell", benchmark=cell.benchmark,
                        scheme=cell.scheme, machine=cell.machine,
                        heuristic=cell.heuristic):
        metrics.inc("engine.cells")
        with timer.stage("clone"):
            worked = clone_program(program) if scheme.mutates else program
        partials: List[_FunctionPartial] = []
        for original, function in zip(program.functions(),
                                      worked.functions()):
            with timer.stage("formation"), \
                    tracer.span("formation", function=function.name):
                partition = scheme.form(function.cfg)
            partials.append(
                _schedule_function_partition(
                    partition, original.cfg.total_ops,
                    function.cfg.total_ops,
                    cell, machine_by_name(cell.machine), timer,
                )
            )
        return _merge_partials(cell, partials)


# ----------------------------------------------------------------------
# Serial grid path: shared clone/formation per (benchmark, scheme)


def _evaluate_grid_serial(
    cells: Sequence[GridCell],
    programs: Optional[Dict[str, Program]],
    timer: StageTimer,
    texts: Optional[Dict[str, str]] = None,
    metrics=NULL_METRICS,
    tracer=NULL_TRACER,
    memo=None,
) -> List[CellResult]:
    results: List[Optional[CellResult]] = [None] * len(cells)
    groups: Dict[Tuple[str, str], List[int]] = {}
    for index, cell in enumerate(cells):
        groups.setdefault((cell.benchmark, cell.scheme), []).append(index)

    with metrics_scope(metrics):
        for (bench, scheme_spec), indices in groups.items():
            with tracer.span("group", benchmark=bench, scheme=scheme_spec,
                             cells=len(indices)):
                program = _resolve_program(bench, programs, texts)
                scheme = build_scheme(scheme_spec)
                # Clone and form once: formation is machine- and
                # heuristic-independent, and scheduling never mutates the
                # IR, so every cell of the group schedules the same
                # partitions.
                with timer.stage("clone"):
                    worked = clone_program(program) if scheme.mutates \
                        else program
                formed = []  # (partition, orig_ops, final_ops) per func
                with tracer.span("formation"):
                    for original, function in zip(program.functions(),
                                                  worked.functions()):
                        with timer.stage("formation"):
                            partition = scheme.form(function.cfg)
                        formed.append((partition, original.cfg.total_ops,
                                       function.cfg.total_ops))
                # Priority keys are shared across the group's heuristics,
                # keyed per (region, machine) — identically-prepared
                # problems have aligned op indices.
                key_caches: Dict[Tuple[int, str], Dict] = {}
                if memo is not None:
                    # Tier-1 sharing is id-keyed; scope it to this
                    # group's freshly formed regions.
                    memo.begin_group()
                for index in indices:
                    cell = cells[index]
                    machine = machine_by_name(cell.machine)
                    metrics.inc("engine.cells")
                    with tracer.span("cell", machine=cell.machine,
                                     heuristic=cell.heuristic):
                        partials = [
                            _schedule_function_partition(
                                partition, original_ops, final_ops, cell,
                                machine, timer, key_caches=key_caches,
                                memo=memo,
                            )
                            for partition, original_ops, final_ops in formed
                        ]
                        results[index] = _merge_partials(cell, partials)
    return results  # type: ignore[return-value]


#: Per-process cache of programs parsed from shipped IR text, keyed by
#: benchmark name (the stored text detects a changed payload).
_text_cache: Dict[str, Tuple[str, Program]] = {}


def _program_from_text(bench: str, text: str) -> Program:
    cached = _text_cache.get(bench)
    if cached is not None and cached[0] == text:
        return cached[1]
    from repro.ir.parser import parse_program

    program = parse_program(text)
    _text_cache[bench] = (text, program)
    return program


def _resolve_program(bench: str,
                     programs: Optional[Dict[str, Program]],
                     texts: Optional[Dict[str, str]] = None) -> Program:
    if programs is not None and bench in programs:
        return programs[bench]
    if texts is not None and bench in texts:
        return _program_from_text(bench, texts[bench])
    from repro.workloads.specint import build_benchmark

    return build_benchmark(bench)


# ----------------------------------------------------------------------
# Parallel grid path


#: A picklable work item: every cell of one (benchmark, scheme) group,
#: restricted to a half-open slice of the program's functions.  Grouping
#: keeps the serial path's work sharing inside the worker: the slice is
#: cloned and formed once, then scheduled for each (machine, heuristic)
#: cell of the group.  The fifth element is an optional textual IR dump:
#: programs that are not built-in benchmarks cross the process boundary
#: as text (the printer/parser round-trip is structure-identical).  The
#: last element is the region-memo directive: None = memo off, else
#: ``(store_directory_or_None, store_max_mb)`` — the worker uses its own
#: process-global memo and opens its own store handle (object writes are
#: atomic, so concurrent workers race safely).
_Task = Tuple[str, str, Tuple[Tuple[int, GridCell], ...], int, int,
              Optional[str], Optional[Tuple[Optional[str], float]]]


def _run_task(task: _Task):
    """Pool worker: evaluate one group's cells over a function slice.

    The program is rebuilt from the benchmark name (or re-parsed from the
    shipped IR text) inside the worker; each worker process caches per
    benchmark, so rebuilding is paid once per benchmark per worker, not
    per task.
    """
    bench, scheme_spec, indexed_cells, lo, hi, text, memo_spec = task
    if text is not None:
        program = _program_from_text(bench, text)
    else:
        from repro.workloads.specint import build_benchmark

        program = build_benchmark(bench)
    scheme = build_scheme(scheme_spec)
    timer = StageTimer()
    metrics = MetricsRegistry()
    memo = None
    before = None
    if memo_spec is not None:
        from repro.schedule.memo import global_memo

        memo = global_memo()
        directory, max_mb = memo_spec
        if directory is not None:
            memo.attach_store(_worker_region_store(directory, max_mb))
        memo.begin_group()
        before = memo.stats()
    with metrics_scope(metrics):
        formed = []  # (partition, original_ops, final_ops) per function
        for function in list(program.functions())[lo:hi]:
            with timer.stage("clone"):
                worked = clone_function(function) if scheme.mutates \
                    else function
            with timer.stage("formation"):
                partition = scheme.form(worked.cfg)
            formed.append((partition, function.cfg.total_ops,
                           worked.cfg.total_ops))
        key_caches: Dict[Tuple[int, str], Dict] = {}
        out = []
        for index, cell in indexed_cells:
            machine = machine_by_name(cell.machine)
            partials = [
                _schedule_function_partition(
                    partition, original_ops, final_ops, cell, machine,
                    timer, key_caches=key_caches, memo=memo,
                )
                for partition, original_ops, final_ops in formed
            ]
            out.append((index, partials))
    memo_stats = None
    if memo is not None:
        if memo.store is not None:
            memo.store.sync()
        after = memo.stats()
        memo_stats = {
            "hits": after["hits"] - before["hits"],
            "misses": after["misses"] - before["misses"],
            "store_hits": after["store_hits"] - before["store_hits"],
            "bytes": after["bytes"],
        }
        # High-water memo occupancy across the worker pool — explicitly
        # max-mode gauges, outside the determinism contract (occupancy
        # depends on work distribution, unlike the event counters).
        metrics.gauge("memo.entries", after["entries"], mode="max")
        metrics.gauge("memo.bytes", after["bytes"], mode="max")
    return (out, lo, (timer.totals, timer.counts), metrics.snapshot(),
            memo_stats)


def _split_cells(cells: Sequence[GridCell], jobs: int,
                 texts: Optional[Dict[str, str]] = None,
                 memo_spec: Optional[Tuple[Optional[str], float]] = None,
                 ) -> List[_Task]:
    """Cut the grid into group×slice tasks.

    Groups with few functions stay whole; larger programs split into up
    to ``jobs`` contiguous slices so one heavy benchmark cannot starve
    the pool.
    """
    groups: Dict[Tuple[str, str], List[Tuple[int, GridCell]]] = {}
    for index, cell in enumerate(cells):
        groups.setdefault((cell.benchmark, cell.scheme), []).append(
            (index, cell)
        )
    tasks: List[_Task] = []
    function_counts: Dict[str, int] = {}
    for (bench, scheme_spec), indexed in groups.items():
        text = texts.get(bench) if texts is not None else None
        count = function_counts.get(bench)
        if count is None:
            count = len(list(
                _resolve_program(bench, None, texts).functions()
            ))
            function_counts[bench] = count
        if count <= SPLIT_THRESHOLD:
            tasks.append((bench, scheme_spec, tuple(indexed), 0, count,
                          text, memo_spec))
            continue
        chunk = max(SPLIT_THRESHOLD, -(-count // jobs))
        for lo in range(0, count, chunk):
            tasks.append(
                (bench, scheme_spec, tuple(indexed), lo,
                 min(lo + chunk, count), text, memo_spec)
            )
    return tasks


def _evaluate_grid_parallel(
    cells: Sequence[GridCell],
    jobs: int,
    timer: StageTimer,
    texts: Optional[Dict[str, str]] = None,
    metrics=NULL_METRICS,
    tracer=NULL_TRACER,
    memo=None,
    region_stats: Optional[Dict[str, int]] = None,
) -> List[CellResult]:
    memo_spec: Optional[Tuple[Optional[str], float]] = None
    if memo is not None:
        if memo.store is not None:
            memo_spec = (memo.store.directory,
                         memo.store.max_bytes / (1024 * 1024))
        else:
            memo_spec = (None, 0.0)
    tasks = _split_cells(cells, jobs, texts, memo_spec)
    # Per-cell partial lists keyed by slice start, merged in function
    # order below so the float accumulation matches the serial path.
    by_cell: Dict[int, Dict[int, List[_FunctionPartial]]] = {}
    with tracer.span("pool", jobs=jobs, tasks=len(tasks)):
        with multiprocessing.Pool(processes=jobs) as pool:
            for out, lo, (totals, counts), snapshot, memo_stats in \
                    pool.imap_unordered(_run_task, tasks):
                for index, partials in out:
                    by_cell.setdefault(index, {})[lo] = partials
                for name, seconds in totals.items():
                    timer.add(name, seconds, counts.get(name, 0))
                metrics.merge_snapshot(snapshot)
                if memo_stats is not None and region_stats is not None:
                    region_stats["hits"] += memo_stats["hits"]
                    region_stats["misses"] += memo_stats["misses"]
                    region_stats["store_hits"] += memo_stats["store_hits"]
                    region_stats["bytes"] = max(region_stats["bytes"],
                                                memo_stats["bytes"])
                tracer.event("task_done", slice_start=lo,
                             cells=len(out))
    # The per-cell counter lives in the parent: a group split into
    # several function slices revisits each cell once per slice in the
    # workers, so counting there would overcount.
    metrics.inc("engine.cells", len(cells))
    results: List[CellResult] = []
    for index, cell in enumerate(cells):
        slices = by_cell[index]
        ordered: List[_FunctionPartial] = []
        for lo in sorted(slices):
            ordered.extend(slices[lo])
        results.append(_merge_partials(cell, ordered))
    return results


# ----------------------------------------------------------------------


def evaluate_grid(
    cells: Iterable[GridCell],
    programs: Optional[Dict[str, Program]] = None,
    jobs: int = 1,
    timer: StageTimer = NULL_TIMER,
    program_texts: Optional[Dict[str, str]] = None,
    metrics=NULL_METRICS,
    tracer=NULL_TRACER,
    region_memo=None,
    region_store=None,
) -> List[CellResult]:
    """Evaluate every grid cell; results come back in input order.

    Args:
        cells: The grid (see :func:`default_grid`).
        programs: Optional benchmark-name → program map overriding the
            built-in workloads.  Custom programs are evaluated in the
            parent process even when ``jobs > 1`` (workers rebuild
            programs by name and cannot receive arbitrary programs).
        jobs: 1 = serial with shared-work caching (default); N > 1 = a
            pool of N worker processes; 0 = one worker per CPU.
        timer: Accumulates per-stage wall time across the whole grid
            (worker timers are merged in).
        program_texts: Optional benchmark-name → textual IR dump map
            (:func:`repro.ir.printer.format_program`).  Unlike
            ``programs``, text *does* cross the process boundary, so
            these benchmarks fan out to workers — this is how the
            validation oracle runs generated programs through the
            parallel path.  ``programs`` wins when a name is in both.
        metrics: A :class:`repro.obs.metrics.MetricsRegistry` collecting
            pipeline counters.  Worker registries merge in commutatively,
            so serial and parallel runs of the same grid report identical
            counters/histograms (``deterministic_snapshot``).
        tracer: A :class:`repro.obs.tracer.Tracer` recording group/cell
            spans (serial) or pool/task events (parallel; worker-side
            spans do not cross the process boundary).
        region_memo: The region-level result cache
            (:class:`repro.schedule.memo.RegionMemo`).  ``None`` (the
            default) uses the process-global memo unless
            ``REPRO_REGION_MEMO=0`` is set; ``False`` disables
            memoization (the pre-memo shared-key path); an instance is
            used as given.  Memoized results are bit-identical to the
            direct pipeline, including deterministic metrics.
        region_store: Optional persistent backing for the region memo —
            an :class:`~repro.serve.store.ArtifactStore`, a directory,
            or ``(directory, max_mb)`` — attached for the duration of
            this call (workers open their own handles).

    Every path returns results bit-identical to calling
    :func:`evaluate_cell` per cell.
    """
    cells = list(cells)
    if jobs == 0:
        jobs = os.cpu_count() or 1
    memo = _resolve_memo(region_memo)
    previous_store = memo.store if memo is not None else None
    if memo is not None and region_store is not None:
        memo.attach_store(_open_region_store(region_store))
    stats = {"hits": 0, "misses": 0, "store_hits": 0, "bytes": 0}
    before = memo.stats() if memo is not None else None
    try:
        with tracer.span("evaluate_grid", cells=len(cells), jobs=jobs):
            if jobs <= 1 or not cells:
                return _evaluate_grid_serial(cells, programs, timer,
                                             program_texts, metrics, tracer,
                                             memo=memo)

            custom = set(programs) if programs is not None else set()
            pooled = [c for c in cells if c.benchmark not in custom]
            local = [c for c in cells if c.benchmark in custom]
            merged: Dict[int, CellResult] = {}
            if pooled:
                pooled_indices = [i for i, c in enumerate(cells)
                                  if c.benchmark not in custom]
                for position, result in enumerate(
                    _evaluate_grid_parallel(pooled, jobs, timer,
                                            program_texts, metrics, tracer,
                                            memo=memo, region_stats=stats)
                ):
                    merged[pooled_indices[position]] = result
            if local:
                local_indices = [i for i, c in enumerate(cells)
                                 if c.benchmark in custom]
                for position, result in enumerate(
                    _evaluate_grid_serial(local, programs, timer,
                                          program_texts, metrics, tracer,
                                          memo=memo)
                ):
                    merged[local_indices[position]] = result
            return [merged[i] for i in range(len(cells))]
    finally:
        if memo is not None:
            after = memo.stats()
            stats["hits"] += after["hits"] - before["hits"]
            stats["misses"] += after["misses"] - before["misses"]
            stats["store_hits"] += after["store_hits"] - before["store_hits"]
            stats["bytes"] = max(stats["bytes"], after["bytes"])
            if memo.store is not None:
                memo.store.sync()
            memo.attach_store(previous_store)
            if metrics is not NULL_METRICS:
                metrics.gauge("cache.region.hits", stats["hits"])
                metrics.gauge("cache.region.misses", stats["misses"])
                metrics.gauge("cache.region.bytes", stats["bytes"])
                if stats["store_hits"]:
                    metrics.gauge("cache.region.store_hits",
                                  stats["store_hits"])
