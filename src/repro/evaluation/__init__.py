"""Performance evaluation: the paper's estimation methodology.

"Program performance was measured by using the profile count and schedule
height of each region to estimate execution time.  The effects of
instruction and data caches were ignored, and perfect branch prediction was
assumed [...].  Speedup over basic block scheduling on a single-issue,
pipelined universal unit machine was the performance metric used."
— Section 3.
"""

from repro.evaluation.schemes import (
    Scheme,
    bb_scheme,
    slr_scheme,
    treegion_scheme,
    superblock_scheme,
    treegion_td_scheme,
)
from repro.evaluation.runner import (
    EvaluationResult,
    evaluate_program,
    baseline_time,
    speedup_over_baseline,
)
from repro.evaluation.engine import (
    CellResult,
    GridCell,
    build_scheme,
    default_grid,
    evaluate_cell,
    evaluate_grid,
    machine_by_name,
)

__all__ = [
    "Scheme",
    "bb_scheme",
    "slr_scheme",
    "treegion_scheme",
    "superblock_scheme",
    "treegion_td_scheme",
    "EvaluationResult",
    "evaluate_program",
    "baseline_time",
    "speedup_over_baseline",
    "CellResult",
    "GridCell",
    "build_scheme",
    "default_grid",
    "evaluate_cell",
    "evaluate_grid",
    "machine_by_name",
]
