"""The ``repro gap`` driver: heuristic heights vs proven optima.

For every (scheme, machine) pair this forms regions exactly the way the
evaluation engine does (cloning first when formation mutates), solves
each region with the exact backend (:func:`repro.exact.backend.
solve_region` — which also yields all four heuristic heights as the
incumbent candidates), and scores each heuristic against the optimum:

* per-heuristic **gap histograms** (``height − optimum`` over regions
  with a proven optimum) and the fraction of regions where each
  heuristic is optimal;
* the **bound certification** the satellite tasks demand: on every
  proven region, ``RegionBounds.lower_bound ≤ optimum`` must hold — a
  violation means the PR-9 bounds are unsound and is counted in
  ``summary.unsound_bounds`` (the CLI and CI gate on zero);
* optional per-region **lint certification**: every exact schedule runs
  through the ``sched.*`` legality rules; error diagnostics are counted
  in ``summary.lint_errors`` (also gated on zero).

The result is a plain JSON-ready dict; :func:`format_gap` renders the
human view and :func:`gap_summary` folds many programs' region rows
into one corpus-level summary table.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.ir.function import Program

#: Schemes the exact backend (and the bounds) are defined for.
DEFAULT_SCHEMES = ("bb", "treegion")
DEFAULT_MACHINES = ("4U", "8U")


def gap_program(
    program: Program,
    *,
    name: Optional[str] = None,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    machines: Sequence[str] = DEFAULT_MACHINES,
    budget: Optional[int] = None,
    max_ops: Optional[int] = None,
    lint: bool = True,
) -> Dict[str, object]:
    """Optimality-gap report for one program; a JSON-ready result dict.

    ``budget`` is the branch-and-bound node budget per region (default:
    :data:`repro.exact.backend.DEFAULT_NODE_BUDGET`).  ``max_ops``
    skips regions with more schedulable ops than the limit entirely
    (they appear only in ``summary.skipped``) — the validate oracle
    uses this to keep its cross-check cheap.  ``lint=True`` certifies
    every exact schedule with the ``sched.*`` rules.
    """
    from repro.api import machine as resolve_machine
    from repro.api import make_scheme
    from repro.ir.analysis_cache import liveness_of
    from repro.ir.clone import clone_program
    from repro.analysis.bounds import bounds_from_ddg
    from repro.exact.backend import DEFAULT_NODE_BUDGET, solve_region
    from repro.schedule.priorities import HEURISTICS

    if budget is None:
        budget = DEFAULT_NODE_BUDGET
    if budget < 0:
        raise ValueError("budget must be >= 0")

    rows: List[Dict[str, object]] = []
    skipped = 0

    for scheme_spec in schemes:
        scheme = make_scheme(scheme_spec)
        if scheme.name == "hyperblock":
            raise ValueError(
                "repro gap covers tree-pipeline schemes only; "
                "hyperblock schedules through a different pipeline"
            )
        for machine_spec in machines:
            mach = resolve_machine(machine_spec)
            # Formation may tail-duplicate; never touch the caller's IR.
            worked = clone_program(program) if scheme.mutates else program
            for function in worked.functions():
                partition = scheme.form(function.cfg)
                liveness = liveness_of(function.cfg)
                for region in partition:
                    schedule, info, problem, ddg = solve_region(
                        region, mach, liveness, budget=budget,
                    )
                    bounds = bounds_from_ddg(problem, ddg, mach)
                    if max_ops is not None and bounds.ops > max_ops:
                        skipped += 1
                        continue
                    lint_errors = 0
                    if lint:
                        from repro.lint.schedule_rules import check_schedule

                        report = check_schedule(
                            problem, ddg, schedule, machine=mach,
                            liveness=liveness,
                        )
                        lint_errors = len(report.errors)
                    best = min(info.heights.values())
                    reference = info.optimum if info.proven else best
                    rows.append({
                        "function": function.name,
                        "scheme": scheme.name,
                        "machine": mach.name,
                        "root": region.root.bid,
                        "blocks": region.block_count,
                        "ops": bounds.ops,
                        "critical_path": bounds.critical_path,
                        "resource_bound": bounds.resource,
                        "lower_bound": bounds.lower_bound,
                        "heights": dict(info.heights),
                        "best": best,
                        "status": info.status,
                        "optimum": info.optimum,
                        "length": info.length,
                        "improved": info.improved,
                        "nodes": info.nodes,
                        "pruned": info.pruned,
                        # The bound certification: on proven regions the
                        # bound must not exceed the optimum; otherwise
                        # the (weaker) heuristic check applies.
                        "sound": bounds.lower_bound <= reference,
                        "lint_errors": lint_errors,
                    })

    heuristics = list(HEURISTICS)
    result: Dict[str, object] = {
        "program": name,
        "schemes": [make_scheme(s).name for s in schemes],
        "machines": [resolve_machine(m).name for m in machines],
        "heuristics": heuristics,
        "budget": budget,
        "regions": rows,
        "summary": gap_summary(rows, heuristics, skipped=skipped),
    }
    return result


def gap_summary(rows: Sequence[Dict[str, object]],
                heuristics: Sequence[str],
                skipped: int = 0) -> Dict[str, object]:
    """Fold region rows (one program's or a whole corpus') into the
    summary block: proven fractions, bound certification, per-heuristic
    gap statistics over the proven regions."""
    count = len(rows)
    proven_rows = [row for row in rows if row["status"] == "proven"]
    proven = len(proven_rows)
    unsound = sum(1 for row in rows if not row["sound"])
    lint_errors = sum(row["lint_errors"] for row in rows)
    improved = sum(1 for row in rows if row["improved"])
    nodes = sum(row["nodes"] for row in rows)

    per_heuristic: Dict[str, Dict[str, object]] = {}
    for heuristic in heuristics:
        gaps = [row["heights"][heuristic] - row["optimum"]
                for row in proven_rows]
        histogram: Dict[str, int] = {}
        for gap in gaps:
            key = str(gap)
            histogram[key] = histogram.get(key, 0) + 1
        optimal = sum(1 for gap in gaps if gap == 0)
        per_heuristic[heuristic] = {
            "optimal": optimal,
            "optimal_fraction": (round(optimal / proven, 4)
                                 if proven else 1.0),
            "mean_gap": (round(sum(gaps) / proven, 4) if proven else 0.0),
            "max_gap": max(gaps) if gaps else 0,
            "histogram": histogram,
        }

    return {
        "regions": count,
        "proven": proven,
        "proven_fraction": round(proven / count, 4) if count else 1.0,
        "budget_exceeded": count - proven,
        "improved": improved,
        "nodes": nodes,
        "unsound_bounds": unsound,
        "sound": unsound == 0,
        "lint_errors": lint_errors,
        "skipped": skipped,
        "heuristics": per_heuristic,
    }


def format_gap_summary(summary: Dict[str, object],
                       heuristics: Sequence[str],
                       indent: str = "  ") -> List[str]:
    """The summary block's human rendering (shared per-program/corpus)."""
    lines = [
        f"{indent}regions={summary['regions']} "
        f"proven={summary['proven']}/{summary['regions']} "
        f"({summary['proven_fraction'] * 100:.1f}%) "
        f"improved={summary['improved']} "
        f"bounds={'sound' if summary['sound'] else 'UNSOUND'} "
        f"lint errors={summary['lint_errors']}"
    ]
    head = (f"{indent}{'heuristic':<16} {'optimal':>14} "
            f"{'mean gap':>9} {'max gap':>8}")
    lines.append(head)
    proven = summary["proven"]
    for heuristic in heuristics:
        stats = summary["heuristics"][heuristic]
        share = (f"{stats['optimal']}/{proven} "
                 f"{stats['optimal_fraction'] * 100:.0f}%")
        lines.append(
            f"{indent}{heuristic:<16} {share:>14} "
            f"{stats['mean_gap']:>9.2f} {stats['max_gap']:>8}"
        )
    return lines


def format_gap(result: Dict[str, object]) -> str:
    """Human rendering of one :func:`gap_program` result."""
    lines: List[str] = []
    name = result.get("program")
    lines.append(f"gap: {name}" if name else "gap")
    heuristics = result["heuristics"]
    lines.extend(format_gap_summary(result["summary"], heuristics))
    head = (f"  {'region':<24} {'ops':>4} {'lb':>4} {'opt':>4} "
            + " ".join(f"{h[:10]:>10}" for h in heuristics)
            + "  status")
    lines.append(head)
    for row in result["regions"]:
        label = (f"{row['function']}/bb{row['root']} "
                 f"{row['scheme']}/{row['machine']}")
        optimum = row["optimum"] if row["optimum"] is not None else "-"
        flags = "" if row["sound"] else "  UNSOUND"
        if row["lint_errors"]:
            flags += f"  LINT:{row['lint_errors']}"
        lines.append(
            f"  {label:<24} {row['ops']:>4} {row['lower_bound']:>4} "
            f"{optimum:>4} "
            + " ".join(f"{row['heights'][h]:>10}" for h in heuristics)
            + f"  {row['status']}" + flags
        )
    return "\n".join(lines)
