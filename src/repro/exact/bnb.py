"""Branch-and-bound search for provably optimal region schedules.

The search minimizes *schedule height* (the quantity ``repro analyze``
compares against :class:`repro.analysis.bounds.RegionBounds`) over
exactly the legality constraints the list scheduler enforces: every op
issues once, no earlier than ``cycle(pred) + latency`` over the
placement edges of the CSR-packed DDG, within ``issue_width`` slots per
cycle and the optional memory/branch per-cycle caps.  Height-only
control edges are excluded — the list scheduler speculates through
them, so an "optimal" schedule must be allowed to as well.

**Search space.**  Cycle-by-cycle bundle enumeration: the search fixes
the complete MultiOp of cycle 1, then cycle 2, and so on.  Within one
cycle the candidate set is dynamic — a latency-0 edge lets a consumer
issue in the same cycle as its producer — but under default options
every placement edge points from a lower to a higher op index (tree
preorder; see :mod:`repro.schedule.ddg`), so enumerating candidates in
increasing index order visits every op a partial bundle can unlock.
Each candidate is branched on include/exclude, giving every subset of
every reachable ready set exactly once.

**Dominance rules** (each preserves at least one optimal completion):

* *Maximal bundles only.*  A closed bundle that excluded an op which is
  ready and still fits the bundle's free resources is pruned: moving
  that op from its later cycle into this one keeps every constraint
  satisfied (its predecessors are done, successor constraints are
  minimum-delay and only relax) and never lengthens the schedule — the
  classic exchange argument.
* *State dominance.*  After closing a cycle the search state is
  ``(placed set, next cycle, per-op release times)``.  For a given
  placed set, a previously seen state with an earlier next-cycle and
  pointwise ≤ effective release times can replay any completion of the
  current state at the same absolute cycles, so the current state is
  pruned.  States are memoized per placed-set bitmask with a Pareto
  list of ``(next cycle, clamped release tuple)`` frontiers.
* *Lower-bound pruning.*  Before expanding a state, a sound bound on
  the best completion is computed — the max of (a) per-op
  ``release + down − 1`` chains (``down[i]`` = the minimum cycles from
  op *i*'s issue to the end over placement edges) and (b)
  remaining-ops resource floors ``next_cycle − 1 + ceil(remaining /
  cap)`` per resource class.  States that cannot beat the incumbent
  are cut.

**Budget and determinism.**  Every bundle-extension step counts as one
node; exceeding the node budget aborts the search (the caller keeps
the heuristic incumbent and reports ``budget-exceeded``).  The search
touches only ints and fixed iteration orders — no hashing of floats,
no randomness, no wall clock — so equal inputs always visit the same
nodes in the same order and return identical results.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["BnBResult", "branch_and_bound"]


class BnBResult:
    """Outcome of one branch-and-bound run."""

    __slots__ = ("best", "length", "proven", "nodes", "pruned")

    def __init__(self, best: Optional[List[int]], length: int,
                 proven: bool, nodes: int, pruned: int):
        #: Per-op 1-based issue cycles of the best schedule found that
        #: strictly beats the incumbent, or None if none was found.
        self.best = best
        #: Height of the best known schedule (incumbent or improved).
        self.length = length
        #: True when the search space was exhausted within budget, so
        #: ``length`` is the true optimum.
        self.proven = proven
        self.nodes = nodes
        self.pruned = pruned

    def __repr__(self) -> str:
        tag = "proven" if self.proven else "budget-exceeded"
        return (f"<BnBResult len={self.length} {tag} "
                f"nodes={self.nodes} pruned={self.pruned}>")


class _BudgetExhausted(Exception):
    """Internal: the node budget ran out mid-search."""


def branch_and_bound(
    n: int,
    pred_ptr: List[int],
    succ_ptr: List[int],
    succ_dst: List[int],
    succ_lat: List[int],
    is_mem: List[bool],
    is_br: List[bool],
    issue_width: int,
    max_mem: Optional[int],
    max_br: Optional[int],
    incumbent: int,
    node_budget: int,
) -> BnBResult:
    """Search for a schedule strictly shorter than ``incumbent``.

    ``pred_ptr``/``succ_*`` are the DDG's finalized CSR placement
    arrays; every edge must point from a lower to a higher index (true
    for tree-preorder problems without materialized copy ops — the
    caller enforces that restriction).
    """
    if n == 0:
        return BnBResult(None, 0, True, 0, 0)

    # down[i]: minimum cycles from op i's issue to the last issue —
    # op i at cycle c forces height >= c + down[i] - 1.  Edges point
    # low -> high index, so reverse index order is reverse-topological.
    down = [1] * n
    for i in range(n - 1, -1, -1):
        longest = 1
        for e in range(succ_ptr[i], succ_ptr[i + 1]):
            chain = succ_lat[e] + down[succ_dst[e]]
            if chain > longest:
                longest = chain
        down[i] = longest

    release = [1] * n          # earliest issue cycle given placed preds
    waiting = [pred_ptr[i + 1] - pred_ptr[i] for i in range(n)]
    placed = [False] * n
    cycle_of = [0] * n
    banned = [False] * n       # excluded from the bundle being built
    remaining = n
    rem_mem = sum(1 for flag in is_mem if flag)
    rem_br = sum(1 for flag in is_br if flag)

    state = {
        "mask": 0,
        "nodes": 0,
        "pruned": 0,
        "best_length": incumbent,
        "best_cycles": None,
    }
    #: mask -> Pareto frontier of (next_cycle, clamped release tuple).
    seen: Dict[int, List[Tuple[int, Tuple[int, ...]]]] = {}

    def lower_bound(t_next: int) -> int:
        rem = remaining
        bound = t_next - 1 + -(-rem // issue_width)
        if max_mem is not None and rem_mem:
            floor = t_next - 1 + -(-rem_mem // max_mem)
            if floor > bound:
                bound = floor
        if max_br is not None and rem_br:
            floor = t_next - 1 + -(-rem_br // max_br)
            if floor > bound:
                bound = floor
        for i in range(n):
            if placed[i]:
                continue
            start = release[i]
            if start < t_next:
                start = t_next
            chain = start + down[i] - 1
            if chain > bound:
                bound = chain
        return bound

    def dominated(t_next: int) -> bool:
        key = tuple(
            release[i] if release[i] > t_next else t_next
            for i in range(n) if not placed[i]
        )
        frontier = seen.get(state["mask"])
        if frontier is None:
            seen[state["mask"]] = [(t_next, key)]
            return False
        for t_seen, key_seen in frontier:
            if t_seen <= t_next and all(
                a <= b for a, b in zip(key_seen, key)
            ):
                return True
        frontier[:] = [
            (t_seen, key_seen) for t_seen, key_seen in frontier
            if not (t_next <= t_seen and all(
                a <= b for a, b in zip(key, key_seen)
            ))
        ]
        frontier.append((t_next, key))
        return False

    def close_cycle(t: int, excluded: List[int],
                    used: int, mem_used: int, br_used: int) -> None:
        # Maximality: an excluded op is still ready (bans never remove
        # predecessors) — if it also still fits the bundle's free
        # resources, a strict superset bundle dominates this one.
        if used < issue_width:
            for i in excluded:
                if (max_mem is None or not is_mem[i]
                        or mem_used < max_mem) and (
                        max_br is None or not is_br[i]
                        or br_used < max_br):
                    state["pruned"] += 1
                    return
        if remaining == 0:
            # Complete schedule; the final op issued in this bundle, so
            # the height is t.  Strict improvement only.
            if t < state["best_length"]:
                state["best_length"] = t
                state["best_cycles"] = list(cycle_of)
            return
        # Next decision cycle: skip idle cycles up to the earliest
        # release among frontier ops (all preds placed).
        t_next = 0
        for i in range(n):
            if placed[i] or waiting[i]:
                continue
            r = release[i]
            if t_next == 0 or r < t_next:
                t_next = r
        if t_next <= t:
            t_next = t + 1
        if lower_bound(t_next) >= state["best_length"]:
            state["pruned"] += 1
            return
        if dominated(t_next):
            state["pruned"] += 1
            return
        extend(t_next, 0, [], 0, 0, 0)

    def extend(t: int, start: int, excluded: List[int],
               used: int, mem_used: int, br_used: int) -> None:
        nonlocal remaining, rem_mem, rem_br
        state["nodes"] += 1
        if state["nodes"] > node_budget:
            raise _BudgetExhausted
        i = start
        while i < n:
            if (not placed[i] and not banned[i] and waiting[i] == 0
                    and release[i] <= t and used < issue_width
                    and (max_mem is None or not is_mem[i]
                         or mem_used < max_mem)
                    and (max_br is None or not is_br[i]
                         or br_used < max_br)):
                break
            i += 1
        if i == n:
            close_cycle(t, excluded, used, mem_used, br_used)
            return

        # Include op i at cycle t.
        placed[i] = True
        state["mask"] |= 1 << i
        cycle_of[i] = t
        remaining -= 1
        if is_mem[i]:
            rem_mem -= 1
        if is_br[i]:
            rem_br -= 1
        saved: List[Tuple[int, int]] = []
        for e in range(succ_ptr[i], succ_ptr[i + 1]):
            dst = succ_dst[e]
            waiting[dst] -= 1
            after = t + succ_lat[e]
            if after > release[dst]:
                saved.append((dst, release[dst]))
                release[dst] = after
        extend(t, i + 1, excluded,
               used + 1,
               mem_used + (1 if is_mem[i] else 0),
               br_used + (1 if is_br[i] else 0))
        for dst, old in saved:
            release[dst] = old
        for e in range(succ_ptr[i], succ_ptr[i + 1]):
            waiting[succ_dst[e]] += 1
        if is_br[i]:
            rem_br += 1
        if is_mem[i]:
            rem_mem += 1
        remaining += 1
        state["mask"] &= ~(1 << i)
        cycle_of[i] = 0
        placed[i] = False

        # Exclude op i from this cycle's bundle.
        banned[i] = True
        excluded.append(i)
        extend(t, i + 1, excluded, used, mem_used, br_used)
        excluded.pop()
        banned[i] = False

    proven = True
    try:
        if lower_bound(1) < incumbent:
            extend(1, 0, [], 0, 0, 0)
    except _BudgetExhausted:
        proven = False
    except RecursionError:
        # Pathologically deep regions (thousands of ops): treat like an
        # exhausted budget rather than crashing the pipeline.
        proven = False

    return BnBResult(
        best=state["best_cycles"],
        length=state["best_length"],
        proven=proven,
        nodes=state["nodes"],
        pruned=state["pruned"],
    )
