"""The exact scheduling backend: heuristic incumbent + branch-and-bound.

``exact_schedule_problem`` is the single entry every caller shares — the
direct pipeline (:func:`repro.schedule.scheduler.schedule_region` with
``backend="exact"``), the region memo's tier-1 shared path, and the
``repro gap`` driver.  The contract:

1. every heuristic in :data:`repro.schedule.priorities.HEURISTICS` is
   list-scheduled on the prepared problem (placement state is reset
   between runs, exactly like the memo's tier-1 reuse), and the best
   height becomes the branch-and-bound incumbent;
2. if the DDG lower bound (:func:`repro.analysis.bounds.bounds_from_ddg`
   — the same admissible bound ``repro analyze`` reports) already meets
   the incumbent, the incumbent is optimal and the search is skipped;
3. otherwise :func:`repro.exact.bnb.branch_and_bound` runs under the
   options' node budget;
4. the returned :class:`~repro.schedule.schedule.RegionSchedule` is the
   improved schedule when the search found one, else the best
   heuristic's schedule re-run verbatim (so a ``budget-exceeded``
   result is bit-identical to the heuristic backend's output — same
   bundles, same slots, same exit cycles).

Improved schedules are materialized through the same post-passes as the
list scheduler (:func:`_record_exits` / :func:`_mark_speculation`), so
downstream consumers — the ``sched.*`` lint certifier, the VLIW
simulator, ``dot --schedule`` — see a structurally identical object.

Restrictions: ``dominator_parallelism`` rewires consumers mid-placement
and ``schedule_copies`` appends ops whose edges break the low-to-high
index invariant the bundle enumeration relies on; both raise.
Hyperblocks schedule through a different pipeline entirely.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.liveness import LivenessInfo
from repro.machine.model import MachineModel
from repro.obs.metrics import NULL_METRICS, current_metrics
from repro.regions.region import Region
from repro.schedule.ddg import DDG
from repro.schedule.list_scheduler import (
    _mark_speculation,
    _record_exits,
    list_schedule,
)
from repro.schedule.prep import ScheduleProblem
from repro.schedule.priorities import (
    HEURISTICS,
    all_priority_keys,
    priority_order,
)
from repro.schedule.schedule import RegionSchedule
from repro.schedule.scheduler import ScheduleOptions
from repro.exact.bnb import branch_and_bound

__all__ = ["ExactInfo", "exact_schedule_problem", "solve_region",
           "DEFAULT_NODE_BUDGET"]

#: The default branch-and-bound node budget (one bundle-extension step
#: per node), shared with :class:`repro.schedule.scheduler.ScheduleOptions`.
DEFAULT_NODE_BUDGET = ScheduleOptions().exact_budget

#: Statuses an exact result can carry.
PROVEN = "proven"
BUDGET_EXCEEDED = "budget-exceeded"


class ExactInfo:
    """Everything the gap report needs about one exact solve."""

    __slots__ = ("status", "length", "optimum", "lower_bound", "heights",
                 "incumbent", "incumbent_length", "improved", "nodes",
                 "pruned")

    def __init__(self, status: str, length: int, optimum: Optional[int],
                 lower_bound: int, heights: Dict[str, int],
                 incumbent: str, incumbent_length: int, improved: bool,
                 nodes: int, pruned: int):
        #: ``"proven"`` or ``"budget-exceeded"``.
        self.status = status
        #: Height of the returned schedule.
        self.length = length
        #: The proven optimum, or None when the budget ran out.
        self.optimum = optimum
        #: The admissible DDG lower bound the search pruned against.
        self.lower_bound = lower_bound
        #: Achieved height per heuristic (the incumbent candidates).
        self.heights = heights
        #: The heuristic that seeded the incumbent (ties break in
        #: HEURISTICS order) and its height.
        self.incumbent = incumbent
        self.incumbent_length = incumbent_length
        #: True when the search beat every heuristic.
        self.improved = improved
        self.nodes = nodes
        self.pruned = pruned

    @property
    def proven(self) -> bool:
        return self.status == PROVEN

    def __repr__(self) -> str:
        return (f"<ExactInfo {self.status} len={self.length} "
                f"lb={self.lower_bound} nodes={self.nodes}>")


def _reset_placement(problem: ScheduleProblem) -> None:
    """Undo list-schedule placement state (the memo's tier-1 reset)."""
    for sop in problem.sched_ops:
        sop.cycle = None
        sop.slot = None
        sop.merged_into = None
        sop.op.speculative = False


def _schedule_from_cycles(problem: ScheduleProblem, cycle_of: List[int],
                          copies) -> RegionSchedule:
    """Materialize a cycle assignment as a RegionSchedule.

    Ops are placed in (cycle, index) order, so slots within a bundle
    follow op index — deterministic, and legal under every ``sched.*``
    rule (slot order within a MultiOp carries no semantics; the
    simulator applies its stores-first rule itself).
    """
    schedule = RegionSchedule(problem.region)
    for index in sorted(range(len(cycle_of)),
                        key=lambda i: (cycle_of[i], i)):
        schedule.place(problem.sched_ops[index], cycle_of[index])
    _record_exits(problem, schedule)
    _mark_speculation(problem, schedule)
    schedule.copies = list(copies)
    return schedule


def exact_schedule_problem(
    problem: ScheduleProblem,
    ddg: DDG,
    keys: Optional[Dict[str, List[Tuple]]],
    machine: MachineModel,
    options: ScheduleOptions,
    copies,
) -> Tuple[RegionSchedule, ExactInfo]:
    """Solve one prepared problem exactly; returns (schedule, info).

    ``keys`` is the ``all_priority_keys`` dict when the caller already
    has one (memo tier 1, engine key caches); None computes it here.
    The problem must be placement-clean on entry; on return it holds
    the returned schedule's placement (like any pipeline run).
    """
    from repro.analysis.bounds import bounds_from_ddg

    ddg.finalize()
    if keys is None:
        keys = all_priority_keys(problem, ddg)

    heights: Dict[str, int] = {}
    best_heuristic = HEURISTICS[0]
    for heuristic in HEURISTICS:
        order = priority_order(problem, ddg, heuristic,
                               keys=keys.get(heuristic))
        schedule = list_schedule(problem, ddg, order, machine,
                                 copies=copies,
                                 max_cycles=options.max_cycles)
        heights[heuristic] = schedule.length
        if schedule.length < heights[best_heuristic]:
            best_heuristic = heuristic
        _reset_placement(problem)
    incumbent_length = heights[best_heuristic]

    bounds = bounds_from_ddg(problem, ddg, machine)
    lower_bound = bounds.lower_bound

    if incumbent_length <= lower_bound:
        # The heuristic already meets an admissible bound: optimal.
        from repro.exact.bnb import BnBResult

        result = BnBResult(None, incumbent_length, True, 0, 0)
    else:
        n = len(problem.sched_ops)
        sched_ops = problem.sched_ops
        result = branch_and_bound(
            n,
            ddg.pred_ptr,
            ddg.succ_ptr,
            ddg.succ_dst,
            ddg.succ_lat,
            [sop.op.is_memory for sop in sched_ops],
            [sop.op.is_branch for sop in sched_ops],
            machine.issue_width,
            machine.max_memory_per_cycle,
            machine.max_branches_per_cycle,
            incumbent=incumbent_length,
            node_budget=options.exact_budget,
        )

    if result.best is not None:
        schedule = _schedule_from_cycles(problem, result.best, copies)
    else:
        # No improvement (or none found in budget): the final schedule
        # is the best heuristic's, re-run so bundles and slots are
        # bit-identical to the heuristic backend's output.
        order = priority_order(problem, ddg, best_heuristic,
                               keys=keys.get(best_heuristic))
        schedule = list_schedule(problem, ddg, order, machine,
                                 copies=copies,
                                 max_cycles=options.max_cycles)

    status = PROVEN if result.proven else BUDGET_EXCEEDED
    info = ExactInfo(
        status=status,
        length=schedule.length,
        optimum=result.length if result.proven else None,
        lower_bound=lower_bound,
        heights=heights,
        incumbent=best_heuristic,
        incumbent_length=incumbent_length,
        improved=result.best is not None,
        nodes=result.nodes,
        pruned=result.pruned,
    )
    metrics = current_metrics()
    if metrics is not NULL_METRICS:
        metrics.inc("exact.regions")
        metrics.inc("exact.nodes", info.nodes)
        metrics.inc("exact.pruned", info.pruned)
        if info.proven:
            metrics.inc("exact.proven")
        else:
            metrics.inc("exact.budget_exceeded")
        if info.improved:
            metrics.inc("exact.improved")
    return schedule, info


def solve_region(
    region: Region,
    machine: MachineModel,
    liveness: Optional[LivenessInfo] = None,
    budget: int = DEFAULT_NODE_BUDGET,
) -> Tuple[RegionSchedule, ExactInfo, ScheduleProblem, DDG]:
    """Run the full fresh pipeline and solve one region exactly.

    The convenience entry the gap driver and tests use: prepares,
    renames, builds the DDG (default options — no dominator
    parallelism, no materialized copies), then solves.  Returns the
    problem and DDG too so callers can certify the schedule with the
    ``sched.*`` lint rules without re-running the pipeline.
    """
    from repro.ir.analysis_cache import liveness_of
    from repro.regions.hyperblock import Hyperblock
    from repro.schedule.ddg import build_ddg
    from repro.schedule.prep import prepare_region
    from repro.schedule.renaming import rename_region

    if isinstance(region, Hyperblock):
        raise ValueError(
            "the exact backend covers tree-pipeline regions only; "
            "hyperblocks schedule through a different pipeline"
        )
    if liveness is None:
        liveness = liveness_of(region.root.cfg)
    problem = prepare_region(region, machine, liveness)
    copies = rename_region(problem, liveness)
    ddg = build_ddg(problem, machine, liveness=liveness, copies=copies)
    ddg.finalize()
    options = ScheduleOptions(backend="exact", exact_budget=budget)
    schedule, info = exact_schedule_problem(problem, ddg, None, machine,
                                            options, copies)
    return schedule, info, problem, ddg
