"""Exact region scheduling: branch-and-bound optima and the gap report.

The second scheduling backend next to the list scheduler
(:mod:`repro.schedule.list_scheduler`):

* :mod:`repro.exact.bnb` — the branch-and-bound search itself
  (cycle-by-cycle maximal-bundle enumeration, dominance memoization,
  admissible lower-bound pruning, deterministic node budget);
* :mod:`repro.exact.backend` — the pipeline entry: heuristic incumbent
  seeding, the solve, and RegionSchedule materialization
  (``ScheduleOptions(backend="exact")`` routes here);
* :mod:`repro.exact.gap` — the ``repro gap`` / ``repro.api.gap_report``
  driver scoring every heuristic's height against the proven optimum
  per region and machine-certifying the ``repro.analysis.bounds``
  lower bounds along the way.
"""

from repro.exact.backend import (
    DEFAULT_NODE_BUDGET,
    ExactInfo,
    exact_schedule_problem,
    solve_region,
)
from repro.exact.bnb import BnBResult, branch_and_bound
from repro.exact.gap import format_gap, gap_program, gap_summary

__all__ = [
    "DEFAULT_NODE_BUDGET",
    "ExactInfo",
    "exact_schedule_problem",
    "solve_region",
    "BnBResult",
    "branch_and_bound",
    "gap_program",
    "gap_summary",
    "format_gap",
]
