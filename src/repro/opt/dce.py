"""Liveness-based dead code elimination.

A pure op (no side effects, not a terminator) is dead when none of its
destinations is read later in its own block nor live out of it.  Global
liveness is recomputed per sweep; the fixpoint driver iterates until no
op dies (removing one op can kill its producers).
"""

from __future__ import annotations

from typing import Set

from repro.ir.cfg import CFG
from repro.ir.liveness import compute_liveness
from repro.ir.operation import Operation
from repro.ir.registers import Register
from repro.ir.types import Opcode
from repro.interp.ops import PURE_OPCODES

#: Opcodes safe to delete when their results are unused.
_REMOVABLE = PURE_OPCODES | {Opcode.LD, Opcode.CMPP, Opcode.PAND,
                             Opcode.PANDCN, Opcode.POR, Opcode.NINSET,
                             Opcode.PBR, Opcode.NOP}


def eliminate_dead_code(cfg: CFG) -> int:
    """One DCE sweep; returns the number of ops removed."""
    liveness = compute_liveness(cfg)
    removed = 0
    for block in cfg.blocks():
        live: Set[Register] = set(liveness.live_out(block))
        kept = []
        # Walk backwards so uses ahead of a def are seen first.
        for op in reversed(block.ops):
            defines = op.defined_registers()
            is_dead = (
                op.opcode in _REMOVABLE
                and not op.is_terminator
                and op.guard is None
                and (op.opcode is Opcode.NOP
                     or (defines
                         and not any(r in live for r in defines)))
            )
            if is_dead:
                removed += 1
                continue
            kept.append(op)
            for register in defines:
                live.discard(register)
            for register in op.used_registers():
                live.add(register)
        kept.reverse()
        block.ops = kept
    if removed:
        cfg.bump_version()  # op lists replaced wholesale
    return removed
