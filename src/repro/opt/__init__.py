"""Classic scalar optimizations.

Section 2 of the paper: "The programs had classic optimizations and a
profiling run using training inputs applied to them" before region
formation.  This package provides that preconditioning for minic-compiled
code (the synthetic workloads are generated directly in optimized shape):

* constant folding + algebraic simplification   (``repro.opt.fold``)
* block-local copy/constant propagation and CSE (``repro.opt.local``)
* liveness-based dead code elimination           (``repro.opt.dce``)
* branch simplification + unreachable-block removal + straightening
  (``repro.opt.cfgopt``)

all driven to a fixed point by :func:`optimize_function` /
:func:`optimize_program`.  Every pass preserves semantics — verified by
interpreting the whole minic workload library before and after
(``tests/test_opt.py``).
"""

from repro.opt.pipeline import OptStats, optimize_function, optimize_program

__all__ = ["OptStats", "optimize_function", "optimize_program"]
