"""Constant folding and algebraic simplification.

Rewrites, in place:

* pure ops with all-constant operands → ``MOV #result`` (evaluated with
  the interpreter's own scalar semantics, so folding can never disagree
  with execution — division by zero is left unfolded to preserve the
  trap);
* algebraic identities: ``x+0``, ``0+x``, ``x-0``, ``x*1``, ``1*x``,
  ``x*0``, ``x|0``, ``x^0``, ``x&0``, ``x<<0``, ``x>>0``, ``x/1`` →
  copies or constants;
* ``CMPP`` over constants → constant predicate moves (enabling branch
  simplification downstream).
"""

from __future__ import annotations

from typing import Optional

from repro.util.errors import InterpreterError
from repro.ir.cfg import CFG
from repro.ir.operation import Operation
from repro.ir.types import Immediate, Opcode
from repro.interp.ops import PURE_OPCODES, evaluate

_COMMUTE_ZERO = {Opcode.ADD, Opcode.OR, Opcode.XOR}
_RIGHT_ZERO = {Opcode.SUB, Opcode.SHL, Opcode.SHR}


def _to_mov(op: Operation, value) -> None:
    op.opcode = Opcode.MOV
    op.srcs = [value if isinstance(value, Immediate) else Immediate(value)]
    op.cond = None


def _to_copy(op: Operation, source) -> None:
    op.opcode = Opcode.MOV
    op.srcs = [source]
    op.cond = None


def _fold_pure(op: Operation) -> bool:
    if op.opcode in (Opcode.MOV, Opcode.COPY):
        return False
    values = [s.value for s in op.srcs if isinstance(s, Immediate)]
    if len(values) != len(op.srcs):
        return False
    try:
        result = evaluate(op.opcode, values)
    except InterpreterError:
        return False  # e.g. constant division by zero: keep the trap
    _to_mov(op, result)
    return True


def _simplify_algebraic(op: Operation) -> bool:
    if len(op.srcs) != 2:
        return False
    left, right = op.srcs
    left_const = left.value if isinstance(left, Immediate) else None
    right_const = right.value if isinstance(right, Immediate) else None

    if op.opcode in _COMMUTE_ZERO:
        if right_const == 0:
            _to_copy(op, left)
            return True
        if left_const == 0:
            _to_copy(op, right)
            return True
    if op.opcode in _RIGHT_ZERO and right_const == 0:
        _to_copy(op, left)
        return True
    if op.opcode is Opcode.MUL:
        if right_const == 1:
            _to_copy(op, left)
            return True
        if left_const == 1:
            _to_copy(op, right)
            return True
        if right_const == 0 or left_const == 0:
            _to_mov(op, 0)
            return True
    if op.opcode is Opcode.AND and (right_const == 0 or left_const == 0):
        _to_mov(op, 0)
        return True
    if op.opcode is Opcode.DIV and right_const == 1:
        _to_copy(op, left)
        return True
    # Same-register identities: x-x = x^x = 0; x&x = x|x = x.
    if (not isinstance(left, Immediate) and left == right):
        if op.opcode in (Opcode.SUB, Opcode.XOR):
            _to_mov(op, 0)
            return True
        if op.opcode in (Opcode.AND, Opcode.OR):
            _to_copy(op, left)
            return True
    return False


def _fold_cmpp(op: Operation) -> bool:
    if op.guard is not None:
        return False
    values = [s.value for s in op.srcs if isinstance(s, Immediate)]
    if len(values) != 2:
        return False
    result = bool(op.cond.evaluate(values[0], values[1]))
    # A two-destination CMPP folds into two predicate moves; to stay one
    # op we only fold the single-destination form (the frontend's usual
    # output) — the second dest case is rare and left for DCE to shrink.
    if len(op.dests) != 1:
        return False
    _to_mov(op, int(result))
    op.cond = None
    return True


def fold_constants(cfg: CFG) -> int:
    """One folding sweep; returns the number of ops rewritten."""
    changed = 0
    for block in cfg.blocks():
        for op in block.ops:
            if op.opcode is Opcode.CMPP:
                if _fold_cmpp(op):
                    changed += 1
                continue
            if op.opcode not in PURE_OPCODES:
                continue
            if _fold_pure(op) or _simplify_algebraic(op):
                changed += 1
    if changed:
        cfg.bump_version()  # in-place op rewrites change use/def sets
    return changed
