"""Block-local copy/constant propagation and common-subexpression
elimination.

Classic local value tracking: within one block,

* ``MOV r <- #c`` makes later reads of ``r`` read ``#c`` directly;
* ``MOV r <- s`` makes later reads of ``r`` read ``s`` (until either is
  redefined);
* a pure op recomputing an available expression (same opcode/cond and
  post-propagation operands, no intervening redefinition) is replaced by a
  ``MOV`` from the first computation's destination — loads participate
  until a store or call kills memory-derived values.

The walk is a single forward pass per block; the fixpoint driver in
``pipeline.py`` reruns it as folding/DCE expose more opportunities.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.cfg import CFG
from repro.ir.operation import Operation
from repro.ir.registers import Register
from repro.ir.types import Immediate, Opcode
from repro.interp.ops import PURE_OPCODES


def _propagate_operands(op: Operation, values: Dict[Register, object]) -> int:
    changed = 0
    for index, src in enumerate(op.srcs):
        if isinstance(src, Register) and src in values:
            op.srcs[index] = values[src]
            changed += 1
    # Guards must stay registers (predicated execution reads a register),
    # so only register-to-register copies propagate into them.
    if op.guard is not None:
        replacement = values.get(op.guard)
        if isinstance(replacement, Register):
            op.guard = replacement
            changed += 1
    return changed


def _kill(defined: Register, values: Dict[Register, object]) -> None:
    values.pop(defined, None)
    for key in [k for k, v in values.items() if v == defined]:
        del values[key]


def _expression_key(op: Operation) -> Optional[Tuple]:
    if op.opcode is Opcode.LD:
        return (op.opcode, tuple(_freeze(s) for s in op.srcs))
    if op.opcode in PURE_OPCODES and op.opcode not in (Opcode.MOV, Opcode.COPY):
        return (op.opcode, op.cond, tuple(_freeze(s) for s in op.srcs))
    if op.opcode is Opcode.CMPP and len(op.dests) == 1 and op.guard is None:
        return (op.opcode, op.cond, tuple(_freeze(s) for s in op.srcs))
    return None


def _freeze(operand):
    if isinstance(operand, Immediate):
        return ("imm", operand.value)
    return ("reg", operand)


def propagate_block_local(cfg: CFG) -> int:
    """One local propagation + CSE sweep; returns rewrites performed."""
    changed = 0
    for block in cfg.blocks():
        values: Dict[Register, object] = {}
        available: Dict[Tuple, Register] = {}
        for op in block.ops:
            if op.guard is None:
                changed += _propagate_operands(op, values)

            if op.opcode is Opcode.ST or op.opcode is Opcode.CALL:
                # Memory changed: loads are no longer available.
                available = {
                    key: reg for key, reg in available.items()
                    if key[0] is not Opcode.LD
                }

            key = _expression_key(op) if op.guard is None else None
            if key is not None:
                existing = available.get(key)
                if existing is not None and len(op.dests) == 1:
                    op.opcode = Opcode.MOV
                    op.srcs = [existing]
                    op.cond = None
                    changed += 1
                    key = None  # the MOV below records the copy instead

            for defined in op.defined_registers():
                _kill(defined, values)
                available = {
                    k: r for k, r in available.items()
                    if r != defined and ("reg", defined) not in k[-1]
                }

            if (op.opcode in (Opcode.MOV, Opcode.COPY) and op.guard is None
                    and len(op.dests) == 1):
                source = op.srcs[0]
                if isinstance(source, (Immediate, Register)) and \
                        source != op.dest:
                    values[op.dest] = source
            elif key is not None and len(op.dests) == 1:
                available[key] = op.dest
    if changed:
        cfg.bump_version()  # in-place op rewrites change use/def sets
    return changed
