"""The classic-optimization driver: all passes to a fixed point."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.cfg import CFG
from repro.ir.function import Function, Program
from repro.ir.verify import verify_function
from repro.opt.cfgopt import remove_unreachable, simplify_branches, straighten
from repro.opt.dce import eliminate_dead_code
from repro.opt.fold import fold_constants
from repro.opt.local import propagate_block_local


@dataclass
class OptStats:
    """What the optimizer did, for reporting and tests."""

    folded: int = 0
    propagated: int = 0
    branches_simplified: int = 0
    blocks_removed: int = 0
    blocks_merged: int = 0
    ops_removed: int = 0
    iterations: int = 0
    ops_before: int = 0
    ops_after: int = 0

    def merge(self, other: "OptStats") -> None:
        self.folded += other.folded
        self.propagated += other.propagated
        self.branches_simplified += other.branches_simplified
        self.blocks_removed += other.blocks_removed
        self.blocks_merged += other.blocks_merged
        self.ops_removed += other.ops_removed
        self.iterations = max(self.iterations, other.iterations)
        self.ops_before += other.ops_before
        self.ops_after += other.ops_after

    @property
    def shrink_factor(self) -> float:
        return self.ops_after / self.ops_before if self.ops_before else 1.0

    def __str__(self) -> str:
        return (
            f"ops {self.ops_before} -> {self.ops_after} "
            f"(folded {self.folded}, propagated {self.propagated}, "
            f"dce {self.ops_removed}, branches {self.branches_simplified}, "
            f"blocks -{self.blocks_removed}/-{self.blocks_merged} merged)"
        )


def _one_round(cfg: CFG, stats: OptStats) -> int:
    changed = 0
    folded = fold_constants(cfg)
    stats.folded += folded
    changed += folded

    propagated = propagate_block_local(cfg)
    stats.propagated += propagated
    changed += propagated

    folded = fold_constants(cfg)
    stats.folded += folded
    changed += folded

    simplified = simplify_branches(cfg)
    stats.branches_simplified += simplified
    changed += simplified

    removed_blocks = remove_unreachable(cfg)
    stats.blocks_removed += removed_blocks
    changed += removed_blocks

    merged = straighten(cfg)
    stats.blocks_merged += merged
    changed += merged

    dead = eliminate_dead_code(cfg)
    stats.ops_removed += dead
    changed += dead
    return changed


def optimize_function(function: Function, max_rounds: int = 10) -> OptStats:
    """Run the classic pipeline on one function until nothing changes."""
    stats = OptStats(ops_before=function.cfg.total_ops)
    for round_index in range(max_rounds):
        stats.iterations = round_index + 1
        if _one_round(function.cfg, stats) == 0:
            break
    stats.ops_after = function.cfg.total_ops
    verify_function(function)
    return stats


def optimize_program(program: Program, max_rounds: int = 10) -> OptStats:
    """Optimize every function; returns merged statistics."""
    total = OptStats()
    for function in program.functions():
        total.merge(optimize_function(function, max_rounds=max_rounds))
    return total
