"""Control-flow optimizations: branch simplification, unreachable-code
removal, and straightening.

``simplify_branches`` retires conditional branches whose predicate became
a known constant (after folding/propagation — minic's ``while (1)`` is the
common case) and switches with constant selectors, deleting the dead
edges.  ``remove_unreachable`` then garbage-collects blocks no longer
reachable from the entry, and ``straighten`` merges trivial fallthrough
chains (single successor into single predecessor), shrinking region
bookkeeping downstream.
"""

from __future__ import annotations

from typing import List

from repro.ir.cfg import CFG, BasicBlock
from repro.ir.types import EdgeKind, Immediate, Opcode


def simplify_branches(cfg: CFG) -> int:
    """Resolve constant-predicate branches; returns branches removed."""
    changed = 0
    for block in cfg.blocks():
        term = block.terminator
        if term is None:
            continue
        if term.opcode in (Opcode.BRCT, Opcode.BRCF):
            predicate = term.srcs[0]
            if not isinstance(predicate, Immediate):
                continue
            taken = bool(predicate.value)
            if term.opcode is Opcode.BRCF:
                taken = not taken
            taken_edge = block.taken_edge
            fall_edge = block.fallthrough_edge
            if taken:
                term.opcode = Opcode.BRU
                term.srcs = []
                cfg.remove_edge(fall_edge)
            else:
                block.ops.pop()  # drop the branch; pure fallthrough remains
                cfg.remove_edge(taken_edge)
            changed += 1
        elif term.opcode is Opcode.SWITCH:
            selector = term.srcs[0]
            if not isinstance(selector, Immediate):
                continue
            chosen = None
            for edge in block.case_edges():
                if edge.case_value == selector.value:
                    chosen = edge
                    break
            if chosen is None:
                chosen = block.out_edge(EdgeKind.DEFAULT)
            for edge in list(block.out_edges):
                if edge is not chosen:
                    cfg.remove_edge(edge)
            chosen.kind = EdgeKind.TAKEN
            chosen.case_value = None
            term.opcode = Opcode.BRU
            term.srcs = []
            term.target = chosen.dst.bid
            changed += 1
    return changed


def remove_unreachable(cfg: CFG) -> int:
    """Delete blocks unreachable from the entry; returns blocks removed."""
    reachable = set()
    stack = [cfg.entry] if cfg.entry is not None else []
    while stack:
        block = stack.pop()
        if block.bid in reachable:
            continue
        reachable.add(block.bid)
        stack.extend(block.successors)

    doomed = [b for b in cfg.blocks() if b.bid not in reachable]
    for block in doomed:
        for edge in list(block.out_edges):
            cfg.remove_edge(edge)
        for edge in list(block.in_edges):
            cfg.remove_edge(edge)  # only from other unreachable blocks
        cfg.remove_block(block)
    return len(doomed)


def _mergeable(block: BasicBlock) -> bool:
    term = block.terminator
    if term is None:
        return block.fallthrough_edge is not None
    return term.opcode is Opcode.BRU


def straighten(cfg: CFG) -> int:
    """Merge single-successor/single-predecessor chains; returns merges."""
    merged = 0
    again = True
    while again:
        again = False
        for block in cfg.blocks():
            if not _mergeable(block) or len(block.out_edges) != 1:
                continue
            succ = block.out_edges[0].dst
            if succ is block or succ is cfg.entry:
                continue
            if len(succ.in_edges) != 1:
                continue
            # Merge succ into block.
            if block.terminator is not None:
                block.ops.pop()  # the BRU
            cfg.remove_edge(block.out_edges[0])
            block.ops.extend(succ.ops)
            for edge in list(succ.out_edges):
                cfg.add_edge(block, edge.dst, edge.kind,
                             case_value=edge.case_value, weight=edge.weight)
                cfg.remove_edge(edge)
            cfg.remove_block(succ)
            merged += 1
            again = True
            break
    return merged
