"""The machine configurations used by the paper's experiments.

Section 3: "Two machine models were used for this study: a 4-issue
processor (4U) and a 8-issue processor (8U), both with universal units";
the speedup baseline is "basic block scheduling on a single-issue,
pipelined universal unit machine".
"""

from __future__ import annotations

from repro.machine.model import MachineModel


def universal_machine(issue_width: int, name: str = "", use_btr: bool = True) -> MachineModel:
    """A universal-unit machine of arbitrary width with paper latencies."""
    return MachineModel(
        name=name or f"{issue_width}U",
        issue_width=issue_width,
        use_btr=use_btr,
    )


#: The single-issue baseline machine (speedup denominator).
SCALAR_1U = universal_machine(1, name="1U")

#: The paper's 4-issue machine model.
VLIW_4U = universal_machine(4, name="4U")

#: The paper's 8-issue machine model.
VLIW_8U = universal_machine(8, name="8U")

#: The two evaluation machines, keyed as the figures label them.
PAPER_MACHINES = {"4U": VLIW_4U, "8U": VLIW_8U}
