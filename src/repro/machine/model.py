"""The statically-scheduled VLIW machine model.

The paper's machines (Section 3) are:

* statically scheduled VLIW, *universal* fully-pipelined function units —
  so the only per-cycle resource is the issue width;
* unit latency for every op except load (2 cycles), floating-point multiply
  (3 cycles), and floating-point divide (9 cycles);
* memory ops serialized (no aliasing information), but Playdoh semantics
  allow a store and a dependent memory op in the same cycle;
* Playdoh-style branch architecture: branches read branch-target registers
  prepared by ``PBR`` ops, branches may be predicated, and several branches
  may issue in one MultiOp.

``MachineModel`` captures the parameters the scheduler and estimator need.
Custom latency tables and non-universal restrictions (a cap on memory ops or
branches per cycle) are supported for ablation studies; the paper presets in
``repro.machine.presets`` leave them unlimited.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.ir.operation import Operation
from repro.ir.types import Opcode, RegClass

#: Latencies from Section 3 of the paper; ops not listed take 1 cycle.
DEFAULT_LATENCIES: Dict[Opcode, int] = {
    Opcode.LD: 2,
    Opcode.FMUL: 3,
    Opcode.FDIV: 9,
}


@dataclass(frozen=True)
class MachineModel:
    """A wide-issue, universal-unit VLIW target.

    Attributes:
        name: Display name ("4U", "8U", ...).
        issue_width: Ops per MultiOp (cycle).
        latencies: Opcode → cycles override map; unlisted opcodes take
            ``default_latency``.
        default_latency: Latency for opcodes not in ``latencies``.
        use_btr: When True the scheduler materializes ``PBR`` ops one per
            branch, and branches depend on them — the Playdoh branch model
            used throughout the paper's examples.
        max_memory_per_cycle: Optional cap on LD/ST ops per cycle
            (None = universal units, the paper's configuration).
        max_branches_per_cycle: Optional cap on branch ops per cycle
            (None = unlimited; the paper notes multiple predicated branches
            per cycle "providing the architecture allows it").
        registers_per_class: Optional architected register-file sizes per
            :class:`~repro.ir.types.RegClass`.  The paper's machines have
            effectively unbounded files (renaming mints fresh names
            freely), so the presets leave this ``None``; setting it arms
            the ``sched.pressure-exceeds-class`` lint rule for ablation
            studies of constrained register files.  Classes absent from
            the dict are unbounded.
    """

    name: str
    issue_width: int
    latencies: Dict[Opcode, int] = field(default_factory=lambda: dict(DEFAULT_LATENCIES))
    default_latency: int = 1
    use_btr: bool = True
    max_memory_per_cycle: Optional[int] = None
    max_branches_per_cycle: Optional[int] = None
    registers_per_class: Optional[Dict[RegClass, int]] = None

    def latency(self, op: Operation) -> int:
        """Cycles from issue until the op's results are readable.

        Reads the full per-opcode table memoized at construction: the DDG
        builder calls this for every edge of every region, so the miss
        branch of a ``dict.get`` default is worth eliminating.
        """
        return self._latency_table[op.opcode]

    def latency_of(self, opcode: Opcode) -> int:
        return self._latency_table[opcode]

    def __post_init__(self):
        if self.issue_width < 1:
            raise ValueError(f"issue width must be >= 1, got {self.issue_width}")
        # Memoized full latency table (every opcode resolved once).  The
        # dataclass is frozen, so install it via object.__setattr__; it is
        # derived state, deliberately not a dataclass field (it stays out
        # of __eq__/__repr__ and is rebuilt from the declared fields).
        table = {
            opcode: self.latencies.get(opcode, self.default_latency)
            for opcode in Opcode
        }
        object.__setattr__(self, "_latency_table", table)

    def __str__(self) -> str:
        return f"{self.name}({self.issue_width}-issue)"
