"""VLIW machine models (the paper's 4U / 8U Playdoh-style targets)."""

from repro.machine.model import MachineModel
from repro.machine.presets import (
    SCALAR_1U,
    VLIW_4U,
    VLIW_8U,
    universal_machine,
    PAPER_MACHINES,
)

__all__ = [
    "MachineModel",
    "SCALAR_1U",
    "VLIW_4U",
    "VLIW_8U",
    "universal_machine",
    "PAPER_MACHINES",
]
