"""Persistent artifact store, batched compile service, and the fleet.

The layers, bottom up (see DESIGN.md §10–§12):

* :mod:`repro.serve.store` — a content-addressed, disk-backed cache of
  grid-cell schedule results, keyed by SHA-256 of (canonical IR text,
  scheme spec, machine fingerprint, heuristic, schema version), with
  atomic writes, LRU size-bounded eviction, and corruption tolerance;
* :mod:`repro.serve.service` (+ :mod:`repro.serve.jobs`) — a
  :class:`CompileService` that deduplicates in-flight requests, checks
  the store first, coalesces misses into batches for the PR-1
  multiprocessing worker, retries crashed/timed-out dispatches with
  backoff, applies backpressure through a bounded queue, and shuts
  down gracefully.  Results are bit-identical to
  :func:`repro.api.evaluate_grid`;
* :mod:`repro.serve.router` + :mod:`repro.serve.fleet` — a
  :class:`CompileFleet` of N service+store shards, each exclusively
  owning a content-key slice, with an in-memory hot tier, in-flight
  dedup, warm-replica reads, and supervised shard restart;
* :mod:`repro.serve.wire` — framed, versioned JSON protocol with typed
  messages and structured error codes over ``unix://`` / ``tcp://``
  endpoints;
* :mod:`repro.serve.frontend` / :mod:`repro.serve.client` — the
  asyncio server multiplexing thousands of connections onto one fleet,
  and the synchronous :class:`Client` behind
  :func:`repro.api.connect`;
* :mod:`repro.serve.soak` — the many-client load harness behind
  ``repro soak`` and ``benchmarks/test_load_snapshot.py``;
* :mod:`repro.serve.events` — the size-rotated JSONL lifecycle event
  log, and :mod:`repro.serve.top` — the ``repro top`` ANSI dashboard
  over the ``STATS``/``HEALTH`` wire ops (see DESIGN.md §13).
"""

from repro.serve.jobs import (
    JobFailedError,
    JobHandle,
    JobRequest,
    ServeError,
    ServiceClosedError,
    ServiceSaturatedError,
    ShardDownError,
)
from repro.serve.service import CompileService, resolve_program_text
from repro.serve.store import (
    ArtifactStore,
    cell_key,
    machine_fingerprint,
    result_from_payload,
    result_to_payload,
    store_schema,
)
from repro.serve.router import KeyRouter, request_key
from repro.serve.fleet import CompileFleet
from repro.serve.wire import Endpoint, ErrorCode, parse_endpoint
from repro.serve.client import Client, ClientError, connect
from repro.serve.events import NULL_EVENTS, EventLog, read_events
from repro.serve.frontend import FleetFrontend, FrontendServer
from repro.serve.soak import SoakReport, run_soak
from repro.serve.top import render_top, run_top

__all__ = [
    "ArtifactStore",
    "Client",
    "ClientError",
    "CompileFleet",
    "CompileService",
    "Endpoint",
    "ErrorCode",
    "EventLog",
    "NULL_EVENTS",
    "FleetFrontend",
    "FrontendServer",
    "JobFailedError",
    "JobHandle",
    "JobRequest",
    "KeyRouter",
    "ServeError",
    "ServiceClosedError",
    "ServiceSaturatedError",
    "ShardDownError",
    "SoakReport",
    "cell_key",
    "connect",
    "machine_fingerprint",
    "parse_endpoint",
    "read_events",
    "render_top",
    "request_key",
    "resolve_program_text",
    "result_from_payload",
    "result_to_payload",
    "run_soak",
    "run_top",
    "store_schema",
]
