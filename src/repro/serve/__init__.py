"""Persistent artifact store + batched compilation service.

Two layers (see DESIGN.md §10):

* :mod:`repro.serve.store` — a content-addressed, disk-backed cache of
  grid-cell schedule results, keyed by SHA-256 of (canonical IR text,
  scheme spec, machine fingerprint, heuristic, schema version), with
  atomic writes, LRU size-bounded eviction, and corruption tolerance;
* :mod:`repro.serve.service` (+ :mod:`repro.serve.jobs`) — a
  :class:`CompileService` that deduplicates in-flight requests, checks
  the store first, coalesces misses into batches for the PR-1
  multiprocessing worker, retries crashed/timed-out dispatches with
  backoff, applies backpressure through a bounded queue, and shuts
  down gracefully.  Results are bit-identical to
  :func:`repro.api.evaluate_grid`.

:mod:`repro.serve.wire` exposes the service over a JSON-over-Unix-
socket protocol (``repro serve --socket`` / ``repro client``).
"""

from repro.serve.jobs import (
    JobFailedError,
    JobHandle,
    JobRequest,
    ServeError,
    ServiceClosedError,
    ServiceSaturatedError,
)
from repro.serve.service import CompileService, resolve_program_text
from repro.serve.store import (
    ArtifactStore,
    cell_key,
    machine_fingerprint,
    result_from_payload,
    result_to_payload,
    store_schema,
)

__all__ = [
    "ArtifactStore",
    "CompileService",
    "JobFailedError",
    "JobHandle",
    "JobRequest",
    "ServeError",
    "ServiceClosedError",
    "ServiceSaturatedError",
    "cell_key",
    "machine_fingerprint",
    "resolve_program_text",
    "result_from_payload",
    "result_to_payload",
    "store_schema",
]
