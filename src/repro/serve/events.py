"""Append-only structured event log for fleet lifecycle events.

Metrics answer "how many"; traces answer "where did this request go";
the event log answers "what happened to the *fleet*": shard starts,
deaths, restarts, hot-tier evictions, request retries, saturation
rejections, protocol errors.  Each event is one JSON line —

``{"ts": <epoch seconds>, "event": "<dotted.name>", "pid": <int>, ...}``

— appended and flushed immediately so the log survives a crash of the
process it describes.

**Rotation** is size-based: when the live file would exceed
``max_bytes`` *before* a write, it is renamed to ``<path>.1`` (existing
backups shift to ``.2`` … ``.<backups>``, the oldest dropped) and a
fresh file is started.  Rotation happens on event boundaries, so every
file is intact JSONL.  :func:`read_events` reads backups oldest-first
followed by the live file, yielding the full retained history in
chronological order.

Thread-safe: the fleet emits from its dispatcher, supervisor, and
executor callback threads.  :data:`NULL_EVENTS` is the usual shared
no-op for callers that configured no log.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Callable, Dict, Iterator, List


class EventLog:
    """Size-rotated append-only JSONL event log."""

    def __init__(self, path: str, *, max_bytes: int = 4 * 1024 * 1024,
                 backups: int = 3,
                 clock: Callable[[], float] = time.time):
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.path = path
        self.max_bytes = max_bytes
        self.backups = max(0, backups)
        self._clock = clock
        self._lock = threading.Lock()
        self._handle = None
        self._size = 0

    def emit(self, event: str, **fields) -> None:
        """Append one event record (never raises into the caller's
        control flow — a dying disk must not take the fleet with it)."""
        record: Dict[str, object] = {
            "ts": round(self._clock(), 6),
            "event": event,
            "pid": os.getpid(),
        }
        record.update(fields)
        try:
            line = json.dumps(record, sort_keys=True, default=str) + "\n"
        except (TypeError, ValueError):
            line = json.dumps(
                {"ts": record["ts"], "event": event, "pid": record["pid"],
                 "error": "unserializable fields"}) + "\n"
        data = line.encode("utf-8")
        with self._lock:
            try:
                self._ensure_open()
                if self._size + len(data) > self.max_bytes and self._size:
                    self._rotate()
                self._handle.write(line)
                self._handle.flush()
                self._size += len(data)
            except OSError:
                pass

    def _ensure_open(self) -> None:
        if self._handle is None:
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._handle = open(self.path, "a")
            self._size = os.path.getsize(self.path)

    def _rotate(self) -> None:
        self._handle.close()
        self._handle = None
        if self.backups > 0:
            oldest = f"{self.path}.{self.backups}"
            if os.path.exists(oldest):
                os.remove(oldest)
            for index in range(self.backups - 1, 0, -1):
                src = f"{self.path}.{index}"
                if os.path.exists(src):
                    os.replace(src, f"{self.path}.{index + 1}")
            os.replace(self.path, f"{self.path}.1")
        else:
            os.remove(self.path)
        self._handle = open(self.path, "a")
        self._size = 0

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __repr__(self) -> str:
        return f"<EventLog {self.path!r} max={self.max_bytes}B>"


class NullEventLog:
    """Shared no-op event log."""

    __slots__ = ()

    def emit(self, event: str, **fields) -> None:
        pass

    def close(self) -> None:
        pass


#: ``events = events or NULL_EVENTS``.
NULL_EVENTS = NullEventLog()


def iter_events(path: str) -> Iterator[Dict[str, object]]:
    """Yield retained events oldest-first across rotated backups.

    Backups are read ``<path>.N`` (oldest) down to ``<path>.1``, then
    the live file.  Torn or non-JSON lines are skipped.
    """
    paths: List[str] = []
    index = 1
    while os.path.exists(f"{path}.{index}"):
        paths.append(f"{path}.{index}")
        index += 1
    paths.reverse()
    if os.path.exists(path):
        paths.append(path)
    for name in paths:
        with open(name) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict):
                    yield record


def read_events(path: str) -> List[Dict[str, object]]:
    """All retained events as a list (see :func:`iter_events`)."""
    return list(iter_events(path))
