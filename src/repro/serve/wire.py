"""JSON-over-Unix-socket wire layer for the compilation service.

The protocol is deliberately tiny and stdlib-only: one JSON object per
line in each direction over an ``AF_UNIX`` stream socket.  Requests:

* ``{"op": "ping"}`` → ``{"ok": true, "schema": ...}``
* ``{"op": "stats"}`` → ``{"ok": true, "stats": {...}}``
* ``{"op": "compile", "cell": {...}, "program_text": "..."}`` →
  ``{"ok": true, "cached": bool, "attempts": n, "result": {...}}``
  (``program_text`` optional — omitted means the built-in benchmark
  named by ``cell.benchmark``; the result payload is the store's
  full-fidelity :func:`~repro.serve.store.result_to_payload` shape)
* ``{"op": "shutdown"}`` → ``{"ok": true}`` and the server loop exits
  after draining the service.

Errors come back as ``{"ok": false, "error": "..."}`` — a malformed
request never kills the server.  This is a smoke-test transport, not a
hardened RPC system: one thread per connection, no auth, no framing
beyond newlines.
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
import threading
from typing import Dict, Optional

from repro.evaluation.engine import GridCell
from repro.serve.jobs import JobRequest, ServeError
from repro.serve.service import CompileService
from repro.serve.store import result_to_payload, store_schema


def cell_from_wire(raw: Dict[str, object]) -> GridCell:
    return GridCell(
        benchmark=raw.get("benchmark", "<wire>"),
        scheme=raw["scheme"],
        machine=raw.get("machine", "4U"),
        heuristic=raw.get("heuristic", "global_weight"),
        dominator_parallelism=bool(raw.get("dominator_parallelism", False)),
        schedule_copies=bool(raw.get("schedule_copies", False)),
    )


def _handle_request(service: CompileService,
                    request: Dict[str, object]) -> Dict[str, object]:
    op = request.get("op")
    if op == "ping":
        return {"ok": True, "schema": store_schema()}
    if op == "stats":
        return {"ok": True, "stats": service.stats()}
    if op == "shutdown":
        return {"ok": True, "shutdown": True}
    if op == "compile":
        cell = cell_from_wire(request["cell"])
        handle = service.submit(JobRequest(
            cell=cell, program_text=request.get("program_text"),
        ))
        result = handle.result(request.get("timeout"))
        return {
            "ok": True,
            "cached": handle.cached,
            "attempts": handle.attempts,
            "result": result_to_payload(handle.key, result),
        }
    raise ValueError(f"unknown op {op!r}")


class ServiceServer(socketserver.ThreadingMixIn,
                    socketserver.UnixStreamServer):
    """One service behind one Unix socket; shut down by a client op."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, path: str, service: CompileService):
        self.service = service
        self.shutdown_requested = threading.Event()
        if os.path.exists(path):
            os.unlink(path)
        super().__init__(path, _Handler)


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        server: ServiceServer = self.server  # type: ignore[assignment]
        for line in self.rfile:
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line.decode("utf-8"))
                response = _handle_request(server.service, request)
            except (ValueError, KeyError, TypeError, ServeError,
                    TimeoutError) as error:
                response = {"ok": False,
                            "error": f"{type(error).__name__}: {error}"}
            self.wfile.write(json.dumps(response).encode("utf-8") + b"\n")
            self.wfile.flush()
            if response.get("shutdown"):
                server.shutdown_requested.set()
                # shutdown() must come from another thread than the
                # serve_forever loop's handler.
                threading.Thread(target=server.shutdown,
                                 daemon=True).start()
                return


def serve_socket(path: str, service: CompileService) -> None:
    """Serve ``service`` on the Unix socket at ``path`` until a client
    sends ``{"op": "shutdown"}`` (or the process is interrupted)."""
    server = ServiceServer(path, service)
    try:
        server.serve_forever(poll_interval=0.05)
    finally:
        server.server_close()
        try:
            os.unlink(path)
        except OSError:
            pass


def request(path: str, payload: Dict[str, object],
            timeout: Optional[float] = 60.0) -> Dict[str, object]:
    """One client round trip: send ``payload``, return the response."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(timeout)
        sock.connect(path)
        sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                break
    raw = b"".join(chunks)
    if not raw:
        raise ConnectionError("empty response from service")
    return json.loads(raw.decode("utf-8"))
