"""Versioned, length-prefixed JSON wire protocol for the compile fleet.

This module is the transport contract between
:class:`~repro.serve.client.ServiceClient` (or any foreign client) and
the asyncio front-end (:mod:`repro.serve.frontend`).  It has three
layers, all stdlib-only:

* **Endpoints** — one textual scheme names both transports:
  ``unix:///path/to.sock`` and ``tcp://host:port`` parse to an
  :class:`Endpoint`; a bare filesystem path is accepted as legacy
  shorthand for ``unix://`` (the PR-5 ``--socket`` flag).

* **Framing** — every message is one JSON object inside a
  length-prefixed frame: a 4-byte big-endian length followed by that
  many bytes of UTF-8 JSON.  Unlike PR 5's newline-delimited protocol,
  frames carry embedded newlines (program texts!) without escaping
  games, a reader always knows exactly how much to read, and a frame
  whose declared length exceeds :data:`MAX_FRAME_BYTES` is rejected
  *before* its body is read (:class:`FrameTooLargeError`).  A stream
  that ends mid-frame raises :class:`TruncatedFrameError`; a clean EOF
  at a frame boundary is a normal connection close.

* **Messages** — ad-hoc dicts are promoted to typed request/response
  dataclasses (:class:`CompileRequest`, :class:`CompileReply`, ...)
  with explicit ``to``/``from`` wire codecs, so client and fleet can
  evolve independently.  Every connection opens with a
  :class:`Hello`/:class:`HelloReply` handshake carrying
  :data:`PROTOCOL_VERSION`; a mismatch is answered with the structured
  error code ``UNSUPPORTED_VERSION`` and the connection is closed.
  Failures travel as :class:`ErrorReply` with a machine-readable
  :class:`ErrorCode` (``SATURATED`` = back off and retry, ``SHARD_DOWN``
  = infrastructure failure, ``BAD_REQUEST`` = client bug, ...), never
  as free-text-only strings.
"""

from __future__ import annotations

import json
import socket
import struct
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.evaluation.engine import GridCell
from repro.serve.jobs import ServeError

#: Version of the framed protocol.  Bump on any incompatible change to
#: the frame layout or message shapes; the handshake then rejects the
#: peer with ``UNSUPPORTED_VERSION`` instead of misparsing frames.
PROTOCOL_VERSION = 1

#: Hard bound on one frame's body.  Program texts are tens of KiB;
#: 16 MiB leaves three orders of magnitude of headroom while keeping a
#: garbage length prefix (e.g. a peer speaking a different protocol)
#: from making the reader buffer gigabytes.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ErrorCode:
    """Machine-readable failure categories carried by :class:`ErrorReply`.

    * ``BAD_REQUEST`` — the request was malformed; retrying it verbatim
      cannot succeed.
    * ``UNSUPPORTED_VERSION`` — handshake version mismatch; the
      connection is closed after this reply.
    * ``SATURATED`` — backpressure: the target shard's intake queue is
      full.  Retry after a backoff; the request was *not* accepted.
    * ``SHARD_DOWN`` — the owning shard failed (crash/timeout budget
      exhausted) and fleet-level retries ran out.
    * ``JOB_FAILED`` — the job itself fails deterministically;
      retrying replays the same failure.
    * ``TIMEOUT`` — the request's own deadline expired while the job
      was still in flight (the job keeps running; a retry dedups onto
      it by content key).
    * ``SHUTTING_DOWN`` — the fleet no longer accepts work.
    * ``INTERNAL`` — anything else; a server-side bug.
    """

    BAD_REQUEST = "BAD_REQUEST"
    UNSUPPORTED_VERSION = "UNSUPPORTED_VERSION"
    SATURATED = "SATURATED"
    SHARD_DOWN = "SHARD_DOWN"
    JOB_FAILED = "JOB_FAILED"
    TIMEOUT = "TIMEOUT"
    SHUTTING_DOWN = "SHUTTING_DOWN"
    INTERNAL = "INTERNAL"

    ALL = frozenset({
        "BAD_REQUEST", "UNSUPPORTED_VERSION", "SATURATED", "SHARD_DOWN",
        "JOB_FAILED", "TIMEOUT", "SHUTTING_DOWN", "INTERNAL",
    })


class WireError(ServeError):
    """Base of all wire-layer failures; carries an :class:`ErrorCode`."""

    code = ErrorCode.INTERNAL

    def __init__(self, message: str, code: Optional[str] = None):
        super().__init__(message)
        if code is not None:
            self.code = code


class ProtocolError(WireError):
    """The peer sent a structurally invalid message (bad JSON inside a
    valid frame, unknown op, missing fields, version mismatch).  The
    framing itself is intact, so the connection can continue."""

    code = ErrorCode.BAD_REQUEST


class FrameError(WireError):
    """The byte stream itself is broken; the connection must close."""


class TruncatedFrameError(FrameError):
    """EOF in the middle of a frame (header or body)."""

    code = ErrorCode.BAD_REQUEST


class FrameTooLargeError(FrameError):
    """A frame header declares a body beyond :data:`MAX_FRAME_BYTES`."""

    code = ErrorCode.BAD_REQUEST


# ----------------------------------------------------------------------
# Endpoints


@dataclass(frozen=True)
class Endpoint:
    """One service address under the unified endpoint scheme."""

    scheme: str  # "unix" | "tcp"
    path: Optional[str] = None
    host: Optional[str] = None
    port: Optional[int] = None

    def __str__(self) -> str:
        if self.scheme == "unix":
            return f"unix://{self.path}"
        return f"tcp://{self.host}:{self.port}"


def parse_endpoint(value: Union[str, Endpoint]) -> Endpoint:
    """Parse ``unix:///path`` / ``tcp://host:port`` (or a bare path).

    A bare filesystem path is legacy shorthand for a Unix socket — the
    deprecated ``--socket PATH`` flags funnel through it.
    """
    if isinstance(value, Endpoint):
        return value
    text = value.strip()
    if not text:
        raise ValueError("empty endpoint")
    if text.startswith("unix://"):
        path = text[len("unix://"):]
        if not path:
            raise ValueError(f"unix endpoint needs a path: {value!r}")
        return Endpoint(scheme="unix", path=path)
    if text.startswith("tcp://"):
        rest = text[len("tcp://"):]
        host, sep, port_text = rest.rpartition(":")
        if not sep or not host or not port_text.isdigit():
            raise ValueError(
                f"tcp endpoint must be tcp://host:port: {value!r}"
            )
        port = int(port_text)
        if port > 65535:
            raise ValueError(f"tcp port out of range: {value!r}")
        return Endpoint(scheme="tcp", host=host, port=port)
    if "://" in text:
        raise ValueError(
            f"unknown endpoint scheme {text.split('://', 1)[0]!r} "
            f"(use unix:// or tcp://)"
        )
    return Endpoint(scheme="unix", path=text)


# ----------------------------------------------------------------------
# Framing


def encode_frame(message: Dict[str, object]) -> bytes:
    """One message as header + JSON body bytes."""
    body = json.dumps(message, sort_keys=True).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameTooLargeError(
            f"frame body {len(body)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    return _HEADER.pack(len(body)) + body


def decode_frame_body(body: bytes) -> Dict[str, object]:
    """JSON body bytes -> message dict (:class:`ProtocolError` on junk)."""
    try:
        message = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError(f"frame body is not JSON: {error}")
    if not isinstance(message, dict):
        raise ProtocolError("frame body must be a JSON object")
    return message


def _check_length(length: int, max_bytes: int) -> None:
    if length > max_bytes:
        raise FrameTooLargeError(
            f"frame of {length} bytes exceeds the {max_bytes}-byte bound"
        )


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes; None on immediate clean EOF."""
    chunks = []
    got = 0
    while got < n:
        chunk = sock.recv(min(65536, n - got))
        if not chunk:
            if got == 0:
                return None
            raise TruncatedFrameError(
                f"connection closed {n - got} bytes into a frame"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, message: Dict[str, object]) -> None:
    sock.sendall(encode_frame(message))


def recv_frame(sock: socket.socket,
               max_bytes: int = MAX_FRAME_BYTES
               ) -> Optional[Dict[str, object]]:
    """Read one frame from a blocking socket; None on clean EOF."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    _check_length(length, max_bytes)
    body = _recv_exact(sock, length) if length else b""
    if body is None:
        raise TruncatedFrameError("connection closed after a frame header")
    return decode_frame_body(body)


async def read_frame(reader, max_bytes: int = MAX_FRAME_BYTES
                     ) -> Optional[Dict[str, object]]:
    """Read one frame from an asyncio StreamReader; None on clean EOF."""
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise TruncatedFrameError("connection closed inside a frame header")
    (length,) = _HEADER.unpack(header)
    _check_length(length, max_bytes)
    try:
        body = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError:
        raise TruncatedFrameError(
            "connection closed inside a frame body"
        )
    return decode_frame_body(body)


async def write_frame(writer, message: Dict[str, object]) -> None:
    writer.write(encode_frame(message))
    await writer.drain()


# ----------------------------------------------------------------------
# Cells on the wire


def cell_to_wire(cell: GridCell) -> Dict[str, object]:
    return {
        "benchmark": cell.benchmark,
        "scheme": cell.scheme,
        "machine": cell.machine,
        "heuristic": cell.heuristic,
        "dominator_parallelism": cell.dominator_parallelism,
        "schedule_copies": cell.schedule_copies,
        "backend": getattr(cell, "backend", "heuristic"),
    }


def cell_from_wire(raw: Dict[str, object]) -> GridCell:
    if not isinstance(raw, dict):
        raise ProtocolError("cell must be a JSON object")
    scheme = raw.get("scheme")
    if not isinstance(scheme, str):
        raise ProtocolError("cell.scheme must be a string")
    return GridCell(
        benchmark=raw.get("benchmark", "<wire>"),
        scheme=scheme,
        machine=raw.get("machine", "4U"),
        heuristic=raw.get("heuristic", "global_weight"),
        dominator_parallelism=bool(raw.get("dominator_parallelism", False)),
        schedule_copies=bool(raw.get("schedule_copies", False)),
        backend=str(raw.get("backend", "heuristic")),
    )


# ----------------------------------------------------------------------
# Typed requests


@dataclass(frozen=True)
class Hello:
    """Connection opener: the client's protocol version and identity."""

    protocol_version: int = PROTOCOL_VERSION
    client: str = ""


@dataclass(frozen=True)
class CompileRequest:
    """One cell to compile; ``program_text`` None means the built-in
    benchmark named by ``cell.benchmark``.

    ``trace_id``/``parent_span_id`` are the distributed trace context
    (:mod:`repro.obs.distributed`).  Both are optional and emitted on
    the wire only when set, so the message shape — and protocol
    version 1 — are unchanged for untraced clients, and version-1
    servers that predate tracing simply ignore the extra fields.
    """

    cell: GridCell
    program_text: Optional[str] = None
    timeout: Optional[float] = None
    trace_id: Optional[str] = None
    parent_span_id: Optional[str] = None


@dataclass(frozen=True)
class PingRequest:
    """Health probe: answered with fleet/shard liveness, never queued."""


@dataclass(frozen=True)
class StatsRequest:
    """Fleet, shard, store, and hot-cache statistics."""


@dataclass(frozen=True)
class HealthRequest:
    """Cheap liveness/readiness probe: shard up/down map only, no
    metrics collection.  Like ``stats``, answered by the front-end
    without touching the compute path."""


@dataclass(frozen=True)
class ShutdownRequest:
    """Ask the front-end to stop serving (drains the fleet)."""


Request = Union[Hello, CompileRequest, PingRequest, StatsRequest,
                HealthRequest, ShutdownRequest]


def request_to_wire(request: Request) -> Dict[str, object]:
    if isinstance(request, Hello):
        return {"op": "hello",
                "protocol_version": request.protocol_version,
                "client": request.client}
    if isinstance(request, CompileRequest):
        message: Dict[str, object] = {
            "op": "compile", "cell": cell_to_wire(request.cell),
        }
        if request.program_text is not None:
            message["program_text"] = request.program_text
        if request.timeout is not None:
            message["timeout"] = request.timeout
        if request.trace_id is not None:
            message["trace_id"] = request.trace_id
        if request.parent_span_id is not None:
            message["parent_span_id"] = request.parent_span_id
        return message
    if isinstance(request, PingRequest):
        return {"op": "ping"}
    if isinstance(request, StatsRequest):
        return {"op": "stats"}
    if isinstance(request, HealthRequest):
        return {"op": "health"}
    if isinstance(request, ShutdownRequest):
        return {"op": "shutdown"}
    raise TypeError(f"not a request: {request!r}")


def request_from_wire(raw: Dict[str, object]) -> Request:
    """Parse + validate one request dict (:class:`ProtocolError` on
    unknown ops and malformed fields — code ``BAD_REQUEST``)."""
    op = raw.get("op")
    if op == "hello":
        version = raw.get("protocol_version")
        if not isinstance(version, int):
            raise ProtocolError("hello.protocol_version must be an integer")
        client = raw.get("client", "")
        return Hello(protocol_version=version,
                     client=client if isinstance(client, str) else "")
    if op == "compile":
        if "cell" not in raw:
            raise ProtocolError("compile request carries no cell")
        text = raw.get("program_text")
        if text is not None and not isinstance(text, str):
            raise ProtocolError("compile.program_text must be a string")
        timeout = raw.get("timeout")
        if timeout is not None and not isinstance(timeout, (int, float)):
            raise ProtocolError("compile.timeout must be a number")
        trace_id = raw.get("trace_id")
        if trace_id is not None and not isinstance(trace_id, str):
            raise ProtocolError("compile.trace_id must be a string")
        parent_span_id = raw.get("parent_span_id")
        if parent_span_id is not None \
                and not isinstance(parent_span_id, str):
            raise ProtocolError("compile.parent_span_id must be a string")
        return CompileRequest(cell=cell_from_wire(raw["cell"]),
                              program_text=text,
                              timeout=None if timeout is None
                              else float(timeout),
                              trace_id=trace_id,
                              parent_span_id=parent_span_id)
    if op == "ping":
        return PingRequest()
    if op == "stats":
        return StatsRequest()
    if op == "health":
        return HealthRequest()
    if op == "shutdown":
        return ShutdownRequest()
    raise ProtocolError(f"unknown op {op!r}")


# ----------------------------------------------------------------------
# Typed replies


@dataclass(frozen=True)
class HelloReply:
    """Handshake accept: the server's version, schema, and shard count."""

    protocol_version: int
    schema: str
    shards: int


@dataclass(frozen=True)
class CompileReply:
    """One finished compile: the store payload plus provenance."""

    result: Dict[str, object]
    cached: bool
    attempts: int
    shard: int
    source: str  # "hot" | "store" | "computed"


@dataclass(frozen=True)
class PingReply:
    protocol_version: int
    schema: str
    healthy: bool
    shards: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class StatsReply:
    stats: Dict[str, object]


@dataclass(frozen=True)
class HealthReply:
    """Liveness summary: overall health, per-shard up/down, identity."""

    healthy: bool
    shards: Dict[str, object] = field(default_factory=dict)
    uptime_seconds: float = 0.0
    pid: int = 0


@dataclass(frozen=True)
class ShutdownReply:
    """Acknowledged; the front-end stops accepting connections."""


@dataclass(frozen=True)
class ErrorReply:
    """A structured failure: a machine-readable code plus detail text."""

    code: str
    message: str


Reply = Union[HelloReply, CompileReply, PingReply, StatsReply,
              HealthReply, ShutdownReply, ErrorReply]


def reply_to_wire(reply: Reply) -> Dict[str, object]:
    if isinstance(reply, ErrorReply):
        return {"ok": False, "code": reply.code, "error": reply.message}
    if isinstance(reply, HelloReply):
        return {"ok": True, "op": "hello",
                "protocol_version": reply.protocol_version,
                "schema": reply.schema, "shards": reply.shards}
    if isinstance(reply, CompileReply):
        return {"ok": True, "op": "compile", "result": reply.result,
                "cached": reply.cached, "attempts": reply.attempts,
                "shard": reply.shard, "source": reply.source}
    if isinstance(reply, PingReply):
        return {"ok": True, "op": "ping",
                "protocol_version": reply.protocol_version,
                "schema": reply.schema, "healthy": reply.healthy,
                "shards": reply.shards}
    if isinstance(reply, StatsReply):
        return {"ok": True, "op": "stats", "stats": reply.stats}
    if isinstance(reply, HealthReply):
        return {"ok": True, "op": "health", "healthy": reply.healthy,
                "shards": reply.shards,
                "uptime_seconds": reply.uptime_seconds, "pid": reply.pid}
    if isinstance(reply, ShutdownReply):
        return {"ok": True, "op": "shutdown"}
    raise TypeError(f"not a reply: {reply!r}")


def reply_from_wire(raw: Dict[str, object]) -> Reply:
    if raw.get("ok") is False:
        code = raw.get("code")
        if code not in ErrorCode.ALL:
            code = ErrorCode.INTERNAL
        return ErrorReply(code=code, message=str(raw.get("error", "")))
    if raw.get("ok") is not True:
        raise ProtocolError("reply carries no ok field")
    op = raw.get("op")
    if op == "hello":
        version = raw.get("protocol_version")
        if not isinstance(version, int):
            raise ProtocolError("hello reply without protocol_version")
        return HelloReply(protocol_version=version,
                          schema=str(raw.get("schema", "")),
                          shards=int(raw.get("shards", 0)))
    if op == "compile":
        result = raw.get("result")
        if not isinstance(result, dict):
            raise ProtocolError("compile reply without a result payload")
        return CompileReply(result=result,
                            cached=bool(raw.get("cached", False)),
                            attempts=int(raw.get("attempts", 0)),
                            shard=int(raw.get("shard", -1)),
                            source=str(raw.get("source", "")))
    if op == "ping":
        return PingReply(
            protocol_version=int(raw.get("protocol_version", 0)),
            schema=str(raw.get("schema", "")),
            healthy=bool(raw.get("healthy", False)),
            shards=raw.get("shards", {})
            if isinstance(raw.get("shards"), dict) else {},
        )
    if op == "stats":
        stats = raw.get("stats")
        if not isinstance(stats, dict):
            raise ProtocolError("stats reply without a stats object")
        return StatsReply(stats=stats)
    if op == "health":
        return HealthReply(
            healthy=bool(raw.get("healthy", False)),
            shards=raw.get("shards", {})
            if isinstance(raw.get("shards"), dict) else {},
            uptime_seconds=float(raw.get("uptime_seconds", 0.0)),
            pid=int(raw.get("pid", 0)),
        )
    if op == "shutdown":
        return ShutdownReply()
    raise ProtocolError(f"unknown reply op {op!r}")
