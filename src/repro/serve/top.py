"""``repro top``: a live terminal dashboard over the fleet stats plane.

Curses-free by design: each refresh is one ANSI home+clear escape
followed by a full repaint, which works in any VT100-ish terminal,
inside ``tmux``, and in CI logs (where the escapes are harmless
noise).  All data comes from the ``STATS`` and ``HEALTH`` wire ops —
the dashboard is a pure *reader* of the serving system and cannot
perturb the compute path it is watching.

:func:`render_top` is the pure half (stats dict -> screen string) so
tests can assert on the rendering without a terminal or a server;
:func:`run_top` is the polling loop the CLI drives.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List, Optional

from repro.serve.client import Client

#: Home the cursor + clear to end of screen (repaint without scrollback
#: spam, unlike a full ``\x1b[2J`` which some terminals flash on).
ANSI_REFRESH = "\x1b[H\x1b[J"


def _fmt_bytes(n: object) -> str:
    try:
        value = float(n)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return "?"
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.0f}{unit}" if unit == "B" \
                else f"{value:.1f}{unit}"
        value /= 1024
    return f"{value:.1f}GiB"


def _fmt_us(value: object) -> str:
    if value is None:
        return "-"
    try:
        micros = float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return "-"
    if micros < 1000:
        return f"{micros:.0f}µs"
    if micros < 1e6:
        return f"{micros / 1e3:.1f}ms"
    return f"{micros / 1e6:.2f}s"


def render_top(stats: Dict[str, object], *,
               endpoint: str = "",
               previous: Optional[Dict[str, object]] = None,
               interval: float = 1.0) -> str:
    """One full dashboard frame from a ``STATS`` payload.

    ``previous`` (the prior poll's payload) turns monotonic counters
    into rates: requests/s is the delta of ``fleet.requests`` over the
    poll ``interval``.
    """
    lines: List[str] = []
    server = stats.get("server") or {}
    metrics = stats.get("metrics") or {}
    counters = metrics.get("counters") or {}
    gauges = metrics.get("gauges") or {}

    uptime = server.get("uptime_seconds", 0)
    header = f"repro top — {endpoint}"
    lines.append(header)
    lines.append(
        f"server pid {server.get('pid', '?')}  "
        f"up {float(uptime):8.1f}s  "
        f"protocol v{server.get('protocol_version', '?')}  "
        f"{'CLOSED' if stats.get('closed') else 'serving'}"
    )

    rate = ""
    if previous is not None:
        prev_counters = (previous.get("metrics") or {}).get("counters") \
            or {}
        delta = counters.get("fleet.requests", 0) \
            - prev_counters.get("fleet.requests", 0)
        if interval > 0:
            rate = f"  {delta / interval:8.1f} req/s"
    lines.append(
        f"requests {counters.get('fleet.requests', 0):>8}  "
        f"completed {counters.get('fleet.completed', 0):>8}  "
        f"failed {counters.get('fleet.failed', 0):>6}  "
        f"deduped {counters.get('fleet.deduped', 0):>6}{rate}"
    )
    lines.append("")

    # -- shard table -----------------------------------------------------
    lines.append(f"{'SHARD':>5} {'UP':>4} {'GEN':>4} {'QUEUE':>6} "
                 f"{'INFLIGHT':>8} {'STORE-HIT':>9} {'STORE-MISS':>10} "
                 f"{'ENTRIES':>8}")
    for shard in stats.get("shards") or []:
        service = shard.get("service") or {}
        store = service.get("store") or {}
        lines.append(
            f"{shard.get('index', '?'):>5} "
            f"{'yes' if shard.get('up') else 'NO':>4} "
            f"{shard.get('generation', 0):>4} "
            f"{service.get('queued', 0):>6} "
            f"{service.get('inflight', 0):>8} "
            f"{store.get('hits', '-'):>9} "
            f"{store.get('misses', '-'):>10} "
            f"{store.get('entries', '-'):>8}"
        )
    lines.append("")

    # -- tiers + supervision ---------------------------------------------
    hot = stats.get("hot") or {}
    lines.append(
        f"hot tier  {hot.get('entries', 0)}/{hot.get('max', 0)} entries  "
        f"~{_fmt_bytes(hot.get('bytes', 0))}   "
        f"hits {counters.get('fleet.hot_hits', 0)}  "
        f"evictions {counters.get('fleet.hot_evictions', 0)}"
    )
    lines.append(
        f"inflight dedup {stats.get('inflight', 0)}   "
        f"restarts {counters.get('fleet.shard_restarts', 0)}  "
        f"deaths {counters.get('fleet.shard_deaths', 0)}  "
        f"retries {counters.get('fleet.shard_retries', 0)}"
    )
    memo_bits = [
        f"{name.split('.', 1)[1]} {gauges[name]:g}"
        for name in sorted(gauges) if name.startswith("memo.")
    ]
    if memo_bits:
        lines.append("region memo  " + "  ".join(memo_bits))
    lines.append("")

    # -- rolling latency --------------------------------------------------
    latency = stats.get("latency") or {}
    if latency:
        lines.append(f"{'OP':>8} {'COUNT':>7} {'P50':>9} {'P95':>9} "
                     f"{'P99':>9} {'MAX':>9}   (rolling)")
        for op in sorted(latency):
            summary = latency[op] or {}
            lines.append(
                f"{op:>8} {summary.get('count', 0):>7} "
                f"{_fmt_us(summary.get('p50')):>9} "
                f"{_fmt_us(summary.get('p95')):>9} "
                f"{_fmt_us(summary.get('p99')):>9} "
                f"{_fmt_us(summary.get('max')):>9}"
            )
    else:
        lines.append("(no requests in the rolling latency window)")
    return "\n".join(lines) + "\n"


def run_top(endpoint, *, interval: float = 1.0,
            iterations: Optional[int] = None,
            stream=None, clear: bool = True,
            client: Optional[Client] = None) -> int:
    """Poll ``STATS`` and repaint until interrupted.

    ``iterations`` bounds the loop (None = forever); ``clear=False``
    appends frames instead of repainting (pipes, logs).  Returns a
    process exit code.
    """
    out = stream if stream is not None else sys.stdout
    own_client = client is None
    if client is None:
        client = Client(endpoint, client_name="repro-top")
    previous: Optional[Dict[str, object]] = None
    count = 0
    try:
        while iterations is None or count < iterations:
            began = time.perf_counter()
            try:
                stats = client.stats()
            except Exception as error:
                if clear:
                    out.write(ANSI_REFRESH)
                out.write(f"repro top — {endpoint}\n"
                          f"unreachable: {error}\n")
                out.flush()
                previous = None
            else:
                frame = render_top(stats, endpoint=str(endpoint),
                                   previous=previous, interval=interval)
                if clear:
                    out.write(ANSI_REFRESH)
                out.write(frame)
                out.flush()
                previous = stats
            count += 1
            if iterations is not None and count >= iterations:
                break
            elapsed = time.perf_counter() - began
            time.sleep(max(0.0, interval - elapsed))
    except KeyboardInterrupt:
        pass
    finally:
        if own_client:
            client.close()
    return 0
