"""Content-addressed, disk-backed artifact store for schedule results.

Every ``repro run/bench/report`` invocation recompiles, re-forms, and
re-schedules from scratch; the PR-1 analysis cache is in-memory and dies
with the process.  This store makes the expensive half of a grid cell —
formation plus scheduling plus estimation — durable across processes:
the profile-weighted schedule estimate is a pure function of (IR,
scheme, machine, heuristic), so its result can be memoized under a
content hash of exactly those inputs.

**Key derivation** (:func:`cell_key`): the SHA-256 digest of

* the store schema string (:func:`store_schema` — repro version plus a
  payload-format revision, so an upgraded tool never reads stale
  payload shapes);
* the canonical textual IR of the program
  (:func:`repro.ir.printer.format_program` — block and edge profile
  weights are part of the text, so re-profiled programs key
  differently);
* the canonical scheme spec (``str(SchemeSpec.parse(...))``, so
  aliases of one spec share an entry);
* the machine fingerprint (:func:`machine_fingerprint` — name, issue
  width, the full latency table, and the structural knobs);
* the heuristic name and the two :class:`ScheduleOptions` flags a
  :class:`~repro.evaluation.engine.GridCell` carries.

**Layout**: ``<dir>/objects/<key[:2]>/<key>.json`` holds one JSON
payload per entry (the key is restated inside the payload and checked
on read); ``<dir>/index.json`` records sizes and LRU clocks.  Writes go
through a temp file in the same directory followed by ``os.replace``,
so concurrent writers of the same key race atomically — last write
wins, and a reader never observes a torn file.

**Eviction**: the store is LRU size-bounded (``max_mb``); exceeding the
bound evicts least-recently-used entries until it fits and counts them
(``serve.store.evictions``).  A missing or unparsable index is rebuilt
by scanning the object tree; an unreadable, unparsable, or wrong-key
object file is deleted and served as a miss
(``serve.store.corrupt``) — corruption can cost time, never wrong
answers.

Hit/miss/evict/corrupt totals flow into the active
:mod:`repro.obs` metrics registry and are also kept on the instance
(:meth:`ArtifactStore.stats`).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, Iterable, Optional, Tuple

from repro.evaluation.engine import CellResult, GridCell, machine_by_name
from repro.evaluation.schemes import SchemeSpec
from repro.obs.metrics import current_metrics
# Canonical definition lives with the region fingerprints; re-exported
# here so cell keys and region keys agree on what "the same machine"
# means.
from repro.schedule.fingerprint import machine_fingerprint  # noqa: F401

#: Revision of the on-disk payload shape.  Bump when the JSON layout of
#: an entry changes; old entries then key differently and age out.
STORE_FORMAT = 1

#: Default size bound (in MiB) when a caller does not pass one.
DEFAULT_MAX_MB = 256


def store_schema() -> str:
    """The schema/version string mixed into every key and payload."""
    from repro import __version__

    return f"repro-{__version__}/store-{STORE_FORMAT}"


def cell_key(program_text: str, cell: GridCell) -> str:
    """SHA-256 key of one (program, scheme, machine, heuristic) cell."""
    digest = hashlib.sha256()
    parts = [
        store_schema(),
        program_text,
        str(SchemeSpec.parse(cell.scheme)),
        machine_fingerprint(machine_by_name(cell.machine)),
        cell.heuristic,
        f"dp={int(cell.dominator_parallelism)}",
        f"sc={int(cell.schedule_copies)}",
    ]
    # Appended only when non-default so historical keys stay valid.
    backend = getattr(cell, "backend", "heuristic")
    if backend != "heuristic":
        parts.append(f"backend={backend}")
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def region_key(
    region_fp: str,
    machine_fp: str,
    heuristic: str,
    dominator_parallelism: bool,
    schedule_copies: bool,
    backend: str = "heuristic",
    exact_budget: int = 0,
) -> str:
    """SHA-256 key of one memoized region scheduling result.

    The region-granular analogue of :func:`cell_key`: the program text is
    replaced by :func:`repro.schedule.fingerprint.region_fingerprint` and
    the scheme disappears entirely (whatever former produced the region,
    equal content schedules identically).  A ``region`` tag keeps the two
    keyspaces disjoint even under hash-input coincidence.

    Non-default backends key separately: an exact result depends on the
    node budget (a larger budget may prove a shorter schedule), so the
    budget is part of the key.  The default backend omits the part
    entirely, keeping every pre-existing store entry addressable.
    """
    digest = hashlib.sha256()
    parts = [
        store_schema(),
        "region",
        region_fp,
        machine_fp,
        heuristic,
        f"dp={int(dominator_parallelism)}",
        f"sc={int(schedule_copies)}",
    ]
    if backend != "heuristic":
        parts.append(f"backend={backend}:budget={exact_budget}")
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def result_to_payload(key: str, result: CellResult) -> Dict[str, object]:
    """Full-fidelity JSON payload for one :class:`CellResult`.

    Floats serialize via ``repr`` (shortest round-trip), so a stored
    result deserializes bit-identical to the one computed fresh.
    """
    cell = result.cell
    return {
        "schema": store_schema(),
        "key": key,
        "cell": {
            "benchmark": cell.benchmark,
            "scheme": cell.scheme,
            "machine": cell.machine,
            "heuristic": cell.heuristic,
            "dominator_parallelism": cell.dominator_parallelism,
            "schedule_copies": cell.schedule_copies,
            "backend": getattr(cell, "backend", "heuristic"),
        },
        "time": result.time,
        "code_expansion": result.code_expansion,
        "schedule_lengths": list(result.schedule_lengths),
        "total_copies": result.total_copies,
        "total_merged": result.total_merged,
        "total_speculated": result.total_speculated,
    }


def result_from_payload(payload: Dict[str, object]) -> CellResult:
    cell = payload["cell"]
    return CellResult(
        cell=GridCell(
            benchmark=cell["benchmark"],
            scheme=cell["scheme"],
            machine=cell["machine"],
            heuristic=cell["heuristic"],
            dominator_parallelism=cell["dominator_parallelism"],
            schedule_copies=cell["schedule_copies"],
            backend=cell.get("backend", "heuristic"),
        ),
        time=payload["time"],
        code_expansion=payload["code_expansion"],
        schedule_lengths=tuple(payload["schedule_lengths"]),
        total_copies=payload["total_copies"],
        total_merged=payload["total_merged"],
        total_speculated=payload["total_speculated"],
    )


class ArtifactStore:
    """A content-addressed result cache rooted at ``directory``.

    Safe to open from several processes at once: object writes are
    atomic renames, reads validate the restated key, and the index is
    advisory (a stale index only costs recency fidelity, never
    correctness — a missing object is a miss, an unindexed object is
    re-adopted on the next :meth:`put` scan).
    """

    def __init__(self, directory: str,
                 max_mb: float = DEFAULT_MAX_MB) -> None:
        self.directory = directory
        self.max_bytes = int(max_mb * 1024 * 1024)
        self.objects_dir = os.path.join(directory, "objects")
        self.index_path = os.path.join(directory, "index.json")
        os.makedirs(self.objects_dir, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.corrupt = 0
        #: key -> (size_bytes, last_used_clock)
        self._index: Dict[str, Tuple[int, int]] = {}
        self._clock = 0
        self._load_index()

    # -- index persistence ---------------------------------------------

    def _load_index(self) -> None:
        try:
            with open(self.index_path) as handle:
                raw = json.load(handle)
            self._clock = int(raw["clock"])
            self._index = {
                key: (int(entry[0]), int(entry[1]))
                for key, entry in raw["entries"].items()
            }
        except (OSError, ValueError, KeyError, TypeError):
            self._rebuild_index()

    def _rebuild_index(self) -> None:
        """Re-adopt whatever object files exist (index lost/corrupt)."""
        self._index = {}
        self._clock = 0
        for key, path in sorted(self._iter_objects()):
            try:
                size = os.stat(path).st_size
            except OSError:
                continue
            self._clock += 1
            self._index[key] = (size, self._clock)
        self._save_index()

    def _iter_objects(self) -> Iterable[Tuple[str, str]]:
        for shard in sorted(os.listdir(self.objects_dir)):
            shard_dir = os.path.join(self.objects_dir, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    yield name[:-5], os.path.join(shard_dir, name)

    def _save_index(self) -> None:
        payload = {
            "schema": store_schema(),
            "clock": self._clock,
            "entries": {key: list(entry)
                        for key, entry in self._index.items()},
        }
        self._atomic_write(self.index_path,
                           json.dumps(payload, sort_keys=True))

    def _atomic_write(self, path: str, text: str) -> None:
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path) or ".",
                                   prefix=".tmp-")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- object paths ---------------------------------------------------

    def _object_path(self, key: str) -> str:
        return os.path.join(self.objects_dir, key[:2], f"{key}.json")

    def _drop(self, key: str, counter: Optional[str] = None) -> None:
        self._index.pop(key, None)
        try:
            os.unlink(self._object_path(key))
        except OSError:
            pass
        if counter is not None:
            setattr(self, counter, getattr(self, counter) + 1)
            current_metrics().inc(f"serve.store.{counter}")

    # -- the cache interface --------------------------------------------

    def _read_validated(self, key: str) -> Tuple[Dict[str, object], str]:
        """Load + validate the payload under ``key``; raises on trouble."""
        path = self._object_path(key)
        with open(path) as handle:
            payload = json.load(handle)
        if payload.get("key") != key or \
                payload.get("schema") != store_schema():
            raise ValueError("payload/key mismatch")
        return payload, path

    def _count_miss(self, key: str, corrupt: bool) -> None:
        if corrupt:
            self._drop(key, "corrupt")
        else:
            # No file: a plain miss (drop any stale index entry).
            self._index.pop(key, None)
        self.misses += 1
        current_metrics().inc("serve.store.misses")

    def _count_hit(self, key: str, path: str) -> None:
        self._clock += 1
        size = self._index.get(key, (0, 0))[0] or self._entry_size(path)
        self._index[key] = (size, self._clock)
        self.hits += 1
        current_metrics().inc("serve.store.hits")

    def get(self, key: str) -> Optional[CellResult]:
        """The stored result under ``key``, or None (miss)."""
        try:
            payload, path = self._read_validated(key)
            result = result_from_payload(payload)
        except OSError:
            self._count_miss(key, corrupt=False)
            return None
        except (ValueError, KeyError, TypeError):
            self._count_miss(key, corrupt=True)
            return None
        self._count_hit(key, path)
        return result

    def get_payload(self, key: str) -> Optional[Dict[str, object]]:
        """The raw JSON payload under ``key``, or None (miss).

        The schema and restated key are validated like :meth:`get`;
        interpreting the rest of the payload is the caller's business
        (the region memo stores :class:`RegionSummary`-shaped entries
        through this, cell results keep using :meth:`get`/:meth:`put`).
        """
        try:
            payload, path = self._read_validated(key)
        except OSError:
            self._count_miss(key, corrupt=False)
            return None
        except (ValueError, KeyError, TypeError):
            self._count_miss(key, corrupt=True)
            return None
        self._count_hit(key, path)
        return payload

    @staticmethod
    def _entry_size(path: str) -> int:
        try:
            return os.stat(path).st_size
        except OSError:
            return 0

    def put(self, key: str, result: CellResult) -> None:
        """Store ``result`` under ``key`` (atomic; last writer wins)."""
        self.put_payload(key, result_to_payload(key, result))

    def put_payload(self, key: str, payload: Dict[str, object],
                    defer_index: bool = False) -> None:
        """Store a JSON payload under ``key`` (atomic; last writer wins).

        The schema string and the key are stamped into the payload so
        reads can validate them.  ``defer_index=True`` skips the
        per-entry eviction sweep and index write — per-region puts are
        far too hot for one disk write each — leaving both to the next
        :meth:`sync` (or any undeferred put).
        """
        path = self._object_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        stamped = dict(payload)
        stamped["schema"] = store_schema()
        stamped["key"] = key
        text = json.dumps(stamped, sort_keys=True)
        self._atomic_write(path, text)
        self._clock += 1
        self._index[key] = (len(text), self._clock)
        current_metrics().inc("serve.store.puts")
        if not defer_index:
            self._evict_to_fit()
            self._save_index()

    def _evict_to_fit(self) -> None:
        while len(self._index) > 1 and \
                sum(size for size, _ in self._index.values()) > self.max_bytes:
            victim = min(self._index, key=lambda k: self._index[k][1])
            self._drop(victim, "evictions")

    # -- maintenance ----------------------------------------------------

    def sync(self) -> None:
        """Persist the in-memory index (recency clocks and any entries
        written with ``defer_index=True``), evicting to fit first."""
        self._evict_to_fit()
        self._save_index()

    def close(self) -> None:
        self.sync()

    def __enter__(self) -> "ArtifactStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._object_path(key))

    def keys(self) -> Tuple[str, ...]:
        return tuple(sorted(self._index))

    def total_bytes(self) -> int:
        return sum(size for size, _ in self._index.values())

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._index),
            "bytes": self.total_bytes(),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
        }
