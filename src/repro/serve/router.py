"""Content-key request routing for the compile fleet.

The PR-5/6 store keys are SHA-256 content hashes of everything a result
depends on, which makes sharding correct by construction: a request's
key fully determines its answer, so *any* placement policy that is a
pure function of the key gives every replica of a request the same
owner — no coordination, no session state, no rebalancing protocol.
:class:`KeyRouter` uses the first 16 hex digits of the key modulo the
shard count; SHA-256 output is uniform, so shard load balances to the
law of large numbers over distinct keys.

Changing the shard count remaps roughly ``(N-1)/N`` of the keyspace.
That is deliberate — the fleet compensates with *warm-replica reads*
(a key's new owner probes the other shards' stores on a miss and
adopts the entry), so a resize costs one cross-shard read per moved
key, not a recompute.
"""

from __future__ import annotations

from repro.serve.jobs import JobRequest
from repro.serve.service import resolve_program_text
from repro.serve.store import cell_key


def request_key(request: JobRequest) -> str:
    """The content key one request routes (and dedups) by."""
    return cell_key(resolve_program_text(request), request.cell)


class KeyRouter:
    """Stable content-key -> shard-index mapping."""

    __slots__ = ("shards",)

    #: Hex digits of the key consulted for placement (64 bits — far
    #: beyond any realistic shard count).
    PREFIX = 16

    def __init__(self, shards: int):
        if shards < 1:
            raise ValueError(f"a fleet needs at least one shard: {shards}")
        self.shards = shards

    def shard_for(self, key: str) -> int:
        """Owning shard of ``key`` (uniform, stateless, stable)."""
        return int(key[:self.PREFIX], 16) % self.shards

    def __repr__(self) -> str:
        return f"KeyRouter(shards={self.shards})"
