"""Many-client soak harness for the compile fleet.

:func:`run_soak` opens ``clients`` concurrent connections to a running
front-end and pushes ``requests`` compile requests through them (cells
assigned round-robin from the given set, so every cell is hit and warm
traffic repeats keys).  Latency is recorded twice: as raw
``perf_counter`` samples for *exact* percentiles — the numbers the
load benchmark gates on — and into :mod:`repro.obs` histograms in
microseconds, so soak latency merges and serializes like every other
metric in the repo.

The report separates cold traffic (first compute of a key) from warm
traffic (served from the hot tier or a store), because the acceptance
bound — warm-hit p99 within 2x of the local-store warm figure — is a
statement about warm hits only.  It also carries everything the
benchmark needs to assert fleet semantics: per-request result payloads
(byte-identity against the direct pipeline), error lists (the
zero-dropped-requests check), and per-source counts.

Client threads, not asyncio, on the driver side: each client is the
synchronous :class:`~repro.serve.client.Client`, which is the actual
public API — the soak measures what users get, stacked 1000 deep.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.evaluation.engine import GridCell
from repro.obs.distributed import NULL_DTRACER, DistributedTracer
from repro.obs.metrics import NULL_METRICS, Histogram
from repro.serve.client import Client


def percentile(samples: Sequence[float], q: float) -> float:
    """Exact ``q``-th percentile (nearest-rank) of raw samples."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, int(-(-len(ordered) * q // 100)))  # ceil(n*q/100)
    return ordered[rank - 1]


def _summarize(samples: Sequence[float]) -> Dict[str, float]:
    if not samples:
        return {"count": 0, "p50": 0.0, "p95": 0.0, "p99": 0.0,
                "mean": 0.0, "max": 0.0}
    return {
        "count": len(samples),
        "p50": percentile(samples, 50),
        "p95": percentile(samples, 95),
        "p99": percentile(samples, 99),
        "mean": sum(samples) / len(samples),
        "max": max(samples),
    }


@dataclass
class SoakReport:
    """Everything one soak run observed."""

    clients: int
    requests: int
    completed: int = 0
    wall_seconds: float = 0.0
    #: request index -> result payload dict (for byte-identity checks).
    payloads: Dict[int, Dict] = field(default_factory=dict)
    #: request index -> reply source ("computed" | "store" | "hot").
    sources: Dict[int, str] = field(default_factory=dict)
    latencies: List[float] = field(default_factory=list)
    warm_latencies: List[float] = field(default_factory=list)
    cold_latencies: List[float] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    #: The same latencies as obs histograms (µs) — the *second* way the
    #: soak computes percentiles.  Exact list percentiles gate the load
    #: benchmark; these are what a merged/serialized metrics view would
    #: report, and ``tests/test_soak_agreement.py`` bounds how far the
    #: two may diverge (the power-of-two-bucket upper-bound contract).
    histograms: Dict[str, Histogram] = field(
        default_factory=lambda: {"all": Histogram(), "warm": Histogram(),
                                 "cold": Histogram()})

    @property
    def dropped(self) -> int:
        return self.requests - self.completed

    @property
    def qps(self) -> float:
        return self.completed / self.wall_seconds \
            if self.wall_seconds > 0 else 0.0

    def as_dict(self) -> Dict[str, object]:
        """The JSON-ready summary (payloads stay out — they are for
        in-process identity checks, not the report file)."""
        source_counts: Dict[str, int] = {}
        for source in self.sources.values():
            source_counts[source] = source_counts.get(source, 0) + 1
        return {
            "clients": self.clients,
            "requests": self.requests,
            "completed": self.completed,
            "dropped": self.dropped,
            "errors": len(self.errors),
            "wall_seconds": round(self.wall_seconds, 6),
            "qps": round(self.qps, 2),
            "latency": _summarize(self.latencies),
            "warm_latency": _summarize(self.warm_latencies),
            "cold_latency": _summarize(self.cold_latencies),
            "latency_hist_us": {
                name: {
                    "count": hist.count,
                    "p50": hist.percentile(50),
                    "p95": hist.percentile(95),
                    "p99": hist.percentile(99),
                }
                for name, hist in sorted(self.histograms.items())
            },
            "sources": {k: source_counts[k] for k in sorted(source_counts)},
        }


def run_soak(
    endpoint,
    cells: Sequence[GridCell],
    *,
    program_text: Optional[str] = None,
    clients: int = 32,
    requests: Optional[int] = None,
    request_timeout: float = 300.0,
    client_timeout: float = 300.0,
    ramp_seconds: float = 0.0,
    retries: int = 4,
    metrics=NULL_METRICS,
    on_request: Optional[object] = None,
    trace_dir: Optional[str] = None,
) -> SoakReport:
    """Drive a many-client soak against a running front-end.

    ``requests`` defaults to one per cell; request ``i`` compiles
    ``cells[i % len(cells)]``, so counts beyond ``len(cells)`` measure
    warm traffic.  Indices are strided across clients (client ``w``
    issues ``w``, ``w + clients``, ...), NOT pulled from a shared
    queue: with a shared queue the earliest-connected clients drain
    the whole request budget before the rest have even dialed in, and
    the soak degenerates into measuring the connection storm.
    ``ramp_seconds`` staggers client start-up across the whole ramp
    window, which with strided allotment also spreads request
    arrivals.  ``on_request`` — called with each request index as it
    is *issued* — is the fault-injection hook the kill-a-shard tests
    use.  Per-request failures are recorded, never raised: the report's
    ``errors``/``dropped`` fields are the assertion surface.
    ``trace_dir`` enables distributed tracing: all soak clients share
    one ``client``-role tracer, each request gets a root span, and the
    trace context rides the wire to the fleet.
    """
    total = len(cells) if requests is None else requests
    if total <= 0 or not cells:
        return SoakReport(clients=clients, requests=0)
    clients = max(1, min(clients, total))
    report = SoakReport(clients=clients, requests=total)
    lock = threading.Lock()
    start_gate = threading.Event()
    tracer = DistributedTracer(trace_dir, "client") \
        if trace_dir else NULL_DTRACER

    def worker(worker_index: int) -> None:
        start_gate.wait()
        if ramp_seconds > 0 and clients > 1:
            time.sleep(ramp_seconds * worker_index / (clients - 1))
        client = Client(
            endpoint, timeout=client_timeout, retries=retries,
            client_name=f"soak-{worker_index:04d}", tracer=tracer,
        )
        try:
            with client:
                for index in range(worker_index, total, clients):
                    if on_request is not None:
                        on_request(index)
                    cell = cells[index % len(cells)]
                    began = time.perf_counter()
                    try:
                        reply = client.submit(
                            cell, program_text=program_text,
                            timeout=request_timeout,
                        )
                    except Exception as error:
                        with lock:
                            report.errors.append(
                                f"request {index}: {error}")
                        metrics.inc("soak.errors")
                        continue
                    elapsed = time.perf_counter() - began
                    warm = reply.cached
                    micros = int(elapsed * 1e6)
                    with lock:
                        report.completed += 1
                        report.payloads[index] = reply.result
                        report.sources[index] = reply.source
                        report.latencies.append(elapsed)
                        (report.warm_latencies if warm
                         else report.cold_latencies).append(elapsed)
                        report.histograms["all"].observe(micros)
                        report.histograms[
                            "warm" if warm else "cold"].observe(micros)
                    metrics.inc("soak.completed")
                    metrics.observe("soak.latency_us",
                                    int(elapsed * 1e6))
                    metrics.observe(
                        "soak.warm_latency_us" if warm
                        else "soak.cold_latency_us",
                        int(elapsed * 1e6))
        except Exception as error:
            # A client that cannot even connect abandons its strided
            # allotment; those requests count as dropped.
            with lock:
                report.errors.append(
                    f"client {worker_index}: {error}")
            metrics.inc("soak.client_failures")

    threads = [
        threading.Thread(target=worker, args=(i,),
                         name=f"soak-client-{i:04d}", daemon=True)
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    began = time.perf_counter()
    start_gate.set()
    for thread in threads:
        thread.join()
    report.wall_seconds = time.perf_counter() - began
    metrics.gauge("soak.qps", report.qps)
    if tracer is not NULL_DTRACER:
        tracer.close()
    return report
