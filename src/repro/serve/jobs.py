"""Job-layer types for the batched compilation service.

A :class:`JobRequest` names one unit of work — one program under one
grid cell — in plain, hashable data, so identical requests submitted
while the first is still in flight collapse onto one computation.  A
:class:`JobHandle` is the caller's ticket: it resolves exactly once,
either with a :class:`~repro.evaluation.engine.CellResult` or with an
error, and :meth:`JobHandle.result` blocks until then.  Completion
callbacks (:meth:`JobHandle.add_done_callback`) let event-driven
callers — the asyncio front-end, the fleet's retry chain — react
without parking a thread per pending job.

The error taxonomy mirrors the service's failure edges:

* :class:`ServiceSaturatedError` — the bounded intake queue is full
  (backpressure; retry later or raise ``max_pending``);
* :class:`ServiceClosedError` — submitted after shutdown began, or the
  job was cancelled by a non-draining shutdown;
* :class:`JobFailedError` — the job exhausted its retry budget.  Its
  ``retryable`` flag separates infrastructure failures (worker crash or
  timeout every attempt — another shard or a restarted pool may well
  succeed) from deterministic job failures (replaying the job fails
  identically, so nothing above this layer should retry it);
* :class:`ShardDownError` — the fleet routed to a shard that is down
  and could not be restarted within the retry budget.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.evaluation.engine import CellResult, GridCell


class ServeError(Exception):
    """Base class for compilation-service errors."""


class ServiceSaturatedError(ServeError):
    """The bounded intake queue is full (backpressure)."""


class ServiceClosedError(ServeError):
    """The service no longer accepts or will not finish this work."""


class JobFailedError(ServeError):
    """A job failed every dispatch attempt.

    ``retryable=True`` means the failures were infrastructural (crash or
    timeout each time) — a fresh pool or another shard may succeed.
    ``retryable=False`` means the job itself raised deterministically.
    """

    def __init__(self, message: str, retryable: bool = False):
        super().__init__(message)
        self.retryable = retryable


class ShardDownError(ServeError):
    """The owning shard is down and restarts were exhausted."""


@dataclass(frozen=True)
class JobRequest:
    """One compile request: a program (by text) under one grid cell.

    ``program_text`` is the canonical textual IR
    (:func:`repro.ir.printer.format_program`); None means "the built-in
    benchmark named by ``cell.benchmark``" and the service resolves the
    text itself for keying.

    ``trace_id``/``parent_span_id`` carry the distributed trace context
    (:mod:`repro.obs.distributed`) down through the fleet and service.
    They are observability-only: content keying
    (:func:`repro.serve.router.request_key`) ignores them, so two
    requests for the same work still dedup onto one computation even
    when they belong to different traces.
    """

    cell: GridCell
    program_text: Optional[str] = None
    trace_id: Optional[str] = None
    parent_span_id: Optional[str] = None


@dataclass
class JobHandle:
    """The resolvable future of one submitted job."""

    key: str
    request: JobRequest
    #: True when the result came from a cache tier (store/hot), not the
    #: worker pool.
    cached: bool = False
    #: Dispatch attempts actually spent on this job (0 for cache hits).
    attempts: int = 0
    _event: threading.Event = field(default_factory=threading.Event,
                                    repr=False)
    _result: Optional[CellResult] = field(default=None, repr=False)
    _error: Optional[BaseException] = field(default=None, repr=False)
    _callbacks: List[Callable[["JobHandle"], None]] = field(
        default_factory=list, repr=False)
    _cb_lock: threading.Lock = field(default_factory=threading.Lock,
                                     repr=False)

    def resolve(self, result: CellResult) -> None:
        self._result = result
        self._settle()

    def fail(self, error: BaseException) -> None:
        self._error = error
        self._settle()

    def _settle(self) -> None:
        with self._cb_lock:
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def add_done_callback(
        self, callback: Callable[["JobHandle"], None],
    ) -> None:
        """Run ``callback(handle)`` once the job settles.

        Fires immediately (in the calling thread) when the job already
        settled; otherwise fires in whichever thread resolves the job.
        Callbacks must not block — the fleet and front-end use them to
        hand completions to their own executors.
        """
        with self._cb_lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    @property
    def done(self) -> bool:
        return self._event.is_set()

    @property
    def error(self) -> Optional[BaseException]:
        """The failure, if the job settled unsuccessfully (else None)."""
        return self._error

    def result(self, timeout: Optional[float] = None) -> CellResult:
        """Block until the job resolves; raise its error if it failed."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"job {self.key[:12]} not done within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result
