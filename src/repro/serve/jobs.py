"""Job-layer types for the batched compilation service.

A :class:`JobRequest` names one unit of work — one program under one
grid cell — in plain, hashable data, so identical requests submitted
while the first is still in flight collapse onto one computation.  A
:class:`JobHandle` is the caller's ticket: it resolves exactly once,
either with a :class:`~repro.evaluation.engine.CellResult` or with an
error, and :meth:`JobHandle.result` blocks until then.

The error taxonomy mirrors the service's failure edges:

* :class:`ServiceSaturatedError` — the bounded intake queue is full
  (backpressure; retry later or raise ``max_pending``);
* :class:`ServiceClosedError` — submitted after shutdown began, or the
  job was cancelled by a non-draining shutdown;
* :class:`JobFailedError` — the job exhausted its retry budget (worker
  crash or per-dispatch timeout each time).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.evaluation.engine import CellResult, GridCell


class ServeError(Exception):
    """Base class for compilation-service errors."""


class ServiceSaturatedError(ServeError):
    """The bounded intake queue is full (backpressure)."""


class ServiceClosedError(ServeError):
    """The service no longer accepts or will not finish this work."""


class JobFailedError(ServeError):
    """A job failed every dispatch attempt (crash/timeout each time)."""


@dataclass(frozen=True)
class JobRequest:
    """One compile request: a program (by text) under one grid cell.

    ``program_text`` is the canonical textual IR
    (:func:`repro.ir.printer.format_program`); None means "the built-in
    benchmark named by ``cell.benchmark``" and the service resolves the
    text itself for keying.
    """

    cell: GridCell
    program_text: Optional[str] = None


@dataclass
class JobHandle:
    """The resolvable future of one submitted job."""

    key: str
    request: JobRequest
    #: True when the result came straight from the artifact store.
    cached: bool = False
    #: Dispatch attempts actually spent on this job (0 for cache hits).
    attempts: int = 0
    _event: threading.Event = field(default_factory=threading.Event,
                                    repr=False)
    _result: Optional[CellResult] = field(default=None, repr=False)
    _error: Optional[BaseException] = field(default=None, repr=False)

    def resolve(self, result: CellResult) -> None:
        self._result = result
        self._event.set()

    def fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> CellResult:
        """Block until the job resolves; raise its error if it failed."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"job {self.key[:12]} not done within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result
