"""The batched compilation service.

:class:`CompileService` turns individual compile requests (one program
under one grid cell) into batched, cached, fault-tolerant work:

* **dedup** — a request whose key is already in flight shares the
  existing :class:`~repro.serve.jobs.JobHandle` instead of recomputing;
* **store first** — with an :class:`~repro.serve.store.ArtifactStore`
  attached, submission checks the store before queueing anything, so a
  warm cache answers without touching the worker pool;
* **batching** — queued jobs are coalesced into batches and grouped by
  (program, scheme) exactly like the PR-1 engine's parallel path, so
  one dispatch clones and forms each program once and schedules it for
  every (machine, heuristic) of the group; the worker *is* the engine's
  (:func:`repro.evaluation.engine._run_task`), which is what makes
  service results bit-identical to :func:`~repro.api.evaluate_grid`;
* **retry** — a dispatch that times out or loses its worker process
  (``BrokenProcessPool``) is retried with exponential backoff up to a
  bounded attempt budget; the pool is recycled first, so one poisoned
  worker cannot wedge the service.  Deterministic worker exceptions
  (the job itself is broken) fail immediately — retrying cannot fix
  them;
* **backpressure** — the intake queue is bounded; a full queue makes
  ``submit`` raise :class:`~repro.serve.jobs.ServiceSaturatedError`
  rather than buffering unboundedly;
* **graceful shutdown** — ``close(drain=True)`` finishes everything
  already accepted, ``close(drain=False)`` fails queued jobs with
  :class:`~repro.serve.jobs.ServiceClosedError`; either way the
  dispatcher exits and the pool is torn down.

Every job resolution happens under a trace span
(``serve.job``), and the service counts submissions, dedups, cache
hits, dispatches, retries, timeouts, and failures into its metrics
registry.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from concurrent.futures import ProcessPoolExecutor, TimeoutError as _FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.evaluation.engine import (
    CellResult,
    GridCell,
    _merge_partials,
    _run_task,
)
from repro.ir.function import Program
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER
from repro.serve.jobs import (
    JobFailedError,
    JobHandle,
    JobRequest,
    ServiceClosedError,
    ServiceSaturatedError,
)
from repro.serve.store import ArtifactStore, cell_key

#: Per-process cache of built-in benchmark texts (format_program of the
#: built workload), so keying a benchmark cell builds it at most once.
_builtin_texts: Dict[str, str] = {}


def _builtin_text(name: str) -> str:
    text = _builtin_texts.get(name)
    if text is None:
        from repro.ir.printer import format_program
        from repro.workloads.specint import build_benchmark

        text = format_program(build_benchmark(name))
        _builtin_texts[name] = text
    return text


def resolve_program_text(request: JobRequest) -> str:
    """The canonical IR text a request is keyed (and shipped) by."""
    if request.program_text is not None:
        return request.program_text
    return _builtin_text(request.cell.benchmark)


class _Job:
    """Internal pairing of a handle with its shipping text.

    ``ship_text`` is what crosses the process boundary: the caller's
    program text verbatim, or None for a built-in benchmark — workers
    rebuild those by name, exactly like the engine's parallel path (the
    printed text is canonical for *keying* but rounds profile weights
    to ``%g``, so shipping it would perturb the estimate).
    """

    __slots__ = ("handle", "ship_text")

    def __init__(self, handle: JobHandle, ship_text: Optional[str]):
        self.handle = handle
        self.ship_text = ship_text


def _service_worker(task):
    """Default pool worker: exactly the engine's group-task worker."""
    return _run_task(task)


#: Per-process cache of worker-side distributed tracers, keyed by
#: (trace directory, shard, pid).  The pid key matters: a pool worker is
#: forked from the service process and must not write through an
#: inherited parent handle.
_worker_tracers: Dict[Tuple[Optional[str], Optional[int], int], object] = {}


def _worker_tracer(trace_dir: str, shard: Optional[int]):
    from repro.obs.distributed import DistributedTracer

    key = (trace_dir, shard, os.getpid())
    tracer = _worker_tracers.get(key)
    if tracer is None:
        tracer = DistributedTracer(trace_dir, "worker", shard=shard)
        _worker_tracers[key] = tracer
    return tracer


def _traced_call(worker, trace_dir, shard, specs, task):
    """Run ``worker(task)`` inside per-request ``worker.run_task`` spans.

    ``specs`` is a list of ``(trace_id, parent_span_id)`` pairs — one
    per traced job coalesced into this group task.  The wrapper lives
    *around* the injected worker rather than inside it, so test workers
    (crashers, gated workers) keep their exact signature and payload.
    With no specs or no trace directory this is a plain passthrough.
    """
    if not trace_dir or not specs:
        return worker(task)
    tracer = _worker_tracer(trace_dir, shard)
    bench, scheme = task[0], task[1]
    spans = [
        tracer.start_span("worker.run_task", trace_id=trace_id,
                          parent_span_id=parent, benchmark=bench,
                          scheme=scheme, group_jobs=len(specs))
        for trace_id, parent in specs
    ]
    try:
        return worker(task)
    finally:
        for span in spans:
            span.finish()


class CompileService:
    """Batched, cached, retrying front end over the engine worker pool.

    Args:
        store: Optional artifact store consulted before dispatch and
            populated after; None disables caching.
        jobs: Worker processes in the pool.
        batch_size: Max jobs coalesced into one dispatch round.
        max_pending: Bound of the intake queue (backpressure).
        job_timeout: Seconds one dispatched group may take before the
            attempt counts as failed (None = no timeout).
        retries: Extra attempts after the first for crashed/timed-out
            dispatches.
        backoff: Base of the exponential retry delay (seconds).
        worker: Override of the pool worker function (tests inject
            crashing workers through this seam; must be picklable).
        sleep: Override of the backoff sleep (tests pass a no-op).
        trace_dir: Distributed-trace export directory; when set, jobs
            that carry a trace context get a ``worker.run_task`` span
            written from inside the pool worker process.
        shard: Shard identity stamped on worker spans (None outside a
            fleet).
    """

    def __init__(
        self,
        store: Optional[ArtifactStore] = None,
        jobs: int = 2,
        batch_size: int = 16,
        max_pending: int = 256,
        job_timeout: Optional[float] = None,
        retries: int = 2,
        backoff: float = 0.05,
        metrics=NULL_METRICS,
        tracer=NULL_TRACER,
        worker: Optional[Callable] = None,
        sleep: Callable[[float], None] = time.sleep,
        trace_dir: Optional[str] = None,
        shard: Optional[int] = None,
    ) -> None:
        self.store = store
        self.trace_dir = trace_dir
        self.shard = shard
        self.jobs = max(1, jobs)
        self.batch_size = max(1, batch_size)
        self.job_timeout = job_timeout
        self.retries = max(0, retries)
        self.backoff = backoff
        self.metrics = metrics
        self.tracer = tracer
        self._worker = worker if worker is not None else _service_worker
        self._sleep = sleep
        self._queue: "queue.Queue[_Job]" = queue.Queue(maxsize=max_pending)
        self._inflight: Dict[str, JobHandle] = {}
        self._lock = threading.Lock()
        self._obs_lock = threading.Lock()
        self._closed = False
        self._stop = threading.Event()
        self._executor: Optional[ProcessPoolExecutor] = None
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch",
            daemon=True,
        )
        self._dispatcher.start()

    # -- submission ------------------------------------------------------

    def submit(self, request: JobRequest) -> JobHandle:
        """Enqueue one job; returns its (possibly shared) handle.

        Raises :class:`ServiceClosedError` after shutdown began and
        :class:`ServiceSaturatedError` when the intake queue is full.
        """
        if self._closed:
            raise ServiceClosedError("service is shut down")
        self.metrics.inc("serve.jobs.submitted")
        text = resolve_program_text(request)
        key = cell_key(text, request.cell)
        with self._lock:
            existing = self._inflight.get(key)
            if existing is not None:
                self.metrics.inc("serve.jobs.deduped")
                return existing
            handle = JobHandle(key=key, request=request)
            if self.store is not None:
                cached = self.store.get(key)
                if cached is not None:
                    handle.cached = True
                    handle.resolve(cached)
                    self.metrics.inc("serve.jobs.cache_hits")
                    with self._obs_lock:
                        self.tracer.event("serve.job", key=key[:12],
                                          cached=True)
                    return handle
            self._inflight[key] = handle
        try:
            self._queue.put_nowait(_Job(handle, request.program_text))
        except queue.Full:
            with self._lock:
                self._inflight.pop(key, None)
            self.metrics.inc("serve.jobs.rejected")
            raise ServiceSaturatedError(
                f"intake queue full ({self._queue.maxsize} pending)"
            )
        return handle

    def evaluate(
        self,
        cells: Sequence[GridCell],
        program: Optional[Program] = None,
        program_text: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> List[CellResult]:
        """Submit every cell and block for the results, in input order.

        ``program``/``program_text`` override the built-in benchmark
        lookup for *all* cells (the single-program convenience the
        socket server and the oracle use).
        """
        if program is not None and program_text is None:
            from repro.ir.printer import format_program

            program_text = format_program(program)
        handles = [
            self.submit(JobRequest(cell=cell, program_text=program_text))
            for cell in cells
        ]
        return [handle.result(timeout) for handle in handles]

    # -- dispatcher ------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            try:
                first = self._queue.get(timeout=0.02)
            except queue.Empty:
                continue
            batch = [first]
            while len(batch) < self.batch_size:
                try:
                    batch.append(self._queue.get_nowait())
                except queue.Empty:
                    break
            self._dispatch_batch(batch)
        # A non-draining close fails whatever is still queued.
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                break
            self._resolve_failure(
                job.handle, ServiceClosedError("service shut down"),
                counter="serve.jobs.cancelled",
            )

    def _group_batch(
        self, batch: Sequence[_Job],
    ) -> Dict[Tuple[str, str, Optional[str]], List[_Job]]:
        groups: Dict[Tuple[str, str, Optional[str]], List[_Job]] = {}
        for job in batch:
            cell = job.handle.request.cell
            groups.setdefault(
                (cell.benchmark, cell.scheme, job.ship_text), []
            ).append(job)
        return groups

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.jobs)
        return self._executor

    def _recycle_executor(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def _dispatch_batch(self, batch: Sequence[_Job]) -> None:
        groups = self._group_batch(batch)
        with self._obs_lock:
            span = self.tracer.span("serve.batch", jobs=len(batch),
                                    groups=len(groups))
            span.__enter__()
        try:
            for (bench, scheme, text), jobs in groups.items():
                self._dispatch_group(bench, scheme, text, jobs)
        finally:
            with self._obs_lock:
                span.__exit__(None, None, None)

    def _dispatch_group(self, bench: str, scheme: str,
                        text: Optional[str],
                        jobs: List[_Job]) -> None:
        """Run one (program, scheme) group, retrying crash/timeout."""
        indexed = tuple(
            (index, job.handle.request.cell)
            for index, job in enumerate(jobs)
        )
        # The engine group-task over the whole function range; passing
        # None as the slice end means "all functions" without knowing
        # the count parent-side.  Workers keep a region memo, backed by
        # a store sub-directory when the service is store-backed.
        memo_spec = None
        if os.environ.get("REPRO_REGION_MEMO") != "0":
            if self.store is not None:
                memo_spec = (os.path.join(self.store.directory, "regions"),
                             self.store.max_bytes / (1024 * 1024))
            else:
                memo_spec = (None, 0.0)
        task = (bench, scheme, indexed, 0, None, text, memo_spec)
        trace_specs = []
        if self.trace_dir is not None:
            trace_specs = [
                (job.handle.request.trace_id,
                 job.handle.request.parent_span_id)
                for job in jobs
                if getattr(job.handle.request, "trace_id", None)
            ]
        attempts = self.retries + 1
        error: Optional[BaseException] = None
        retryable = True
        for attempt in range(attempts):
            for job in jobs:
                job.handle.attempts = attempt + 1
            if attempt > 0:
                self.metrics.inc("serve.jobs.retries", len(jobs))
                self._sleep(self.backoff * (2 ** (attempt - 1)))
            self.metrics.inc("serve.dispatches")
            try:
                if trace_specs:
                    future = self._ensure_executor().submit(
                        _traced_call, self._worker, self.trace_dir,
                        self.shard, trace_specs, task,
                    )
                else:
                    future = self._ensure_executor().submit(
                        self._worker, task)
                out, _, _, snapshot, _memo_stats = future.result(
                    timeout=self.job_timeout
                )
            except _FutureTimeout as exc:
                # The worker is wedged mid-task; recycle the pool so the
                # retry does not queue behind it.
                self.metrics.inc("serve.timeouts")
                self._recycle_executor()
                error = exc
                continue
            except BrokenProcessPool as exc:
                self.metrics.inc("serve.worker_crashes")
                self._recycle_executor()
                error = exc
                continue
            except Exception as exc:
                # Deterministic failure inside the job itself: retrying
                # replays it byte-identically, so fail fast — and tell
                # upper layers (the fleet) not to retry either.
                error = exc
                retryable = False
                break
            self.metrics.merge_snapshot(snapshot)
            by_index = dict(out)
            for index, job in enumerate(jobs):
                result = _merge_partials(
                    job.handle.request.cell, by_index[index]
                )
                self._resolve_success(job.handle, result,
                                      attempt=attempt + 1)
            return
        cause = error if error is not None else RuntimeError("dispatch")
        for job in jobs:
            self._resolve_failure(
                job.handle,
                JobFailedError(
                    f"job failed after {attempts} attempt(s): "
                    f"{type(cause).__name__}: {cause}",
                    retryable=retryable,
                ),
                counter="serve.jobs.failed",
            )

    def _resolve_success(self, handle: JobHandle, result: CellResult,
                         attempt: int) -> None:
        if self.store is not None:
            self.store.put(handle.key, result)
        with self._lock:
            self._inflight.pop(handle.key, None)
        with self._obs_lock:
            with self.tracer.span("serve.job", key=handle.key[:12],
                                  benchmark=handle.request.cell.benchmark,
                                  scheme=handle.request.cell.scheme,
                                  machine=handle.request.cell.machine,
                                  heuristic=handle.request.cell.heuristic,
                                  attempt=attempt, cached=False):
                pass
        handle.resolve(result)
        self.metrics.inc("serve.jobs.completed")

    def _resolve_failure(self, handle: JobHandle, error: BaseException,
                         counter: str) -> None:
        with self._lock:
            self._inflight.pop(handle.key, None)
        handle.fail(error)
        self.metrics.inc(counter)

    # -- lifecycle -------------------------------------------------------

    @property
    def alive(self) -> bool:
        """True while the service accepts work and its dispatcher runs
        (the fleet's health checks poll this)."""
        return not self._closed and self._dispatcher.is_alive()

    def flush(self, timeout: Optional[float] = None) -> None:
        """Block until everything currently accepted has resolved."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                pending = list(self._inflight.values())
            if not pending and self._queue.empty():
                return
            remaining = None if deadline is None \
                else max(0.0, deadline - time.monotonic())
            for handle in pending:
                handle._event.wait(remaining)
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError("flush timed out")

    def close(self, drain: bool = True,
              timeout: Optional[float] = None) -> None:
        """Stop the service.

        ``drain=True`` finishes all accepted work first; ``drain=False``
        fails still-queued jobs with :class:`ServiceClosedError` (jobs
        already dispatched still complete).
        """
        if self._closed and not self._dispatcher.is_alive():
            return
        self._closed = True
        if drain:
            self.flush(timeout)
        self._stop.set()
        self._dispatcher.join(timeout)
        if self._executor is not None:
            self._executor.shutdown(wait=drain)
            self._executor = None
        if self.store is not None:
            self.store.sync()

    def __enter__(self) -> "CompileService":
        return self

    def __exit__(self, *exc) -> None:
        self.close(drain=True)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            inflight = len(self._inflight)
        out: Dict[str, object] = {
            "inflight": inflight,
            "queued": self._queue.qsize(),
            "closed": self._closed,
        }
        if self.store is not None:
            out["store"] = self.store.stats()
        return out
