"""Transport-agnostic client for the compile fleet.

:func:`repro.api.connect` returns a :class:`Client`; the endpoint
string (``unix:///path`` or ``tcp://host:port``) is the only thing
that distinguishes a local socket from a TCP fleet.  One client owns
one connection, performs the versioned handshake on connect, and
retries transient failures safely: every compile is keyed by content
(the server dedups in-flight work and serves settled work from its
caches), so resending a request after a dropped connection or a
``SATURATED``/``SHARD_DOWN``/``TIMEOUT`` reply can never run the same
job twice.

The client is deliberately synchronous — one request outstanding per
connection.  Fleet-scale concurrency comes from many clients (see
:mod:`repro.serve.soak`), which is also the shape real callers have.
"""

from __future__ import annotations

import socket
import time
from typing import Dict, Iterable, List, Optional, Sequence

from repro.evaluation.engine import CellResult, GridCell
from repro.ir.printer import format_program
from repro.obs.distributed import NULL_DTRACER
from repro.serve.jobs import ServeError
from repro.serve.wire import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    CompileReply,
    CompileRequest,
    ErrorCode,
    ErrorReply,
    FrameError,
    HealthReply,
    HealthRequest,
    Hello,
    HelloReply,
    PingReply,
    PingRequest,
    Reply,
    Request,
    ShutdownReply,
    ShutdownRequest,
    StatsReply,
    StatsRequest,
    parse_endpoint,
    recv_frame,
    reply_from_wire,
    request_to_wire,
    send_frame,
)
from repro.serve.store import result_from_payload


class ClientError(ServeError):
    """The server answered with a structured error reply."""

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code


#: Error codes worth an idempotent resend (content keying makes the
#: retry safe: an already-accepted request dedups server-side).
RETRYABLE_CODES = frozenset({
    ErrorCode.SATURATED,
    ErrorCode.SHARD_DOWN,
    ErrorCode.TIMEOUT,
})


class Client:
    """One connection to a compile front-end.

    ::

        with connect("tcp://127.0.0.1:7421") as client:
            results = client.evaluate(cells, program)
    """

    def __init__(
        self,
        endpoint,
        *,
        timeout: float = 120.0,
        connect_timeout: float = 10.0,
        retries: int = 3,
        retry_backoff: float = 0.05,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        client_name: str = "repro-client",
        sleep=time.sleep,
        tracer=NULL_DTRACER,
    ) -> None:
        self.endpoint = parse_endpoint(endpoint)
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.max_frame_bytes = max_frame_bytes
        self.client_name = client_name
        self._sleep = sleep
        #: A :class:`~repro.obs.distributed.DistributedTracer` (service
        #: ``client``).  Each :meth:`submit` opens the trace's *root*
        #: span and ships its context on the wire, so the merged trace
        #: hangs every server-side hop under the client's view of the
        #: request.  Defaults to the no-op tracer (no wire overhead).
        self.tracer = tracer if tracer is not None else NULL_DTRACER
        self._sock: Optional[socket.socket] = None
        #: The server's handshake reply (protocol, schema, shard count).
        self.server_info: Optional[HelloReply] = None

    # -- connection ------------------------------------------------------

    def connect(self) -> "Client":
        """Dial the endpoint and perform the version handshake."""
        if self._sock is not None:
            return self
        if self.endpoint.scheme == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.connect_timeout)
            sock.connect(self.endpoint.path)
        else:
            sock = socket.create_connection(
                (self.endpoint.host, self.endpoint.port),
                timeout=self.connect_timeout,
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(self.timeout)
        self._sock = sock
        try:
            reply = self._roundtrip(Hello(
                protocol_version=PROTOCOL_VERSION, client=self.client_name,
            ))
        except BaseException:
            self.close()
            raise
        if isinstance(reply, ErrorReply):
            self.close()
            raise ClientError(reply.code, reply.message)
        if not isinstance(reply, HelloReply):
            self.close()
            raise ClientError(ErrorCode.INTERNAL,
                              f"unexpected handshake reply: {reply!r}")
        self.server_info = reply
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
                self.server_info = None

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def __enter__(self) -> "Client":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- plumbing --------------------------------------------------------

    def _roundtrip(self, request: Request) -> Reply:
        assert self._sock is not None, "client is not connected"
        send_frame(self._sock, request_to_wire(request))
        raw = recv_frame(self._sock, self.max_frame_bytes)
        if raw is None:
            raise ConnectionError("server closed the connection")
        return reply_from_wire(raw)

    def _call(self, request: Request) -> Reply:
        """One request with reconnect-and-resend on transient failure."""
        last: Optional[BaseException] = None
        for attempt in range(self.retries + 1):
            if attempt:
                self._sleep(self.retry_backoff * attempt)
            try:
                self.connect()
                reply = self._roundtrip(request)
            except (ConnectionError, socket.timeout, OSError,
                    FrameError) as error:
                self.close()
                last = error
                continue
            if isinstance(reply, ErrorReply):
                if reply.code in RETRYABLE_CODES:
                    last = ClientError(reply.code, reply.message)
                    continue
                raise ClientError(reply.code, reply.message)
            return reply
        assert last is not None
        raise last

    # -- operations ------------------------------------------------------

    def submit(
        self,
        cell: GridCell,
        *,
        program_text: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> CompileReply:
        """Compile one cell; returns the full reply (result + metadata)."""
        with self.tracer.start_span(
            "client.compile", benchmark=cell.benchmark,
            scheme=cell.scheme, machine=cell.machine,
            heuristic=cell.heuristic, client=self.client_name,
        ) as span:
            reply = self._call(CompileRequest(
                cell=cell, program_text=program_text, timeout=timeout,
                trace_id=span.trace_id, parent_span_id=span.span_id,
            ))
            if not isinstance(reply, CompileReply):
                raise ClientError(ErrorCode.INTERNAL,
                                  f"unexpected compile reply: {reply!r}")
            span.set(shard=reply.shard, source=reply.source,
                     cached=reply.cached)
            return reply

    def evaluate(
        self,
        cells: Sequence[GridCell],
        program=None,
        *,
        program_text: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> List[CellResult]:
        """Compile a batch of cells, preserving order."""
        if program is not None and program_text is None:
            program_text = format_program(program)
        return [
            result_from_payload(
                self.submit(cell, program_text=program_text,
                            timeout=timeout).result)
            for cell in cells
        ]

    def warm(
        self,
        cells: Sequence[GridCell],
        program=None,
        *,
        program_text: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, int]:
        """Drive ``cells`` through the fleet to populate its caches.

        Returns ``{"cells": n, "cached": hits, "computed": misses}``.
        """
        if program is not None and program_text is None:
            program_text = format_program(program)
        cached = computed = 0
        for cell in cells:
            reply = self.submit(cell, program_text=program_text,
                                timeout=timeout)
            if reply.cached:
                cached += 1
            else:
                computed += 1
        return {"cells": cached + computed, "cached": cached,
                "computed": computed}

    def ping(self) -> PingReply:
        reply = self._call(PingRequest())
        if not isinstance(reply, PingReply):
            raise ClientError(ErrorCode.INTERNAL,
                              f"unexpected ping reply: {reply!r}")
        return reply

    def stats(self) -> Dict:
        reply = self._call(StatsRequest())
        if not isinstance(reply, StatsReply):
            raise ClientError(ErrorCode.INTERNAL,
                              f"unexpected stats reply: {reply!r}")
        return reply.stats

    def health(self) -> HealthReply:
        """The server's cheap liveness probe (``health`` op)."""
        reply = self._call(HealthRequest())
        if not isinstance(reply, HealthReply):
            raise ClientError(ErrorCode.INTERNAL,
                              f"unexpected health reply: {reply!r}")
        return reply

    def shutdown(self) -> None:
        """Ask the server to stop (no retry — shutdown is not idempotent
        against a server that already went away)."""
        self.connect()
        reply = self._roundtrip(ShutdownRequest())
        if isinstance(reply, ErrorReply):
            raise ClientError(reply.code, reply.message)
        if not isinstance(reply, ShutdownReply):
            raise ClientError(ErrorCode.INTERNAL,
                              f"unexpected shutdown reply: {reply!r}")
        self.close()


def connect(endpoint, **kwargs) -> Client:
    """Dial a compile front-end and return a connected :class:`Client`.

    Accepts ``unix:///path/to.sock``, ``tcp://host:port``, a bare
    filesystem path (treated as a unix socket), or an
    :class:`~repro.serve.wire.Endpoint`.
    """
    return Client(endpoint, **kwargs).connect()
