"""Asyncio front-end: thousands of clients multiplexed onto the fleet.

:class:`FleetFrontend` listens on one :class:`~repro.serve.wire.Endpoint`
(``unix://`` or ``tcp://``) and speaks the framed, versioned protocol of
:mod:`repro.serve.wire`.  Each connection is one coroutine: handshake,
then a request/reply loop.  Compiles never block the event loop — the
fleet's ``submit`` is a queue put, and completion comes back through
:meth:`~repro.serve.jobs.JobHandle.add_done_callback` bridged onto an
asyncio future with ``call_soon_threadsafe``, so ten thousand pending
compiles cost ten thousand futures, not ten thousand threads.

Failure edges map to structured error codes: a saturated shard answers
``SATURATED`` (the client backs off and retries — the request was not
accepted, so the retry is safe), a dead shard past its restart budget
answers ``SHARD_DOWN``, a deterministically failing job ``JOB_FAILED``,
a malformed message ``BAD_REQUEST``, and a request that outlives its
own deadline ``TIMEOUT`` (the job keeps running; a retry dedups onto it
by content key).  Framing-level corruption closes the connection;
in-frame garbage only costs an error reply.

:class:`FrontendServer` wraps the async front-end in a background
thread with its own event loop — the shape the CLI, the tests, and the
soak harness use.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from typing import Dict, Optional

from repro.obs.distributed import NULL_DTRACER, DistributedTracer
from repro.obs.metrics import NULL_METRICS, RollingHistogram
from repro.serve.events import NULL_EVENTS
from repro.serve.fleet import CompileFleet
from repro.serve.jobs import (
    JobFailedError,
    JobHandle,
    JobRequest,
    ServeError,
    ServiceClosedError,
    ServiceSaturatedError,
    ShardDownError,
)
from repro.serve.store import result_to_payload, store_schema
from repro.serve.wire import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    CompileReply,
    CompileRequest,
    Endpoint,
    ErrorCode,
    ErrorReply,
    FrameError,
    HealthReply,
    HealthRequest,
    Hello,
    HelloReply,
    PingReply,
    PingRequest,
    ProtocolError,
    Reply,
    ShutdownReply,
    ShutdownRequest,
    StatsReply,
    StatsRequest,
    parse_endpoint,
    read_frame,
    reply_to_wire,
    request_from_wire,
    write_frame,
)


def error_code_for(error: BaseException) -> str:
    """Map a service/fleet exception onto its wire error code."""
    if isinstance(error, ServiceSaturatedError):
        return ErrorCode.SATURATED
    if isinstance(error, ShardDownError):
        return ErrorCode.SHARD_DOWN
    if isinstance(error, ServiceClosedError):
        return ErrorCode.SHUTTING_DOWN
    if isinstance(error, JobFailedError):
        return ErrorCode.SHARD_DOWN if error.retryable \
            else ErrorCode.JOB_FAILED
    return ErrorCode.INTERNAL


class FleetFrontend:
    """The asyncio server half; run it inside a running event loop."""

    def __init__(
        self,
        fleet: CompileFleet,
        endpoint,
        *,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        metrics=NULL_METRICS,
        allow_remote_shutdown: bool = True,
        backlog: int = 2048,
        trace_dir: Optional[str] = None,
        events=NULL_EVENTS,
    ) -> None:
        self.fleet = fleet
        self.endpoint = parse_endpoint(endpoint)
        self.max_frame_bytes = max_frame_bytes
        self.metrics = metrics
        self.allow_remote_shutdown = allow_remote_shutdown
        self.backlog = backlog
        self.dtracer = DistributedTracer(trace_dir, "frontend") \
            if trace_dir else NULL_DTRACER
        self.events = events if events is not None else NULL_EVENTS
        #: Rolling per-op latency (µs) over the last minute — the
        #: ``STATS`` reply's ``latency`` section.  Touched only from
        #: the event loop, so no lock.
        self._latency: Dict[str, RollingHistogram] = {}
        self._started_at = time.time()
        #: The actually-bound endpoint (tcp port 0 resolves on start).
        self.bound: Optional[Endpoint] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> Endpoint:
        """Bind and start accepting; returns the bound endpoint."""
        if self.endpoint.scheme == "unix":
            path = self.endpoint.path
            if os.path.exists(path):
                os.unlink(path)
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=path, backlog=self.backlog,
            )
            self.bound = self.endpoint
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.endpoint.host,
                port=self.endpoint.port, backlog=self.backlog,
            )
            sock = self._server.sockets[0]
            host, port = sock.getsockname()[:2]
            self.bound = Endpoint(scheme="tcp", host=host, port=port)
        self._started_at = time.time()
        self.events.emit("frontend.start", endpoint=str(self.bound))
        return self.bound

    def request_shutdown(self) -> None:
        """Make :meth:`wait_shutdown` return (call from the loop)."""
        self._shutdown.set()

    async def wait_shutdown(self) -> None:
        await self._shutdown.wait()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
            self.events.emit("frontend.stop", endpoint=str(self.bound))
            self.dtracer.close()
        if self.endpoint.scheme == "unix" and self.endpoint.path:
            try:
                os.unlink(self.endpoint.path)
            except OSError:
                pass

    # -- one connection --------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        self.metrics.inc("frontend.connections")
        try:
            if not await self._handshake(reader, writer):
                return
            while True:
                try:
                    raw = await read_frame(reader, self.max_frame_bytes)
                except ProtocolError as error:
                    # Bad JSON inside an intact frame: answer, carry on.
                    self.metrics.inc("frontend.bad_requests")
                    self.events.emit("protocol.error", kind="message",
                                     detail=str(error))
                    await write_frame(writer, reply_to_wire(
                        ErrorReply(error.code, str(error))))
                    continue
                except FrameError as error:
                    # Broken byte stream: best-effort answer, hang up.
                    self.metrics.inc("frontend.frame_errors")
                    self.events.emit("protocol.error", kind="frame",
                                     detail=str(error))
                    await write_frame(writer, reply_to_wire(
                        ErrorReply(error.code, str(error))))
                    return
                if raw is None:
                    return
                reply = await self._dispatch(raw)
                await write_frame(writer, reply_to_wire(reply))
                if isinstance(reply, ShutdownReply):
                    self.request_shutdown()
                    return
        except (ConnectionResetError, BrokenPipeError,
                asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _handshake(self, reader, writer) -> bool:
        try:
            raw = await read_frame(reader, self.max_frame_bytes)
        except FrameError as error:
            self.metrics.inc("frontend.frame_errors")
            await write_frame(writer, reply_to_wire(
                ErrorReply(error.code, str(error))))
            return False
        if raw is None:
            return False
        try:
            hello = request_from_wire(raw)
        except ProtocolError:
            hello = None
        if not isinstance(hello, Hello):
            self.metrics.inc("frontend.bad_requests")
            await write_frame(writer, reply_to_wire(ErrorReply(
                ErrorCode.BAD_REQUEST,
                "the first frame must be a hello handshake",
            )))
            return False
        if hello.protocol_version != PROTOCOL_VERSION:
            self.metrics.inc("frontend.version_rejects")
            await write_frame(writer, reply_to_wire(ErrorReply(
                ErrorCode.UNSUPPORTED_VERSION,
                f"server speaks protocol {PROTOCOL_VERSION}, "
                f"client sent {hello.protocol_version}",
            )))
            return False
        await write_frame(writer, reply_to_wire(HelloReply(
            protocol_version=PROTOCOL_VERSION,
            schema=store_schema(),
            shards=self.fleet.shards,
        )))
        return True

    # -- request dispatch ------------------------------------------------

    def _observe_latency(self, op: str, began: float) -> None:
        histogram = self._latency.get(op)
        if histogram is None:
            histogram = self._latency[op] = RollingHistogram()
        histogram.observe(int((time.perf_counter() - began) * 1e6))

    async def _dispatch(self, raw) -> Reply:
        self.metrics.inc("frontend.requests")
        began = time.perf_counter()
        try:
            request = request_from_wire(raw)
        except ProtocolError as error:
            self.metrics.inc("frontend.bad_requests")
            self.events.emit("protocol.error", kind="request",
                             detail=str(error))
            return ErrorReply(error.code, str(error))
        op = str(raw.get("op", "?"))
        try:
            return await self._dispatch_typed(request)
        finally:
            self._observe_latency(op, began)

    async def _dispatch_typed(self, request) -> Reply:
        if isinstance(request, CompileRequest):
            return await self._compile(request)
        if isinstance(request, PingRequest):
            health = self.fleet.health()
            return PingReply(
                protocol_version=PROTOCOL_VERSION,
                schema=store_schema(),
                healthy=bool(health["healthy"]),
                shards=health["shards"],
            )
        if isinstance(request, StatsRequest):
            return StatsReply(self._stats())
        if isinstance(request, HealthRequest):
            health = self.fleet.health()
            return HealthReply(
                healthy=bool(health["healthy"]),
                shards=health["shards"],
                uptime_seconds=round(time.time() - self._started_at, 3),
                pid=os.getpid(),
            )
        if isinstance(request, ShutdownRequest):
            if not self.allow_remote_shutdown:
                return ErrorReply(ErrorCode.BAD_REQUEST,
                                  "remote shutdown is disabled")
            return ShutdownReply()
        if isinstance(request, Hello):
            return ErrorReply(ErrorCode.BAD_REQUEST,
                              "hello is only valid as the first frame")
        return ErrorReply(ErrorCode.INTERNAL, "unroutable request")

    def _stats(self) -> Dict[str, object]:
        """The ``STATS`` payload: the fleet's structural stats at the
        top level (shape-compatible with PR 7 clients) plus ``server``
        identity, the fleet ``metrics`` snapshot, and rolling per-op
        ``latency`` summaries.  Everything here reads state — nothing
        enters the compute path's queues or pools.
        """
        stats = dict(self.fleet.stats())
        stats["server"] = {
            "pid": os.getpid(),
            "uptime_seconds": round(time.time() - self._started_at, 3),
            "protocol_version": PROTOCOL_VERSION,
            "schema": store_schema(),
            "endpoint": str(self.bound or self.endpoint),
        }
        snapshot = getattr(self.fleet, "metrics_snapshot", None)
        if callable(snapshot):
            stats["metrics"] = snapshot()
        stats["latency"] = {
            op: self._latency[op].summary()
            for op in sorted(self._latency)
        }
        return stats

    async def _compile(self, request: CompileRequest) -> Reply:
        loop = asyncio.get_running_loop()
        # The frontend hop of the distributed trace.  A client-sent
        # context is adopted; with none, a trace-enabled server starts
        # its own trace here.  When the server has no tracer the null
        # span's ids are None and the incoming context passes through
        # to the fleet untouched.
        span = self.dtracer.start_span(
            "frontend.request",
            trace_id=request.trace_id,
            parent_span_id=request.parent_span_id,
            benchmark=request.cell.benchmark,
            scheme=request.cell.scheme,
        )
        trace_id = span.trace_id or request.trace_id
        parent_id = span.span_id or request.parent_span_id
        try:
            handle = self.fleet.submit(JobRequest(
                cell=request.cell, program_text=request.program_text,
                trace_id=trace_id, parent_span_id=parent_id,
            ))
        except ServeError as error:
            self.metrics.inc("frontend.rejected")
            span.finish(outcome="rejected",
                        error=type(error).__name__)
            return ErrorReply(error_code_for(error), str(error))
        except Exception as error:
            # The request cannot even be content-keyed (unknown scheme,
            # bad benchmark name, unparsable program): a client bug, not
            # a fleet failure — resending it verbatim cannot succeed.
            self.metrics.inc("frontend.bad_requests")
            span.finish(outcome="bad_request")
            return ErrorReply(ErrorCode.BAD_REQUEST, str(error))
        future: "asyncio.Future[JobHandle]" = loop.create_future()

        def _done(settled: JobHandle) -> None:
            def _complete() -> None:
                if not future.done():
                    future.set_result(settled)
            try:
                loop.call_soon_threadsafe(_complete)
            except RuntimeError:
                pass  # loop already closed mid-shutdown

        handle.add_done_callback(_done)
        try:
            settled = await asyncio.wait_for(future, request.timeout)
        except asyncio.TimeoutError:
            self.metrics.inc("frontend.request_timeouts")
            span.annotate("timeout")
            span.finish(outcome="timeout")
            return ErrorReply(
                ErrorCode.TIMEOUT,
                f"request deadline of {request.timeout}s expired; the "
                f"job is still in flight and a retry will dedup onto it",
            )
        error = settled.error
        if error is not None:
            self.metrics.inc("frontend.failed")
            span.finish(outcome="failed", error=type(error).__name__)
            return ErrorReply(error_code_for(error), str(error))
        self.metrics.inc("frontend.compiles")
        span.finish(
            outcome="ok",
            shard=getattr(settled, "shard", -1),
            source=getattr(settled, "source", "computed"),
            attempts=settled.attempts,
        )
        return CompileReply(
            result=result_to_payload(settled.key, settled.result(0)),
            cached=settled.cached,
            attempts=settled.attempts,
            shard=getattr(settled, "shard", -1),
            source=getattr(settled, "source", "computed"),
        )


class FrontendServer:
    """A front-end on its own thread + event loop (sync facade).

    ::

        fleet = CompileFleet(shards=2, cache_dir=".repro-cache")
        server = FrontendServer(fleet, "tcp://127.0.0.1:0")
        endpoint = server.start()      # the actually-bound endpoint
        ...
        server.stop()                  # or a client sends shutdown
    """

    def __init__(self, fleet: CompileFleet, endpoint, **kwargs) -> None:
        self.frontend = FleetFrontend(fleet, endpoint, **kwargs)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._error: Optional[BaseException] = None

    def start(self, timeout: float = 30.0) -> Endpoint:
        """Start serving; returns the bound endpoint once listening."""
        self._thread = threading.Thread(
            target=self._run, name="repro-frontend", daemon=True,
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise TimeoutError("front-end failed to start in time")
        if self._error is not None:
            raise self._error
        assert self.frontend.bound is not None
        return self.frontend.bound

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        try:
            await self.frontend.start()
        except BaseException as error:  # bind failures surface in start()
            self._error = error
            self._started.set()
            return
        self._started.set()
        try:
            await self.frontend.wait_shutdown()
        finally:
            await self.frontend.close()

    @property
    def endpoint(self) -> Optional[Endpoint]:
        return self.frontend.bound

    def stop(self, timeout: float = 30.0) -> None:
        """Stop accepting connections and join the server thread."""
        if self._loop is not None and self._thread is not None \
                and self._thread.is_alive():
            try:
                self._loop.call_soon_threadsafe(
                    self.frontend.request_shutdown)
            except RuntimeError:
                pass
        self.join(timeout)

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for the server thread (a client shutdown op ends it)."""
        if self._thread is not None:
            self._thread.join(timeout)

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def __enter__(self) -> "FrontendServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
