"""The compile fleet: N sharded services behind one submit surface.

:class:`CompileFleet` scales PR 5's single :class:`CompileService` to a
fleet of worker shards, each exclusively owning one
:class:`~repro.serve.store.ArtifactStore` shard (``<cache>/shard-00``,
``shard-01``, ...) and its own process pool.  Requests route by content
key (:mod:`repro.serve.router`), which makes the whole design correct
by construction: the key determines the answer, so the owner shard is a
pure function of the request and identical requests always meet at the
same shard.

On top of routing the fleet adds the layers a production front end
needs:

* **hot tier** — a bounded in-memory LRU of finished results; the
  steady-state warm hit costs one dict lookup, no disk, no shard;
* **idempotent dedup** — an in-flight map keyed by content key.  A
  client that retries a request the fleet already accepted (dropped
  connection, duplicate submission) collapses onto the existing
  handle; nothing is ever computed or dispatched twice
  (``fleet.deduped``);
* **warm-replica reads** — when the owner shard's store misses, the
  other shards' stores are probed read-only and a hit is adopted into
  the owner (``fleet.replica_reads``).  This is what makes resizing
  the fleet cheap: a key whose owner changed is re-read, not
  recomputed;
* **supervision** — a supervisor thread health-checks every shard and
  restarts dead ones (a fresh :class:`CompileService` over the same
  store — PR 5's executor-recycling machinery handles the pool level,
  this handles the service level).  A shard dying mid-batch fails only
  its in-flight keys; those are retried on the restarted shard
  (``fleet.shard_retries``), every other shard's queue untouched.
  Only *infrastructure* failures are retried
  (:class:`JobFailedError` ``retryable``/:class:`ServiceClosedError`);
  a deterministically failing job fails fast, exactly once;
* **per-shard backpressure** — a saturated shard raises
  :class:`ServiceSaturatedError` from ``submit`` without touching the
  other shards, so one hot key range cannot wedge the fleet.

Results remain bit-identical to :func:`repro.api.evaluate_grid` on
every path: the shards run the engine's own worker, the stores
round-trip losslessly, and the hot tier holds the very objects the
shards resolved.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from dataclasses import replace as _dc_replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.evaluation.engine import CellResult, GridCell
from repro.ir.function import Program
from repro.obs.distributed import NULL_DTRACER, DistributedTracer
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.serve.events import NULL_EVENTS
from repro.serve.jobs import (
    JobFailedError,
    JobHandle,
    JobRequest,
    ServiceClosedError,
    ServiceSaturatedError,
    ShardDownError,
)
from repro.serve.router import KeyRouter, request_key
from repro.serve.service import CompileService
from repro.serve.store import ArtifactStore

_STOP = object()


class _LockedMetrics:
    """A registry adapter serializing updates from many shard threads.

    The plain :class:`~repro.obs.metrics.MetricsRegistry` is mutated
    lock-free on the (single-threaded) pipeline hot path; a fleet has N
    dispatcher threads, the supervisor, and the front-end loop all
    counting into one registry, so read-modify-write updates need a
    lock to stay exact.
    """

    __slots__ = ("_inner", "_lock")

    def __init__(self, inner):
        self._inner = inner
        self._lock = threading.Lock()

    def inc(self, name: str, value: int = 1) -> None:
        with self._lock:
            self._inner.inc(name, value)

    def gauge(self, name: str, value: float, mode=None) -> None:
        with self._lock:
            self._inner.gauge(name, value, mode=mode)

    def observe(self, name: str, value) -> None:
        with self._lock:
            self._inner.observe(name, value)

    def merge(self, other) -> None:
        with self._lock:
            self._inner.merge(other)

    def merge_snapshot(self, data) -> None:
        with self._lock:
            self._inner.merge_snapshot(data)


class _TeeMetrics:
    """Fan every update out to the fleet's own registry *and* the
    caller's.

    The fleet must be able to answer ``STATS`` with a metrics snapshot
    whether or not the embedding application passed a registry of its
    own, so it always keeps one; a user registry (the CLI's
    ``--metrics`` file, the benchmarks') sees the same stream.
    """

    __slots__ = ("_sinks",)

    def __init__(self, *sinks):
        self._sinks = [
            sink for sink in sinks
            if sink is not None and sink is not NULL_METRICS
        ]

    def inc(self, name: str, value: int = 1) -> None:
        for sink in self._sinks:
            sink.inc(name, value)

    def gauge(self, name: str, value: float, mode=None) -> None:
        for sink in self._sinks:
            try:
                sink.gauge(name, value, mode=mode)
            except TypeError:  # pre-mode registry duck types
                sink.gauge(name, value)

    def observe(self, name: str, value) -> None:
        for sink in self._sinks:
            sink.observe(name, value)

    def merge(self, other) -> None:
        for sink in self._sinks:
            sink.merge(other)

    def merge_snapshot(self, data) -> None:
        for sink in self._sinks:
            sink.merge_snapshot(data)


@dataclass
class FleetHandle(JobHandle):
    """A fleet-level job handle with routing provenance."""

    #: Index of the shard that (last) ran the job; -1 for hot hits.
    shard: int = -1
    #: Fleet-level retry rounds spent (shard deaths survived).
    fleet_attempts: int = 0
    #: Where the result came from: ``hot`` | ``store`` | ``computed``.
    source: str = "computed"
    #: The open ``shard.compile`` span of the current dispatch attempt
    #: (observability only; None when the request is untraced).
    dspan: object = field(default=None, repr=False)


class _Shard:
    """One worker shard: a service plus the store it exclusively owns."""

    __slots__ = ("index", "store", "service", "up", "generation")

    def __init__(self, index: int, store: Optional[ArtifactStore],
                 service: CompileService):
        self.index = index
        self.store = store
        self.service = service
        self.up = True
        self.generation = 0


class CompileFleet:
    """Content-key-sharded fleet of :class:`CompileService` workers.

    Args:
        shards: Worker shard count (each shard = one service + one
            store shard + one process pool).
        cache_dir: Root of the sharded persistent store; None disables
            the disk tier (hot tier and dedup still apply).
        cache_max_mb: Total store bound, split evenly across shards.
        jobs: Worker processes *per shard*.
        batch_size / max_pending / job_timeout / retries: Per-shard
            :class:`CompileService` knobs (see its docstring).
        shard_retries: Fleet-level retry budget per request across
            shard failures (restart + resubmit rounds).
        hot_cache: Entry bound of the in-memory result tier (0 = off).
        health_interval: Seconds between supervisor health sweeps.
        service_kwargs: Extra :class:`CompileService` keyword arguments
            (tests inject crashing workers and no-op sleeps here).
        trace_dir: Distributed-trace export directory
            (:mod:`repro.obs.distributed`); enables ``shard.compile``
            spans here and ``worker.run_task`` spans in the pools for
            requests that carry a trace context.
        events: An :class:`~repro.serve.events.EventLog` receiving
            fleet lifecycle events (shard start/death/restart, retries,
            evictions); defaults to the shared no-op.
    """

    def __init__(
        self,
        shards: int = 2,
        cache_dir: Optional[str] = None,
        cache_max_mb: float = 256.0,
        jobs: int = 1,
        batch_size: int = 16,
        max_pending: int = 256,
        job_timeout: Optional[float] = None,
        retries: int = 2,
        shard_retries: int = 2,
        hot_cache: int = 4096,
        health_interval: float = 0.5,
        retry_backoff: float = 0.02,
        metrics=NULL_METRICS,
        tracer=NULL_TRACER,
        sleep: Callable[[float], None] = time.sleep,
        service_kwargs: Optional[Dict[str, object]] = None,
        trace_dir: Optional[str] = None,
        events=NULL_EVENTS,
    ) -> None:
        self.router = KeyRouter(shards)
        #: The fleet's own registry — always live, so the stats plane
        #: can snapshot counters/gauges even when the embedder passed no
        #: registry.  User metrics see the same stream through the tee.
        self.own_metrics = MetricsRegistry()
        self.metrics = _LockedMetrics(_TeeMetrics(self.own_metrics,
                                                  metrics))
        self.tracer = tracer
        self.trace_dir = trace_dir
        self.dtracer = DistributedTracer(trace_dir, "fleet") \
            if trace_dir else NULL_DTRACER
        self.events = events if events is not None else NULL_EVENTS
        self.jobs = jobs
        self.batch_size = batch_size
        self.max_pending = max_pending
        self.job_timeout = job_timeout
        self.retries = retries
        self.shard_retries = max(0, shard_retries)
        self.hot_cache = max(0, hot_cache)
        self.health_interval = health_interval
        self.retry_backoff = retry_backoff
        self._sleep = sleep
        self._service_kwargs = dict(service_kwargs or {})
        self._hot: "OrderedDict[str, CellResult]" = OrderedDict()
        self._hot_bytes = 0
        self._hot_lock = threading.Lock()
        self._inflight: Dict[str, FleetHandle] = {}
        self._lock = threading.Lock()
        self._restart_lock = threading.Lock()
        self._closed = False       # no new submissions
        self._stopping = False     # no more fleet-level retries
        self._shards: List[_Shard] = []
        for index in range(shards):
            store = None
            if cache_dir is not None:
                store = ArtifactStore(
                    os.path.join(cache_dir, f"shard-{index:02d}"),
                    max_mb=cache_max_mb / shards,
                )
            shard = _Shard(index, store, service=None)  # type: ignore
            shard.service = self._make_service(shard)
            self._shards.append(shard)
            self.events.emit("shard.start", shard=index, generation=0)
        self._events: "queue.Queue[object]" = queue.Queue()
        self._supervisor = threading.Thread(
            target=self._supervise, name="repro-fleet-supervisor",
            daemon=True,
        )
        self._supervisor.start()
        self.events.emit("fleet.start", shards=shards, jobs=jobs)

    # -- shard lifecycle -------------------------------------------------

    def _make_service(self, shard: _Shard) -> CompileService:
        return CompileService(
            store=shard.store, jobs=self.jobs,
            batch_size=self.batch_size, max_pending=self.max_pending,
            job_timeout=self.job_timeout, retries=self.retries,
            metrics=self.metrics, tracer=self.tracer,
            trace_dir=self.trace_dir, shard=shard.index,
            **self._service_kwargs,
        )

    def _restart_shard(self, shard: _Shard) -> None:
        with self._restart_lock:
            if shard.up and shard.service.alive:
                return
            try:
                shard.service.close(drain=False, timeout=5.0)
            except Exception:
                pass
            shard.service = self._make_service(shard)
            shard.generation += 1
            shard.up = True
        self.metrics.inc("fleet.shard_restarts")
        self.events.emit("shard.restart", shard=shard.index,
                         generation=shard.generation)

    def kill_shard(self, index: int, timeout: float = 30.0) -> None:
        """Abruptly take one shard down (fault injection / ops drills).

        Its queued jobs fail with :class:`ServiceClosedError` and are
        retried by the supervisor on the restarted shard; jobs already
        dispatched to the pool still complete.  Other shards never
        notice.
        """
        shard = self._shards[index]
        shard.up = False
        self.metrics.inc("fleet.shard_kills")
        self.events.emit("shard.kill", shard=index,
                         generation=shard.generation)
        shard.service.close(drain=False, timeout=timeout)

    def health(self) -> Dict[str, object]:
        """Liveness of every shard (the ``ping`` op's payload)."""
        shards = {}
        healthy = True
        for shard in self._shards:
            alive = shard.up and shard.service.alive
            healthy = healthy and alive
            shards[str(shard.index)] = {
                "up": shard.up,
                "alive": shard.service.alive,
                "generation": shard.generation,
            }
        return {"healthy": healthy and not self._closed, "shards": shards}

    # -- the hot tier ----------------------------------------------------

    def _hot_get(self, key: str) -> Optional[CellResult]:
        if not self.hot_cache:
            return None
        with self._hot_lock:
            result = self._hot.get(key)
            if result is not None:
                self._hot.move_to_end(key)
            return result

    @staticmethod
    def _estimate_bytes(result: CellResult) -> int:
        # Flat-cost estimate of one hot entry: the CellResult object +
        # its per-region schedule-length tuple.  Exact accounting would
        # need sys.getsizeof recursion on the hot path; occupancy
        # trends, not audits, are what the stats plane wants.
        return 200 + 8 * len(result.schedule_lengths)

    def _hot_put(self, key: str, result: CellResult) -> None:
        if not self.hot_cache:
            return
        evicted = 0
        with self._hot_lock:
            if key not in self._hot:
                self._hot_bytes += self._estimate_bytes(result)
            self._hot[key] = result
            self._hot.move_to_end(key)
            while len(self._hot) > self.hot_cache:
                _, old = self._hot.popitem(last=False)
                self._hot_bytes -= self._estimate_bytes(old)
                evicted += 1
        if evicted:
            self.metrics.inc("fleet.hot_evictions", evicted)
            self.events.emit("hot.evict", evicted=evicted)

    # -- submission ------------------------------------------------------

    def submit(self, request: JobRequest) -> FleetHandle:
        """Route one request to its owner shard; returns its handle.

        Identical in-flight requests share one handle (idempotency by
        content key); hot-tier hits resolve immediately.  Raises
        :class:`ServiceSaturatedError` when the owner shard's intake is
        full (the request was NOT accepted — safe to retry) and
        :class:`ServiceClosedError` after shutdown began.
        """
        if self._closed:
            raise ServiceClosedError("fleet is shut down")
        self.metrics.inc("fleet.requests")
        key = request_key(request)
        hot = self._hot_get(key)
        if hot is not None:
            self.metrics.inc("fleet.hot_hits")
            if request.trace_id:
                self.dtracer.start_span(
                    "fleet.hot", trace_id=request.trace_id,
                    parent_span_id=request.parent_span_id,
                    key=key[:12],
                ).finish(source="hot")
            handle = FleetHandle(key=key, request=request, cached=True,
                                 source="hot")
            handle.resolve(hot)
            return handle
        with self._lock:
            existing = self._inflight.get(key)
            if existing is not None:
                self.metrics.inc("fleet.deduped")
                return existing
            handle = FleetHandle(key=key, request=request)
            self._inflight[key] = handle
        try:
            self._dispatch(handle)
        except Exception as error:
            with self._lock:
                self._inflight.pop(key, None)
            if isinstance(error, ServiceSaturatedError):
                self.events.emit("request.saturated", key=key[:12])
            raise
        return handle

    def evaluate(
        self,
        cells: Sequence[GridCell],
        program: Optional[Program] = None,
        program_text: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> List[CellResult]:
        """Submit every cell and block for the results, in input order."""
        if program is not None and program_text is None:
            from repro.ir.printer import format_program

            program_text = format_program(program)
        handles = [
            self.submit(JobRequest(cell=cell, program_text=program_text))
            for cell in cells
        ]
        return [handle.result(timeout) for handle in handles]

    # -- routing ---------------------------------------------------------

    def _replica_read(self, owner: _Shard, key: str) -> None:
        """Adopt ``key`` into the owner's store from any warm replica."""
        store = owner.service.store
        if store is None or key in store:
            return
        for other in self._shards:
            replica = other.service.store
            if other is owner or replica is None or key not in replica:
                continue
            result = replica.get(key)
            if result is not None:
                store.put(key, result)
                self.metrics.inc("fleet.replica_reads")
                return

    def _dispatch(self, handle: FleetHandle) -> None:
        """Submit ``handle`` to its owner shard (restarting it first if
        it is down); chains completion back through the fleet."""
        shard = self._shards[self.router.shard_for(handle.key)]
        span = None
        if handle.request.trace_id:
            # One span per dispatch attempt; a supervisor retry after a
            # shard death opens a fresh one carrying the restart mark.
            span = self.dtracer.start_span(
                "shard.compile", trace_id=handle.request.trace_id,
                parent_span_id=handle.request.parent_span_id,
                shard=shard.index, generation=shard.generation,
                fleet_attempt=handle.fleet_attempts,
            )
            if handle.fleet_attempts > 0:
                span.annotate("supervisor.restart")
            handle.dspan = span
        for _ in range(2):
            if not shard.up or not shard.service.alive:
                self._restart_shard(shard)
                if span is not None:
                    span.annotate("supervisor.restart")
                    span.set(generation=shard.generation)
            self._replica_read(shard, handle.key)
            request = handle.request
            if span is not None and span.span_id is not None:
                # Reparent the inner request under this dispatch span so
                # the pool worker's span nests beneath it.
                request = _dc_replace(request,
                                      parent_span_id=span.span_id)
            try:
                inner = shard.service.submit(request)
            except ServiceClosedError:
                # Lost a race with the shard going down; restart once.
                shard.up = False
                continue
            handle.shard = shard.index
            inner.add_done_callback(
                lambda done, h=handle: self._on_inner_done(h, done)
            )
            return
        if span is not None:
            span.finish(outcome="shard_down")
            handle.dspan = None
        raise ShardDownError(
            f"shard {shard.index} would not accept work after a restart"
        )

    def _on_inner_done(self, handle: FleetHandle,
                       inner: JobHandle) -> None:
        error = inner.error
        span, handle.dspan = handle.dspan, None
        if error is None:
            handle.cached = inner.cached
            handle.attempts = inner.attempts
            handle.source = "store" if inner.cached else "computed"
            if span is not None:
                span.finish(outcome="ok", source=handle.source,
                            attempts=handle.attempts)
            self._finish(handle, inner.result(0))
            return
        retryable = isinstance(error, ServiceClosedError) or (
            isinstance(error, JobFailedError) and error.retryable
        )
        if retryable and not self._stopping \
                and handle.fleet_attempts < self.shard_retries:
            handle.fleet_attempts += 1
            self.metrics.inc("fleet.shard_retries")
            self.events.emit("request.retry", key=handle.key[:12],
                             shard=handle.shard,
                             attempt=handle.fleet_attempts,
                             error=type(error).__name__)
            if span is not None:
                span.annotate("retry.scheduled")
                span.finish(outcome="retry",
                            error=type(error).__name__)
            self._events.put(("retry", handle))
            return
        if span is not None:
            span.finish(outcome="failed", error=type(error).__name__)
        self._fail(handle, error)

    def _finish(self, handle: FleetHandle, result: CellResult) -> None:
        self._hot_put(handle.key, result)
        with self._lock:
            self._inflight.pop(handle.key, None)
        self.metrics.inc("fleet.completed")
        handle.resolve(result)

    def _fail(self, handle: FleetHandle, error: BaseException) -> None:
        with self._lock:
            self._inflight.pop(handle.key, None)
        self.metrics.inc("fleet.failed")
        self.events.emit("request.failed", key=handle.key[:12],
                         shard=handle.shard,
                         error=type(error).__name__)
        handle.fail(error)

    # -- supervision -----------------------------------------------------

    def _supervise(self) -> None:
        while True:
            try:
                event = self._events.get(timeout=self.health_interval)
            except queue.Empty:
                self._health_sweep()
                continue
            if event is _STOP:
                break
            _, handle = event
            self._sleep(self.retry_backoff)
            try:
                self._dispatch(handle)
            except ServiceSaturatedError as error:
                if not self._stopping \
                        and handle.fleet_attempts < self.shard_retries:
                    handle.fleet_attempts += 1
                    self.metrics.inc("fleet.shard_retries")
                    self._events.put(("retry", handle))
                else:
                    self._fail(handle, error)
            except Exception as error:  # ShardDownError and surprises
                self._fail(handle, error)
        # Fail whatever retries were still queued behind the sentinel.
        while True:
            try:
                event = self._events.get_nowait()
            except queue.Empty:
                break
            if event is _STOP:
                continue
            self._fail(event[1], ServiceClosedError("fleet shut down"))

    def _health_sweep(self) -> None:
        for shard in self._shards:
            if shard.up and not shard.service.alive:
                shard.up = False
                self.metrics.inc("fleet.shard_deaths")
                self.events.emit("shard.death", shard=shard.index,
                                 generation=shard.generation)
            if not shard.up and not self._closed:
                self._restart_shard(shard)

    # -- lifecycle -------------------------------------------------------

    def flush(self, timeout: Optional[float] = None) -> None:
        """Block until everything currently accepted has resolved."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                pending = list(self._inflight.values())
            if not pending:
                return
            remaining = None if deadline is None \
                else max(0.0, deadline - time.monotonic())
            for handle in pending:
                handle._event.wait(remaining)
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError("fleet flush timed out")

    def close(self, drain: bool = True,
              timeout: Optional[float] = None) -> None:
        """Stop the fleet.

        ``drain=True`` finishes accepted work first (shard retries stay
        live until the drain completes); ``drain=False`` fails queued
        and retrying jobs with :class:`ServiceClosedError`.
        """
        if self._closed and not self._supervisor.is_alive():
            return
        self._closed = True
        if drain:
            self.flush(timeout)
        self._stopping = True
        self._events.put(_STOP)
        self._supervisor.join(timeout)
        for shard in self._shards:
            shard.service.close(drain=drain, timeout=timeout)
        self.events.emit("fleet.close", drained=drain)
        self.dtracer.close()

    def __enter__(self) -> "CompileFleet":
        return self

    def __exit__(self, *exc) -> None:
        self.close(drain=True)

    # -- introspection ---------------------------------------------------

    @property
    def shards(self) -> int:
        return self.router.shards

    def stats(self) -> Dict[str, object]:
        with self._lock:
            inflight = len(self._inflight)
        with self._hot_lock:
            hot_entries = len(self._hot)
            hot_bytes = self._hot_bytes
        return {
            "shards": [
                {
                    "index": shard.index,
                    "up": shard.up,
                    "generation": shard.generation,
                    "service": shard.service.stats(),
                }
                for shard in self._shards
            ],
            "router": {"shards": self.router.shards},
            "hot": {"entries": hot_entries, "max": self.hot_cache,
                    "bytes": hot_bytes},
            "inflight": inflight,
            "closed": self._closed,
        }

    def metrics_snapshot(self) -> Dict[str, object]:
        """The fleet's own registry as a JSON-ready snapshot (the
        ``STATS`` op's ``metrics`` section), with point-in-time fleet
        state refreshed as ``last``-mode gauges first.

        Counters (requests, dedups, restarts, retries) accumulate over
        the fleet's life; ``memo.*`` gauges arrive through worker
        snapshot merges in ``max`` mode; the gauges set here describe
        *now* and therefore overwrite on every refresh.
        """
        with self._lock:
            inflight = len(self._inflight)
        with self._hot_lock:
            hot_entries = len(self._hot)
            hot_bytes = self._hot_bytes
        queued = 0
        for shard in self._shards:
            try:
                queued += int(shard.service.stats().get("queued", 0))
            except Exception:
                pass
        self.metrics.gauge("fleet.inflight", inflight, mode="last")
        self.metrics.gauge("fleet.queued", queued, mode="last")
        self.metrics.gauge("fleet.hot.entries", hot_entries,
                           mode="last")
        self.metrics.gauge("fleet.hot.bytes", hot_bytes, mode="last")
        with self.metrics._lock:
            return self.own_metrics.snapshot()
