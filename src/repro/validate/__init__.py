"""Differential validation: generate → cross-check → shrink.

The library has four independent executions of the same program — the
sequential interpreter, the VLIW simulator, the static schedule
estimate, and the evaluation engine's serial/parallel paths — and the
paper's claims rest on them agreeing.  This package stress-tests that
agreement with seeded random programs:

* :mod:`repro.validate.generator` — deterministic random well-formed IR
  and mini-C programs (branches, loops, calls, predication, memory,
  pathological CFG shapes), terminating by construction;
* :mod:`repro.validate.oracle` — the differential checks per grid cell
  (scheme × machine × heuristic);
* :mod:`repro.validate.shrink` — delta-debugging minimizer producing
  structured JSON failure reports;
* :mod:`repro.validate.runner` — seed fan-out campaigns behind
  ``repro validate``.

Caught real: the PR that introduced this package used it to find (and
fix) the scheduler silently stripping guards from pre-predicated input
ops in ``schedule/prep.py``.
"""

from repro.validate.generator import GeneratedProgram, generate
from repro.validate.oracle import (
    Cell,
    DEFAULT_HEURISTICS,
    DEFAULT_MACHINES,
    DEFAULT_SCHEMES,
    Mismatch,
    OracleReport,
    check_generated,
    check_region_memo_identity,
    check_store_identity,
    default_grid,
)
from repro.validate.shrink import FailureReport, Shrinker, minimize_failure
from repro.validate.runner import (
    SeedOutcome,
    ValidationSummary,
    parse_grid_spec,
    run_validation,
    write_reports,
)

__all__ = [
    "GeneratedProgram",
    "generate",
    "Cell",
    "Mismatch",
    "OracleReport",
    "check_generated",
    "check_region_memo_identity",
    "check_store_identity",
    "default_grid",
    "DEFAULT_SCHEMES",
    "DEFAULT_MACHINES",
    "DEFAULT_HEURISTICS",
    "FailureReport",
    "Shrinker",
    "minimize_failure",
    "SeedOutcome",
    "ValidationSummary",
    "parse_grid_spec",
    "run_validation",
    "write_reports",
]
