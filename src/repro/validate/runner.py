"""Validation campaigns: seed fan-out, shrinking, and JSON reports.

A campaign runs the differential oracle over a range of generator seeds,
optionally in parallel.  Workers receive only ``(seed, grid, flags)`` —
the generator is deterministic, so a worker regenerates the program from
its seed exactly as the parent would, the same trick the PR-1 engine
uses to keep programs out of the pickle stream.  A failing seed is
minimized in the worker (the shrinker only needs the regenerable
program) and comes back as a structured :class:`FailureReport`.

The engine-identity oracle check spawns its own worker pool, which can't
nest inside a campaign worker (daemonic processes may not fork), so
parallel campaigns sample it with ``jobs=1`` (serial-vs-per-cell only)
while serial campaigns also exercise the parallel engine path.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import NULL_METRICS, metrics_scope
from repro.obs.tracer import NULL_TRACER
from repro.validate.generator import generate
from repro.validate.oracle import (
    Cell,
    DEFAULT_HEURISTICS,
    DEFAULT_MACHINES,
    DEFAULT_SCHEMES,
    OracleReport,
    check_generated,
    default_grid,
)
from repro.validate.shrink import FailureReport, minimize_failure

#: Check engine identity on every Nth seed (pool spawns are expensive).
ENGINE_SAMPLE_EVERY = 10


def parse_grid_spec(spec: Optional[str]) -> List[Cell]:
    """Parse ``schemes=bb,slr;machines=4U,8U;heuristics=global_weight``.

    Axes may appear in any order; omitted axes keep their defaults.
    """
    axes: Dict[str, Sequence[str]] = {
        "schemes": DEFAULT_SCHEMES,
        "machines": DEFAULT_MACHINES,
        "heuristics": DEFAULT_HEURISTICS,
    }
    if spec:
        for part in spec.split(";"):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"bad grid axis {part!r}; expected axis=v1,v2"
                )
            axis, _, values = part.partition("=")
            axis = axis.strip()
            if axis not in axes:
                raise ValueError(
                    f"unknown grid axis {axis!r}; use one of {sorted(axes)}"
                )
            axes[axis] = [v.strip() for v in values.split(",") if v.strip()]
    return default_grid(
        schemes=axes["schemes"],
        machines=axes["machines"],
        heuristics=axes["heuristics"],
    )


@dataclass
class SeedOutcome:
    """What one seed produced (picklable)."""

    seed: int
    ok: bool
    cells_checked: int
    mismatch_count: int
    failure: Optional[FailureReport] = None


@dataclass
class ValidationSummary:
    """Aggregate of a whole campaign."""

    seeds: int = 0
    cells_checked: int = 0
    outcomes: List[SeedOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def failures(self) -> List[SeedOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]


def _run_seed(
    seed: int,
    grid: Sequence[Cell],
    engine_jobs: int,
    shrink: bool,
    max_trials: int,
) -> SeedOutcome:
    generated = generate(seed)
    # The store- and region-memo-identity checks ride the same sampling
    # cadence as the engine check: all certify an alternate evaluation
    # route without a nested pool, so they are safe on parallel
    # campaigns too.
    report = check_generated(generated, grid=grid, engine_jobs=engine_jobs,
                             store_check=engine_jobs > 0,
                             region_memo_check=engine_jobs > 0,
                             analysis_check=engine_jobs > 0)
    failure = None
    if report.mismatches and shrink:
        failure = minimize_failure(
            generated, report.mismatches[0], max_trials=max_trials,
        )
    return SeedOutcome(
        seed=seed,
        ok=report.ok,
        cells_checked=report.cells_checked,
        mismatch_count=len(report.mismatches),
        failure=failure,
    )


def _seed_worker(task: Tuple[int, Tuple[Cell, ...], int, bool, int]):
    return _run_seed(*task)


def run_validation(
    seeds: Sequence[int],
    grid: Optional[Sequence[Cell]] = None,
    jobs: int = 1,
    shrink: bool = True,
    max_trials: int = 3000,
    engine_every: int = ENGINE_SAMPLE_EVERY,
    report_dir: Optional[str] = None,
    progress: Optional[Callable[[SeedOutcome], None]] = None,
    metrics=NULL_METRICS,
    tracer=NULL_TRACER,
) -> ValidationSummary:
    """Run the oracle over ``seeds``; minimize and report any failure.

    ``metrics`` counts campaign totals (``validate.*``, recorded in the
    parent from the outcomes, so they are mode-independent); a serial
    campaign additionally collects the deep pipeline counters of every
    seed's oracle runs via the active-registry scope.  ``tracer``
    records one span per seed (serial campaigns only — worker spans do
    not cross the process boundary).
    """
    if grid is None:
        grid = default_grid()
    if jobs == 0:
        jobs = os.cpu_count() or 1

    def engine_jobs_for(seed: int) -> int:
        if engine_every <= 0 or seed % engine_every != 0:
            return 0
        return 2 if jobs == 1 else 1

    tasks = [
        (seed, tuple(grid), engine_jobs_for(seed), shrink, max_trials)
        for seed in seeds
    ]
    summary = ValidationSummary()
    if jobs == 1 or len(tasks) <= 1:
        outcomes = []
        with metrics_scope(metrics):
            for task in tasks:
                with tracer.span("seed", seed=task[0]):
                    outcome = _seed_worker(task)
                outcomes.append(outcome)
                if progress is not None:
                    progress(outcome)
    else:
        with multiprocessing.Pool(min(jobs, len(tasks))) as pool:
            outcomes = []
            for outcome in pool.imap_unordered(_seed_worker, tasks):
                outcomes.append(outcome)
                if progress is not None:
                    progress(outcome)
        outcomes.sort(key=lambda outcome: outcome.seed)

    for outcome in outcomes:
        summary.seeds += 1
        summary.cells_checked += outcome.cells_checked
        summary.outcomes.append(outcome)
        metrics.inc("validate.seeds")
        metrics.inc("validate.cells_checked", outcome.cells_checked)
        metrics.inc("validate.mismatches", outcome.mismatch_count)
        if not outcome.ok:
            metrics.inc("validate.failing_seeds")

    if report_dir is not None:
        write_reports(summary, report_dir)
    return summary


def write_reports(summary: ValidationSummary, directory: str) -> List[str]:
    """Write one JSON file per failing seed; returns the paths."""
    paths: List[str] = []
    os.makedirs(directory, exist_ok=True)
    for outcome in summary.failures:
        if outcome.failure is None:
            continue
        path = os.path.join(directory, f"failure-seed{outcome.seed}.json")
        with open(path, "w") as handle:
            json.dump(outcome.failure.to_json(), handle, indent=2)
            handle.write("\n")
        paths.append(path)
    return paths
