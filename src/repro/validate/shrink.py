"""Delta-debugging minimizer for oracle failures.

When the oracle flags a program, the raw reproducer is usually dozens of
blocks of machine-generated noise.  This module shrinks it while the
*same* failure keeps reproducing — same check category on the same grid
cell with the same inputs — using three reduction passes iterated to a
fixpoint:

* **branch folding** — rewrite a conditional/switch terminator into an
  unconditional jump to one successor, then garbage-collect whatever
  became unreachable (the big structural wins);
* **op deletion** — greedy chunked ddmin over every non-terminator op
  (halving chunk sizes, classic delta debugging);
* **function deletion** — drop non-entry functions no remaining call
  references.

Every candidate is validated structurally first and then re-judged by
the oracle predicate; a candidate that changes the failure (or fixes it,
or crashes differently) is simply rejected, which is what lets the
passes be aggressive about strictness — deleting a def whose uses remain
turns into an ``interp-crash`` mismatch, a *different* category, so the
candidate is discarded.  The result is wrapped in a structured
:class:`FailureReport` (JSON-ready) carrying the minimized IR text, the
failing cell, and the first divergence point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.ir.clone import clone_program
from repro.ir.function import Program
from repro.ir.printer import format_program
from repro.ir.types import Opcode
from repro.ir.verify import verify_program
from repro.util.errors import IRValidationError
from repro.evaluation.engine import machine_by_name
from repro.validate.generator import GeneratedProgram
from repro.validate.oracle import (
    Cell,
    Mismatch,
    check_cell,
    check_engine_identity,
    _interpret,
)


def total_ops(program: Program) -> int:
    return sum(f.cfg.total_ops for f in program.functions())


@dataclass
class FailureReport:
    """One minimized oracle failure, ready for ``json.dumps``."""

    seed: int
    name: str
    origin: str
    check: str
    cell: Optional[str]
    inputs: Optional[List[object]]
    detail: str
    original_ops: int
    minimized_ops: int
    trials: int
    program_text: str
    source: Optional[str] = None

    def to_json(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "name": self.name,
            "origin": self.origin,
            "check": self.check,
            "cell": self.cell,
            "inputs": self.inputs,
            "detail": self.detail,
            "original_ops": self.original_ops,
            "minimized_ops": self.minimized_ops,
            "trials": self.trials,
            "program_text": self.program_text,
            "source": self.source,
        }


# ----------------------------------------------------------------------
# The shrinker


Predicate = Callable[[Program], bool]


class Shrinker:
    """Iterates reduction passes while ``predicate`` keeps holding."""

    def __init__(self, program: Program, predicate: Predicate,
                 max_trials: int = 3000):
        self.best = program
        self.predicate = predicate
        self.max_trials = max_trials
        self.trials = 0

    # -- candidate plumbing ------------------------------------------

    def _exhausted(self) -> bool:
        return self.trials >= self.max_trials

    def _accept(self, candidate: Program) -> bool:
        """True (and adopt) if the candidate still shows the failure."""
        if self._exhausted():
            return False
        try:
            verify_program(candidate)
        except IRValidationError:
            return False
        self.trials += 1
        if self.predicate(candidate):
            self.best = candidate
            return True
        return False

    # -- passes -------------------------------------------------------

    def _fold_branches(self) -> bool:
        """Try turning every multi-way terminator into a plain jump."""
        progress = False
        retry = True
        while retry and not self._exhausted():
            retry = False
            for function in self.best.functions():
                for block in function.cfg.blocks():
                    if len(block.out_edges) < 2:
                        continue
                    targets = [e.dst.bid for e in block.out_edges]
                    for target in targets:
                        candidate = clone_program(self.best)
                        _fold_to_jump(candidate, function.name,
                                      block.bid, target)
                        if self._accept(candidate):
                            progress = retry = True
                            break
                    if retry:
                        break
                if retry:
                    break
        return progress

    def _drop_ops(self) -> bool:
        """Greedy chunked ddmin over all non-terminator ops."""
        progress = False
        sites = _removable_sites(self.best)
        chunk = max(1, len(sites) // 2)
        while chunk >= 1 and not self._exhausted():
            index = 0
            removed = False
            while index < len(sites):
                batch = sites[index:index + chunk]
                candidate = clone_program(self.best)
                _delete_ops(candidate, batch)
                if self._accept(candidate):
                    sites = sites[:index] + sites[index + chunk:]
                    progress = removed = True
                else:
                    index += chunk
                if self._exhausted():
                    break
            if chunk == 1 and not removed:
                break
            chunk = chunk // 2 if chunk > 1 else (1 if removed else 0)
        return progress

    def _drop_functions(self) -> bool:
        progress = True
        any_progress = False
        while progress and not self._exhausted():
            progress = False
            called = _called_functions(self.best)
            for function in self.best.functions():
                if function.name == self.best.entry_name:
                    continue
                if function.name in called:
                    continue
                candidate = clone_program(self.best)
                candidate._functions.pop(function.name)
                if self._accept(candidate):
                    progress = any_progress = True
                    break
        return any_progress

    # -- driver -------------------------------------------------------

    def run(self, max_rounds: int = 8) -> Program:
        for _ in range(max_rounds):
            round_progress = False
            round_progress |= self._fold_branches()
            round_progress |= self._drop_ops()
            round_progress |= self._drop_functions()
            if not round_progress or self._exhausted():
                break
        return self.best


def _fold_to_jump(program: Program, function_name: str, bid: int,
                  target_bid: int) -> None:
    function = program.function(function_name)
    cfg = function.cfg
    block = next(b for b in cfg.blocks() if b.bid == bid)
    target = next(b for b in cfg.blocks() if b.bid == target_bid)
    term = block.terminator
    if term is not None:
        block.ops.remove(term)
    for edge in list(block.out_edges):
        cfg.remove_edge(edge)
    cfg.make_jump(block, target)
    _collect_unreachable(cfg)


def _collect_unreachable(cfg) -> None:
    reachable = set()
    stack = [cfg.entry]
    while stack:
        block = stack.pop()
        if block.bid in reachable:
            continue
        reachable.add(block.bid)
        stack.extend(e.dst for e in block.out_edges)
    for block in list(cfg.blocks()):
        if block.bid not in reachable:
            for edge in list(block.out_edges):
                cfg.remove_edge(edge)
            for edge in list(block.in_edges):
                cfg.remove_edge(edge)
            cfg.remove_block(block)


def _removable_sites(program: Program) -> List[Tuple[str, int, int]]:
    """(function, bid, uid) of every non-terminator op."""
    sites: List[Tuple[str, int, int]] = []
    for function in program.functions():
        for block in function.cfg.blocks():
            for op in block.ops:
                if not op.is_terminator:
                    sites.append((function.name, block.bid, op.uid))
    return sites


def _delete_ops(program: Program,
                sites: Sequence[Tuple[str, int, int]]) -> None:
    doomed: Dict[Tuple[str, int], set] = {}
    for name, bid, uid in sites:
        doomed.setdefault((name, bid), set()).add(uid)
    for (name, bid), uids in doomed.items():
        function = program.function(name)
        for block in function.cfg.blocks():
            if block.bid == bid:
                block.ops = [
                    op for op in block.ops
                    if op.is_terminator or op.uid not in uids
                ]
                function.cfg.version += 1
                break


def _called_functions(program: Program) -> set:
    called = set()
    for function in program.functions():
        for block in function.cfg.blocks():
            for op in block.ops:
                if op.opcode is Opcode.CALL and op.callee:
                    called.add(op.callee)
    return called


# ----------------------------------------------------------------------
# Failure-driven entry point


def _failure_predicate(mismatch: Mismatch, name: str) -> Predicate:
    """Does a program still exhibit ``mismatch``'s failure category?"""
    category = mismatch.check
    cell = mismatch.cell
    inputs = list(mismatch.inputs) if mismatch.inputs is not None else None

    if category == "engine":
        grid = [cell] if cell is not None else None

        def engine_predicate(program: Program) -> bool:
            from repro.validate.oracle import default_grid

            cells = grid if grid is not None else default_grid()
            return any(
                m.check == "engine"
                for m in check_engine_identity(program, name, cells, jobs=1)
            )

        return engine_predicate

    assert cell is not None and inputs is not None
    machine = machine_by_name(cell.machine)

    def predicate(program: Program) -> bool:
        try:
            reference = _interpret(program, inputs)
        except Exception:
            return category == "interp-crash"
        if category == "interp-crash":
            return False
        found = check_cell(program, inputs, cell, machine, reference)
        return any(m.check == category for m in found)

    return predicate


def minimize_failure(
    generated: GeneratedProgram,
    mismatch: Mismatch,
    max_trials: int = 3000,
    max_rounds: int = 8,
) -> FailureReport:
    """Shrink a generated program around one oracle mismatch."""
    original = total_ops(generated.program)
    predicate = _failure_predicate(mismatch, generated.name)
    shrinker = Shrinker(generated.program, predicate, max_trials=max_trials)
    minimized = shrinker.run(max_rounds=max_rounds)
    # Re-derive the failure detail on the minimized program so the report
    # describes what it actually contains.
    detail = mismatch.detail
    if mismatch.check not in ("engine",) and mismatch.inputs is not None \
            and mismatch.cell is not None:
        try:
            reference = _interpret(minimized, list(mismatch.inputs))
            found = check_cell(
                minimized, list(mismatch.inputs), mismatch.cell,
                machine_by_name(mismatch.cell.machine), reference,
            )
            for entry in found:
                if entry.check == mismatch.check:
                    detail = entry.detail or detail
                    break
        except Exception:
            pass
    return FailureReport(
        seed=generated.seed,
        name=generated.name,
        origin=generated.origin,
        check=mismatch.check,
        cell=str(mismatch.cell) if mismatch.cell is not None else None,
        inputs=list(mismatch.inputs) if mismatch.inputs is not None else None,
        detail=detail,
        original_ops=original,
        minimized_ops=total_ops(minimized),
        trials=shrinker.trials,
        program_text=format_program(minimized),
        source=generated.source,
    )
