"""Seeded random program generation for differential validation.

Two generation modes, both deterministic functions of the seed (so worker
processes can regenerate a program from its seed alone, and a failure
report's seed reproduces the program exactly):

* **IR mode** — emits well-formed IR directly through the
  :class:`~repro.ir.builder.IRBuilder`: nested branches, bounded counted
  loops, multiway switches with wide merges, calls along a DAG call
  graph, guarded (predicated) ops, global-array loads/stores, and the
  pathological shapes the paper analyses (deep branch trees, wide
  merges, branches on constant predicates whose dead arm becomes
  unreachable after constant folding).
* **minic mode** — emits a random minic source program and compiles it
  through :mod:`repro.lang`, exercising the frontend's lowering
  (short-circuit conditions, ``for``/``while``, ``switch``, arrays,
  helper functions) on top of everything downstream.

Termination is guaranteed by construction: every loop is a counted loop
whose induction register/variable is written only by its own increment,
calls follow a DAG (no recursion), and all other control flow is forward.
Value growth is bounded by construction too: multiplications always take
a small immediate operand and shifts a small immediate amount, so
magnitudes grow at most linearly in executed ops (no float opcodes are
generated — their operands would overflow ``float()`` on big ints).

The entry point is :func:`generate`, returning a :class:`GeneratedProgram`
with the program, its inputs, and (for minic mode) the source text.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.ir.builder import IRBuilder
from repro.ir.cfg import BasicBlock
from repro.ir.function import Function, Program
from repro.ir.registers import Register
from repro.ir.types import CompareCond, Opcode, RegClass
from repro.ir.verify import verify_program
from repro.lang import compile_source

#: Global array size used by both modes (indices are masked to it).
ARRAY_SIZE = 16
_ARRAY_MASK = ARRAY_SIZE - 1

_CONDS = (CompareCond.LT, CompareCond.LE, CompareCond.GT, CompareCond.GE,
          CompareCond.EQ, CompareCond.NE)


@dataclass
class GeneratedProgram:
    """One generated validation subject."""

    name: str
    seed: int
    origin: str  # "ir" or "minic"
    program: Program
    #: Argument tuples for the entry function; the oracle checks each.
    inputs: List[Tuple[int, ...]]
    #: minic source when origin == "minic" (for failure reports).
    source: Optional[str] = None


def generate(seed: int) -> GeneratedProgram:
    """Generate the validation subject for ``seed`` (deterministic)."""
    rng = random.Random(seed)
    if seed % 2 == 0:
        gen = _IRGenerator(rng)
        program, inputs = gen.program()
        out = GeneratedProgram(f"gen{seed}", seed, "ir", program, inputs)
    else:
        source, inputs = _minic_source(rng)
        out = GeneratedProgram(f"gen{seed}", seed, "minic",
                               compile_source(source), inputs,
                               source=source)
    verify_program(out.program)
    return out


# ----------------------------------------------------------------------
# IR mode


class _IRGenerator:
    """Builds a random, terminating, verifier-clean IR program."""

    def __init__(self, rng: random.Random):
        self.rng = rng
        self.prog = Program(entry="main")
        self.glob = self.prog.add_global("g", size=ARRAY_SIZE,
                                         initial=[0] * ARRAY_SIZE)
        #: Functions generated so far; calls only target earlier entries,
        #: making the call graph a DAG (termination).
        self.callees: List[Function] = []
        self.b: IRBuilder = None  # type: ignore[assignment]
        self.vars: List[Register] = []
        self.ops_left = 0
        self.loop_depth = 0

    # -- value helpers --------------------------------------------------

    def _value(self):
        """A random defined register, or a small immediate."""
        if self.vars and self.rng.random() < 0.75:
            return self.rng.choice(self.vars)
        return self.rng.randint(-9, 9)

    def _spend(self, n: int = 1) -> None:
        self.ops_left -= n

    # -- statement emitters (all leave the builder at a fallthrough-able
    #    current block and keep every pool register defined) ------------

    def _emit_arith(self) -> None:
        b, rng = self.b, self.rng
        kind = rng.randrange(9)
        a, c = self._value(), self._value()
        if kind == 0:
            dest = b.add(a, c)
        elif kind == 1:
            dest = b.sub(a, c)
        elif kind == 2:
            # Bounded growth: one operand is a small immediate.
            dest = b.mul(a, rng.randint(-7, 7))
        elif kind == 3:
            # Non-zero divisor: x | 1 is odd, never zero.
            self._spend()
            dest = b.div(a, b.or_(c, 1))
        elif kind == 4:
            self._spend()
            dest = b.mod(a, b.or_(c, 1))
        elif kind == 5:
            dest = rng.choice((b.and_, b.or_, b.xor))(a, c)
        elif kind == 6:
            dest = rng.choice((b.shl, b.shr))(a, rng.randint(0, 7))
        elif kind == 7:
            dest = rng.choice((b.neg, b.not_))(a)
        else:
            dest = b.mov(a)
        self._spend()
        self.vars.append(dest)

    def _emit_memory(self) -> None:
        b, rng = self.b, self.rng
        index = b.and_(self._value(), _ARRAY_MASK)
        self._spend(2)
        if rng.random() < 0.5:
            b.st(self.glob.address, index, self._value())
        else:
            self.vars.append(b.ld(self.glob.address, index))

    def _emit_guarded(self) -> None:
        """Predication: a CMPP-produced guard squashing a compute op.

        The destination is pre-initialised so it is defined on the
        guard-false path (the strict interpreter requires it).
        """
        b = self.b
        pred = b.cmpp(self.rng.choice(_CONDS), self._value(), self._value())
        dest = b.mov(self._value())
        b.emit(Opcode.ADD, dests=[dest],
               srcs=[dest, self._value()], guard=pred)
        self._spend(3)
        self.vars.append(dest)

    def _emit_call(self) -> None:
        b, rng = self.b, self.rng
        callee = rng.choice(self.callees)
        args = [self._value() for _ in callee.params]
        self._spend(1)
        self.vars.append(b.call(callee.name, args))

    def _emit_branch(self, depth: int) -> None:
        """if/else with a merge; optionally a constant (foldable) branch
        whose statically-dead arm survives until constant folding."""
        b, rng = self.b, self.rng
        if rng.random() < 0.15:
            # Constant predicate: the taken arm is unreachable after fold.
            pred = b.cmpp(CompareCond.GT, 0, 1)
        else:
            pred = b.cmpp(rng.choice(_CONDS), self._value(), self._value())
        self._spend()
        then_bb, else_bb, merge = b.block(), b.block(), b.block()
        # Merge vars: defined before the branch, conditionally overwritten
        # in the arms, alive after the merge.
        merge_vars = [b.mov(self._value())
                      for _ in range(rng.randint(0, 2))]
        self.vars.extend(merge_vars)
        b.br_true(pred, then_bb, else_bb)
        snapshot = len(self.vars)
        for arm in (then_bb, else_bb):
            b.at(arm)
            self._emit_block_body(depth - 1)
            for var in merge_vars:
                if rng.random() < 0.7:
                    b.mov(self._value(), dest=var)
                    self._spend()
            del self.vars[snapshot:]  # arm-local defs don't dominate merge
            if arm is then_bb:
                b.jump(merge)
            else:
                b.fallthrough(merge)
        b.at(merge)

    def _emit_switch(self, depth: int) -> None:
        """Multiway branch; all cases merge into one block (wide merge)."""
        b, rng = self.b, self.rng
        n_cases = rng.randint(2, 6)
        selector = b.mod(self._value(), n_cases + 1)
        self._spend(1)
        merge = b.block()
        case_blocks = [(v, b.block()) for v in range(n_cases)]
        default = b.block()
        b.switch(selector, case_blocks, default)
        snapshot = len(self.vars)
        for _value, block in case_blocks + [(None, default)]:
            b.at(block)
            if depth > 0 and rng.random() < 0.4:
                self._emit_block_body(0)
            else:
                self._emit_arith()
            del self.vars[snapshot:]
            b.jump(merge)
        b.at(merge)

    def _emit_loop(self, depth: int) -> None:
        """A counted loop: i = 0; while (i < K) { body; i += 1 }.

        ``i`` never enters the variable pool, so nothing else writes it
        and the trip count is exactly ``K``.
        """
        b, rng = self.b, self.rng
        trips = rng.randint(1, 6)
        i = b.mov(0)
        self._spend(3)
        header, body, exit_bb = b.block(), b.block(), b.block()
        b.fallthrough(header)
        b.at(header)
        pred = b.cmpp(CompareCond.LT, i, trips)
        b.br_true(pred, body, exit_bb)
        b.at(body)
        snapshot = len(self.vars)
        self.loop_depth += 1
        self._emit_block_body(depth - 1)
        self.loop_depth -= 1
        del self.vars[snapshot:]
        b.add(i, 1, dest=i)
        b.jump(header)
        b.at(exit_bb)

    def _emit_block_body(self, depth: int) -> None:
        """A run of statements at the current insertion point."""
        rng = self.rng
        for _ in range(rng.randint(1, 4)):
            if self.ops_left <= 0:
                return
            roll = rng.random()
            if depth <= 0 or roll < 0.45:
                self._emit_arith()
            elif roll < 0.6:
                self._emit_memory()
            elif roll < 0.68:
                self._emit_guarded()
            elif roll < 0.73 and self.callees and self.loop_depth < 2:
                self._emit_call()
            elif roll < 0.85:
                self._emit_branch(depth)
            elif roll < 0.93 and self.loop_depth < 2:
                self._emit_loop(depth)
            else:
                self._emit_switch(depth)

    def _deep_tree(self, levels: int) -> None:
        """Pathological shape: a deep chain of nested two-way branches
        (the treegion former grows a tall tree here)."""
        for _ in range(levels):
            self._emit_branch(0)

    # -- function / program --------------------------------------------

    def _function(self, name: str, n_params: int, budget: int,
                  depth: int) -> Function:
        params = [Register(RegClass.GPR, i) for i in range(n_params)]
        fn = self.prog.new_function(name, params)
        self.b = IRBuilder(fn)
        self.vars = list(params)
        self.ops_left = budget
        entry = self.b.block("entry")
        self.b.at(entry)
        if self.rng.random() < 0.25:
            self._deep_tree(self.rng.randint(2, 4))
        while self.ops_left > 0:
            self._emit_block_body(depth)
        self.b.ret(self._value())
        return fn

    def program(self) -> Tuple[Program, List[Tuple[int, ...]]]:
        rng = self.rng
        for index in range(rng.randint(0, 2)):
            fn = self._function(f"helper{index}", rng.randint(1, 3),
                                rng.randint(8, 25), depth=2)
            self.callees.append(fn)
        n_params = rng.randint(1, 3)
        self._function("main", n_params, rng.randint(25, 80), depth=3)
        inputs = [tuple(rng.randint(-20, 20) for _ in range(n_params))
                  for _ in range(rng.randint(2, 3))]
        return self.prog, inputs


# ----------------------------------------------------------------------
# minic mode


class _MinicGenerator:
    """Emits random, terminating minic source (bounded loops, guarded
    divisions, arrays with masked indices, helper calls)."""

    def __init__(self, rng: random.Random):
        self.rng = rng
        self.vars = ["a", "b", "c"]
        self.loops = 0
        self.helpers: List[str] = []

    def expr(self, depth: int = 2) -> str:
        rng = self.rng
        if depth <= 0 or rng.random() < 0.4:
            if rng.random() < 0.55:
                return rng.choice(self.vars)
            return str(rng.randint(-9, 9))
        roll = rng.random()
        if roll < 0.12 and self.helpers:
            name = rng.choice(self.helpers)
            return f"{name}({self.expr(depth - 1)}, {self.expr(depth - 1)})"
        if roll < 0.2:
            return f"g[({self.expr(depth - 1)}) & {_ARRAY_MASK}]"
        op = rng.choice(["+", "-", "*", "&", "|", "^"])
        return f"({self.expr(depth - 1)} {op} {self.expr(depth - 1)})"

    def cond(self) -> str:
        op = self.rng.choice(["<", "<=", ">", ">=", "==", "!="])
        base = f"{self.expr(1)} {op} {self.expr(1)}"
        roll = self.rng.random()
        if roll < 0.2:
            return f"({base}) && ({self.expr(1)} != 0)"
        if roll < 0.4:
            return f"({base}) || ({self.expr(1)} > 3)"
        return base

    def stmt(self, depth: int) -> str:
        rng = self.rng
        roll = rng.random()
        target = rng.choice(self.vars)
        if depth <= 0 or roll < 0.3:
            return f"{target} = {self.expr()};"
        if roll < 0.4:
            # Guarded division: the zero case is the untaken arm.
            divisor = rng.choice(self.vars)
            return (
                f"if ({divisor} != 0) {{ {target} = {target} / {divisor}; }}"
                f" else {{ {target} = {self.expr(1)}; }}"
            )
        if roll < 0.58:
            return (
                f"if ({self.cond()}) {{ {self.block(depth - 1)} }} "
                f"else {{ {self.block(depth - 1)} }}"
            )
        if roll < 0.72:
            self.loops += 1
            i = f"i{self.loops}"
            return (
                f"for (var {i} = 0; {i} < {rng.randint(1, 5)}; "
                f"{i} = {i} + 1) {{ {self.block(depth - 1)} }}"
            )
        if roll < 0.86:
            cases = " ".join(
                f"case {v}: {{ {self.block(0)} }}"
                for v in range(rng.randint(1, 4))
            )
            return (
                f"switch ({self.expr(1)} & 3) {{ {cases} "
                f"default: {{ {self.block(0)} }} }}"
            )
        return f"g[({self.expr(1)}) & {_ARRAY_MASK}] = {self.expr(1)};"

    def block(self, depth: int) -> str:
        return " ".join(self.stmt(depth)
                        for _ in range(self.rng.randint(1, 3)))

    def helper(self, index: int) -> str:
        name = f"helper{index}"
        saved, self.vars = self.vars, ["x", "y"]
        body = self.block(1)
        self.vars = saved
        self.helpers.append(name)
        return (
            f"func {name}(x, y) {{\n    {body}\n"
            f"    return x + y * 2;\n}}\n"
        )

    def program(self) -> str:
        helpers = "".join(self.helper(i)
                          for i in range(self.rng.randint(0, 2)))
        body = self.block(3)
        return (
            f"array g[{ARRAY_SIZE}];\n"
            f"{helpers}"
            "func main(a, b) {\n"
            f"    var c = a - b;\n    {body}\n"
            "    var out = a + b * 3 + c;\n"
            f"    for (var k = 0; k < {ARRAY_SIZE}; k = k + 1)"
            " { out = out + g[k]; }\n"
            "    return out;\n"
            "}\n"
        )


def _minic_source(rng: random.Random) -> Tuple[str, List[Tuple[int, ...]]]:
    source = _MinicGenerator(rng).program()
    inputs = [(rng.randint(-20, 20), rng.randint(-20, 20))
              for _ in range(rng.randint(2, 3))]
    return source, inputs
