"""Differential oracle: every backend must agree on every program.

For one generated program the oracle cross-checks, per grid cell
(scheme × machine × heuristic) and per input set:

* **result/memory** — the VLIW simulator's return value and final memory
  must equal the sequential interpreter's (the semantic reference);
* **cycles** — when the profile comes from *exactly* the simulated input,
  the simulator's dynamic cycle count must equal the static
  profile-weighted estimate (``sum(exit.weight × retire cycle)``) — not
  approximately: both are sums of integer-valued floats, so equality is
  exact.  This holds for mutating schemes too, because tail duplication
  splits weights consistently with the single profiled path;
* **verify** — the transformed clone a mutating scheme scheduled must
  still pass the structural IR verifier;
* **lint** — every region schedule produced for the cell must pass the
  static schedule-legality certifier (:mod:`repro.lint`): issue width,
  resources, DDG latencies, speculation safety, renaming correctness,
  treegion shape, merge legality.  Failures carry the rule ids that
  fired, so a fuzz failure names the broken invariant directly;
* **engine** — the PR-1 evaluation engine's serial shared-work path,
  its parallel path, and per-cell :func:`evaluate_cell` must produce
  bit-identical :class:`CellResult` rows for the program.

Any disagreement becomes a :class:`Mismatch` carrying the failing cell,
the inputs, expected/actual values, and a first-divergence detail (the
first region visit at which the simulator left the interpreter's path,
or the lowest differing memory address).  Crashes in any backend are
reported as mismatches too, never raised — the minimizer
(:mod:`repro.validate.shrink`) relies on the oracle being total.
"""

from __future__ import annotations

import itertools
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.clone import clone_program
from repro.ir.function import Function, Program
from repro.ir.printer import format_program
from repro.ir.verify import check_program
from repro.interp.interpreter import ExecutionObserver, Interpreter
from repro.lint.collect import lint_scope
from repro.lint.diagnostics import LintReport
from repro.interp.profiler import profile_program
from repro.evaluation.engine import GridCell, evaluate_cell, evaluate_grid
from repro.evaluation.schemes import SchemeSpec
from repro.machine.model import MachineModel
from repro.vliw.simulator import (
    RegionSchedule,
    VLIWSimulator,
    schedule_program,
)
from repro.validate.generator import GeneratedProgram

#: The default validation grid: every scheme the library implements.
DEFAULT_SCHEMES: Tuple[str, ...] = (
    "bb", "slr", "treegion", "superblock", "treegion-td:2.0", "hyperblock",
)
DEFAULT_MACHINES: Tuple[str, ...] = ("4U", "8U")
DEFAULT_HEURISTICS: Tuple[str, ...] = ("global_weight",)

#: Step budget for oracle runs — generated programs terminate by
#: construction, so hitting this is itself a reportable failure.
MAX_STEPS = 2_000_000


@dataclass(frozen=True)
class Cell:
    """One point of the validation grid."""

    scheme: str
    machine: str
    heuristic: str

    def __str__(self) -> str:
        return f"{self.scheme}/{self.machine}/{self.heuristic}"

    def build_scheme(self):
        return SchemeSpec.parse(self.scheme).build()


def default_grid(
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    machines: Sequence[str] = DEFAULT_MACHINES,
    heuristics: Sequence[str] = DEFAULT_HEURISTICS,
) -> List[Cell]:
    """The cross product of the given axes, validated eagerly."""
    for scheme in schemes:
        SchemeSpec.parse(scheme)  # raise early on a bad spec
    return [
        Cell(scheme, machine, heuristic)
        for scheme, machine, heuristic in itertools.product(
            schemes, machines, heuristics
        )
    ]


@dataclass
class Mismatch:
    """One disagreement between two backends on one program."""

    #: Which oracle check failed: ``result``, ``memory``, ``cycles``,
    #: ``verify``, ``lint``, ``engine``, ``store``, ``region-memo``,
    #: ``analysis``, ``interp-crash``, or ``sim-crash``.
    check: str
    expected: str
    actual: str
    cell: Optional[Cell] = None
    inputs: Optional[Tuple[object, ...]] = None
    #: First divergence point (region-visit index / memory address) or a
    #: traceback summary for crashes.
    detail: str = ""
    #: For ``lint`` mismatches: the static-analysis rule ids that fired,
    #: so failure reports say *which* legality invariant broke.
    rules: Optional[List[str]] = None

    def to_json(self) -> Dict[str, object]:
        return {
            "check": self.check,
            "cell": str(self.cell) if self.cell is not None else None,
            "inputs": list(self.inputs) if self.inputs is not None else None,
            "expected": self.expected,
            "actual": self.actual,
            "detail": self.detail,
            "rules": self.rules,
        }


@dataclass
class OracleReport:
    """Everything the oracle concluded about one generated program."""

    name: str
    seed: int
    origin: str
    cells_checked: int = 0
    mismatches: List[Mismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def to_json(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "seed": self.seed,
            "origin": self.origin,
            "cells_checked": self.cells_checked,
            "ok": self.ok,
            "mismatches": [m.to_json() for m in self.mismatches],
        }


# ----------------------------------------------------------------------
# Execution tracing (for the first-divergence detail)


class _BlockTrace(ExecutionObserver):
    """Records every (function, block) the interpreter enters."""

    def __init__(self) -> None:
        self.visits: List[Tuple[str, int]] = []

    def on_block(self, function: Function, block) -> None:
        self.visits.append((function.name, block.bid))


class _TracingSimulator(VLIWSimulator):
    """Records the root block of every region visit."""

    def __init__(self, scheduled, **kwargs) -> None:
        super().__init__(scheduled, **kwargs)
        self.trace: List[Tuple[str, int]] = []
        self._function_of_cfg = {
            id(sf.function.cfg): name
            for name, sf in scheduled.functions.items()
        }

    def _run_region(self, schedule: RegionSchedule, state):
        root = schedule.region.root
        name = self._function_of_cfg.get(id(root.cfg), "?")
        self.trace.append((name, root.bid))
        return super()._run_region(schedule, state)


def _first_trace_divergence(
    interp_trace: List[Tuple[str, int]],
    roots: Dict[str, frozenset],
    sim_trace: List[Tuple[str, int]],
) -> str:
    """Where the simulator's region path left the interpreter's.

    The interpreter's block trace is projected onto region roots; with a
    non-mutating scheme both traverse the same CFG, so the projections
    must match visit for visit.
    """
    projected = [
        (name, bid) for name, bid in interp_trace
        if bid in roots.get(name, frozenset())
    ]
    for index, (want, got) in enumerate(zip(projected, sim_trace)):
        if want != got:
            return (
                f"region visit {index}: interpreter reached "
                f"{want[0]}/bb{want[1]}, simulator entered {got[0]}/bb{got[1]}"
            )
    if len(projected) != len(sim_trace):
        return (
            f"trace lengths differ: interpreter made {len(projected)} "
            f"region visits, simulator {len(sim_trace)}"
        )
    return "traces agree; divergence is inside a region"


def _first_memory_divergence(expected: Dict[int, object],
                             actual: Dict[int, object]) -> str:
    for address in sorted(set(expected) | set(actual)):
        want = expected.get(address)
        got = actual.get(address)
        if want != got:
            return f"memory[{address}]: expected {want!r}, got {got!r}"
    return ""


def _crash_detail(error: BaseException) -> str:
    line = traceback.format_exception_only(type(error), error)[-1].strip()
    return line


# ----------------------------------------------------------------------
# Per-cell checks


def check_cell(
    program: Program,
    inputs: Sequence[object],
    cell: Cell,
    machine: MachineModel,
    reference: Tuple[object, Dict[int, object], List[Tuple[str, int]]],
) -> List[Mismatch]:
    """Run one grid cell against the interpreter reference.

    ``reference`` is ``(value, memory, block_trace)`` from
    :func:`_interpret`.  The program is cloned and profiled on *exactly*
    these inputs, which is what makes the cycles check exact.
    """
    ref_value, ref_memory, ref_trace = reference
    inputs = tuple(inputs)
    worked = clone_program(program)
    profile_program(worked, [list(inputs)])
    scheme = cell.build_scheme()

    lint_report = LintReport()
    try:
        with lint_scope(lint_report):
            scheduled = schedule_program(worked, scheme, machine)
        if scheme.mutates:
            # Tail duplication re-splits profile weights proportionally,
            # which can go fractional (e.g. a 1-visit merge split 0.5/0.5)
            # and the estimate would drift off the integral cycle count.
            # The transform preserves semantics, so re-profiling the
            # transformed program on the same input restores exact exit
            # counts; weighted_time reads weights lazily and picks them up.
            profile_program(scheduled.program, [list(inputs)])
        simulator = _TracingSimulator(scheduled)
        value = simulator.run(inputs)
    except Exception as error:  # scheduling or simulation blew up
        return [Mismatch(
            check="sim-crash", cell=cell, inputs=inputs,
            expected=f"result {ref_value!r}",
            actual=type(error).__name__,
            detail=_crash_detail(error),
        )]

    mismatches: List[Mismatch] = []

    if lint_report.errors:
        failed = lint_report.errors
        mismatches.append(Mismatch(
            check="lint", cell=cell, inputs=inputs,
            expected="certifier-clean region schedules",
            actual=f"{len(failed)} schedule-legality violation(s)",
            detail="; ".join(d.format() for d in failed[:3]),
            rules=sorted({d.rule for d in failed}),
        ))

    problems = check_program(scheduled.program)
    if problems:
        mismatches.append(Mismatch(
            check="verify", cell=cell, inputs=inputs,
            expected="clean IR verifier on the scheduled clone",
            actual=f"{len(problems)} violation(s)",
            detail="; ".join(problems[:3]),
        ))

    if value != ref_value or simulator.memory != ref_memory:
        if not scheme.mutates:
            detail = _first_trace_divergence(
                ref_trace,
                {name: frozenset(sf.by_root)
                 for name, sf in scheduled.functions.items()},
                simulator.trace,
            )
        else:
            detail = _first_memory_divergence(ref_memory, simulator.memory)
        if value != ref_value:
            mismatches.append(Mismatch(
                check="result", cell=cell, inputs=inputs,
                expected=repr(ref_value), actual=repr(value), detail=detail,
            ))
        else:
            mismatches.append(Mismatch(
                check="memory", cell=cell, inputs=inputs,
                expected="interpreter memory image",
                actual=_first_memory_divergence(ref_memory,
                                                simulator.memory),
                detail=detail,
            ))

    # Recompute the estimate from *live* profile weights rather than
    # RegionSchedule.weighted_time: exit weights are snapshotted at
    # formation time, so the re-profile after a mutating transform (see
    # above) would not reach them.  For non-mutating schemes the live
    # weights equal the snapshots.
    estimate = 0.0
    for scheduled_fn in scheduled.functions.values():
        for schedule in scheduled_fn.by_root.values():
            for record in schedule.exits:
                exit = record.exit
                weight = (exit.edge.weight if exit.edge is not None
                          else exit.source.weight)
                estimate += weight * record.cycle
    if simulator.cycles != estimate:
        mismatches.append(Mismatch(
            check="cycles", cell=cell, inputs=inputs,
            expected=f"static estimate {estimate:g}",
            actual=f"simulated {simulator.cycles}",
            detail="profile taken from exactly this input",
        ))

    return mismatches


def _interpret(program: Program, inputs: Sequence[object]):
    trace = _BlockTrace()
    interpreter = Interpreter(program, max_steps=MAX_STEPS, observer=trace)
    value = interpreter.run(list(inputs))
    return value, interpreter.memory, trace.visits


# ----------------------------------------------------------------------
# Engine identity


def check_engine_identity(
    program: Program,
    name: str,
    grid: Sequence[Cell],
    jobs: int = 2,
) -> List[Mismatch]:
    """Serial grid, parallel grid, and per-cell evaluation must agree.

    The program crosses the process boundary as printed IR text
    (``program_texts``), so the parallel workers genuinely rebuild it —
    this doubles as a printer/parser round-trip check.
    """
    cells = [
        GridCell(benchmark=name, scheme=cell.scheme, machine=cell.machine,
                 heuristic=cell.heuristic)
        for cell in grid
    ]
    texts = {name: format_program(program)}
    mismatches: List[Mismatch] = []
    try:
        serial = evaluate_grid(cells, jobs=1, program_texts=texts)
        reference = [
            evaluate_cell(cell, program=program) for cell in cells
        ]
        parallel = (
            evaluate_grid(cells, jobs=jobs, program_texts=texts)
            if jobs > 1 else serial
        )
    except Exception as error:
        return [Mismatch(
            check="engine",
            expected="engine evaluates the grid",
            actual=type(error).__name__,
            detail=_crash_detail(error),
        )]
    for cell, row_serial, row_ref, row_par in zip(
        grid, serial, reference, parallel
    ):
        if row_serial != row_ref:
            mismatches.append(Mismatch(
                check="engine", cell=cell,
                expected=f"evaluate_cell time {row_ref.time!r}",
                actual=f"serial grid time {row_serial.time!r}",
                detail="serial shared-work path diverged from per-cell",
            ))
        if row_par != row_serial:
            mismatches.append(Mismatch(
                check="engine", cell=cell,
                expected=f"serial time {row_serial.time!r}",
                actual=f"parallel time {row_par.time!r}",
                detail=f"parallel path (jobs={jobs}) not bit-identical",
            ))
    return mismatches


# ----------------------------------------------------------------------
# Store identity


def check_store_identity(
    program: Program,
    name: str,
    grid: Sequence[Cell],
) -> List[Mismatch]:
    """Direct, cold-store, and warm-store evaluation must agree.

    Routes the grid through :func:`repro.api.cached_evaluate` against a
    throwaway on-disk artifact store twice — the first pass populates
    it (every cell a miss), the second serves entirely from disk — and
    compares both against per-cell direct evaluation.  This certifies
    the store's key derivation and the JSON round trip of results: a
    lossy float path or a key collision shows up as a ``store``
    mismatch.
    """
    import tempfile

    from repro.api import cached_evaluate
    from repro.serve.store import ArtifactStore

    cells = [
        GridCell(benchmark=name, scheme=cell.scheme, machine=cell.machine,
                 heuristic=cell.heuristic)
        for cell in grid
    ]
    texts = {name: format_program(program)}
    mismatches: List[Mismatch] = []
    try:
        reference = [
            evaluate_cell(cell, program=program) for cell in cells
        ]
        with tempfile.TemporaryDirectory(prefix="repro-store-") as tmp:
            store = ArtifactStore(tmp)
            cold = cached_evaluate(cells, store=store,
                                   program_texts=texts)
            warm = cached_evaluate(cells, store=store,
                                   program_texts=texts)
            served = store.hits
    except Exception as error:
        return [Mismatch(
            check="store",
            expected="store round trip evaluates the grid",
            actual=type(error).__name__,
            detail=_crash_detail(error),
        )]
    if served < len(cells):
        mismatches.append(Mismatch(
            check="store",
            expected=f"warm pass serves all {len(cells)} cells from disk",
            actual=f"{served} hit(s)",
            detail="cache keys unstable across identical evaluations",
        ))
    for cell, row_ref, row_cold, row_warm in zip(
        grid, reference, cold, warm
    ):
        if row_cold != row_ref:
            mismatches.append(Mismatch(
                check="store", cell=cell,
                expected=f"evaluate_cell time {row_ref.time!r}",
                actual=f"cold-store time {row_cold.time!r}",
                detail="store-routed evaluation diverged from direct",
            ))
        if row_warm != row_ref:
            mismatches.append(Mismatch(
                check="store", cell=cell,
                expected=f"evaluate_cell time {row_ref.time!r}",
                actual=f"warm-store time {row_warm.time!r}",
                detail="JSON round trip through the store not lossless",
            ))
    return mismatches


# ----------------------------------------------------------------------
# Region-memo identity


def check_region_memo_identity(
    program: Program,
    name: str,
    grid: Sequence[Cell],
) -> List[Mismatch]:
    """Memoized region scheduling must be bit-identical to the direct path.

    Four routes over the same grid must agree exactly — results *and*
    deterministic pipeline counters:

    1. the direct pipeline (``region_memo=False``, the reference);
    2. a cold :class:`~repro.schedule.memo.RegionMemo` (tier-1 sharing,
       every tier-2 probe a miss);
    3. the same memo warm (every region served from tier 2, exercising
       the hit path's weighted-time recomputation and counter replay);
    4. a *fresh* memo revived from the on-disk region store the cold
       pass populated (the cross-process route: fingerprints, the JSON
       payload round trip, and :func:`repro.serve.store.region_key`
       must all be stable).
    """
    import tempfile

    from repro.obs.metrics import MetricsRegistry
    from repro.schedule.memo import RegionMemo

    cells = [
        GridCell(benchmark=name, scheme=cell.scheme, machine=cell.machine,
                 heuristic=cell.heuristic)
        for cell in grid
    ]
    texts = {name: format_program(program)}
    mismatches: List[Mismatch] = []
    try:
        counters = {}
        passes = {}

        def run(label, **kwargs):
            registry = MetricsRegistry()
            rows = evaluate_grid(cells, jobs=1, program_texts=texts,
                                 metrics=registry, **kwargs)
            snapshot = registry.deterministic_snapshot()
            # The artifact store counts its own I/O (serve.store.*);
            # those are cache-layer observability, inherently
            # route-dependent.  The identity contract covers the
            # *pipeline* counters.
            snapshot["counters"] = {
                key: value for key, value in snapshot["counters"].items()
                if not key.startswith("serve.store.")
            }
            counters[label] = snapshot
            passes[label] = rows

        run("direct", region_memo=False)
        memo = RegionMemo()
        run("cold", region_memo=memo)
        cold_misses = memo.stats()["misses"]
        run("warm", region_memo=memo)
        warm_misses = memo.stats()["misses"] - cold_misses
        with tempfile.TemporaryDirectory(prefix="repro-region-") as tmp:
            seeding = RegionMemo()
            evaluate_grid(cells, jobs=1, program_texts=texts,
                          region_memo=seeding, region_store=tmp)
            revived = RegionMemo()
            run("disk", region_memo=revived, region_store=tmp)
            revived_stats = revived.stats()
    except Exception as error:
        return [Mismatch(
            check="region-memo",
            expected="memoized evaluation runs the grid",
            actual=type(error).__name__,
            detail=_crash_detail(error),
        )]
    if warm_misses > 0:
        mismatches.append(Mismatch(
            check="region-memo",
            expected="warm pass serves every region from tier 2",
            actual=f"{warm_misses} miss(es)",
            detail="region fingerprints unstable across identical passes",
        ))
    if revived_stats["misses"] > 0:
        mismatches.append(Mismatch(
            check="region-memo",
            expected="revived memo serves every region from disk",
            actual=f"{revived_stats['misses']} miss(es)",
            detail="region fingerprints or store keys unstable across "
                   "memo instances",
        ))
    for label in ("cold", "warm", "disk"):
        for cell, row_ref, row in zip(grid, passes["direct"], passes[label]):
            if row != row_ref:
                mismatches.append(Mismatch(
                    check="region-memo", cell=cell,
                    expected=f"direct time {row_ref.time!r}",
                    actual=f"{label}-memo time {row.time!r}",
                    detail=f"{label} memoized pass diverged from the "
                           "direct pipeline",
                ))
        if counters[label] != counters["direct"]:
            mismatches.append(Mismatch(
                check="region-memo",
                expected="deterministic counters match the direct pipeline",
                actual=f"{label} pass counters differ",
                detail="metric replay on memo hits is lossy",
            ))
    return mismatches


def check_analysis_soundness(
    program: Program,
    name: str,
    grid: Sequence[Cell],
) -> List[Mismatch]:
    """The dataflow engine's schedule-height bounds must hold on ``grid``.

    Runs :func:`repro.analysis.driver.analyze_program` over the grid's
    (non-hyperblock) schemes, machines, and heuristics: every region's
    critical-path / resource lower bound must be <= every achieved
    height, and the flow-sensitive IR lint must find no errors (a
    must-uninitialized use in a generated program would mean the
    generator or the analysis is broken).  A second, stronger pass
    machine-certifies the bounds against *proven optima* from the exact
    branch-and-bound backend on small regions
    (:func:`_check_exact_soundness`).  Totality first: an analysis
    crash is itself a mismatch, never an exception out of the oracle.
    """
    from repro.analysis.driver import analyze_program
    from repro.api import make_scheme

    schemes = []
    for spec in {cell.scheme: None for cell in grid}:
        if make_scheme(spec).name != "hyperblock":
            schemes.append(spec)
    if not schemes:
        return []
    machines = list({cell.machine: None for cell in grid})
    heuristics = list({cell.heuristic: None for cell in grid})
    try:
        result = analyze_program(
            program, name=name, schemes=schemes, machines=machines,
            heuristics=heuristics,
        )
    except Exception as error:
        return [Mismatch(
            check="analysis",
            expected="dataflow analysis completes",
            actual=type(error).__name__,
            detail=_crash_detail(error),
        )]
    mismatches: List[Mismatch] = []
    for row in result["regions"]:
        if row["sound"]:
            continue
        achieved = ", ".join(
            f"{heuristic}={height}"
            for heuristic, height in row["achieved"].items()
        )
        mismatches.append(Mismatch(
            check="analysis",
            cell=Cell(row["scheme"], row["machine"],
                      min(row["achieved"], key=row["achieved"].get)),
            expected=f"lower bound {row['lower_bound']} <= best height "
                     f"{row['best']}",
            actual=achieved,
            detail=f"{row['function']}/bb{row['root']}: unsound bound "
                   f"(cp={row['critical_path']}, "
                   f"res={row['resource_bound']})",
        ))
    lint = result.get("lint")
    if lint is not None and lint["errors"]:
        rules = sorted({
            d["rule"] for d in lint["diagnostics"]
            if d["severity"] == "error"
        })
        mismatches.append(Mismatch(
            check="analysis",
            expected="flow-sensitive lint finds no errors",
            actual=f"{lint['errors']} error(s)",
            detail="generated programs must be clean under the "
                   "flow-sensitive rules",
            rules=rules,
        ))
    mismatches.extend(_check_exact_soundness(program, schemes, machines))
    return mismatches


def _check_exact_soundness(
    program: Program,
    schemes: Sequence[str],
    machines: Sequence[str],
) -> List[Mismatch]:
    """Machine-certify the bounds against proven optima (exact backend).

    The heuristic comparison above only shows a bound <= some achieved
    height; the branch-and-bound backend proves the actual optimum on
    small regions, which catches bounds that are unsound yet still under
    every heuristic's height.  Kept cheap: big regions are skipped and
    the node budget is small — an unproven region simply contributes no
    evidence.  Totality first, like the analysis run.
    """
    from repro.exact.gap import gap_program

    try:
        result = gap_program(
            program, schemes=schemes, machines=machines,
            budget=2_000, max_ops=20, lint=False,
        )
    except Exception as error:
        return [Mismatch(
            check="analysis",
            expected="exact backend completes",
            actual=type(error).__name__,
            detail=_crash_detail(error),
        )]
    mismatches: List[Mismatch] = []
    for row in result["regions"]:
        if row["status"] != "proven" or row["sound"]:
            continue
        mismatches.append(Mismatch(
            check="analysis",
            cell=Cell(row["scheme"], row["machine"],
                      min(row["heights"], key=row["heights"].get)),
            expected=f"lower bound {row['lower_bound']} <= proven "
                     f"optimum {row['optimum']}",
            actual=f"optimum={row['optimum']}",
            detail=f"{row['function']}/bb{row['root']}: bound exceeds "
                   f"the proven optimum (cp={row['critical_path']}, "
                   f"res={row['resource_bound']})",
        ))
    return mismatches


# ----------------------------------------------------------------------
# Whole-program entry points


def check_ir(
    program: Program,
    input_sets: Sequence[Sequence[object]],
    grid: Sequence[Cell],
    report: OracleReport,
    stop_early: bool = False,
) -> OracleReport:
    """Run the per-cell differential checks; append to ``report``."""
    machines = {cell.machine: None for cell in grid}
    from repro.evaluation.engine import machine_by_name

    resolved = {name: machine_by_name(name) for name in machines}
    for inputs in input_sets:
        try:
            reference = _interpret(program, inputs)
        except Exception as error:
            report.mismatches.append(Mismatch(
                check="interp-crash", inputs=tuple(inputs),
                expected="interpreter terminates",
                actual=type(error).__name__,
                detail=_crash_detail(error),
            ))
            continue
        for cell in grid:
            report.cells_checked += 1
            found = check_cell(
                program, inputs, cell, resolved[cell.machine], reference
            )
            report.mismatches.extend(found)
            if found and stop_early:
                return report
    return report


def check_generated(
    generated: GeneratedProgram,
    grid: Optional[Sequence[Cell]] = None,
    engine_jobs: int = 0,
    store_check: bool = False,
    region_memo_check: bool = False,
    analysis_check: bool = False,
) -> OracleReport:
    """The full oracle for one generated program.

    ``engine_jobs=0`` skips the engine-identity check (spawning a worker
    pool per seed is expensive; the runner samples it every Nth seed),
    ``engine_jobs=1`` checks serial-vs-per-cell only, ``>1`` adds the
    parallel path.  ``store_check=True`` additionally routes the grid
    through a throwaway on-disk artifact store, cold then warm, and
    requires both passes bit-identical to direct evaluation (sampled by
    the runner alongside the engine check).  ``region_memo_check=True``
    runs :func:`check_region_memo_identity` — direct vs cold/warm/disk
    region-memoized evaluation, results and counters bit-identical
    (same sampling cadence).  ``analysis_check=True`` runs
    :func:`check_analysis_soundness` — the dataflow engine's schedule-
    height lower bounds must hold against every achieved height on the
    grid, and the flow-sensitive lint must find no errors (same
    sampling cadence again).
    """
    if grid is None:
        grid = default_grid()
    report = OracleReport(
        name=generated.name, seed=generated.seed, origin=generated.origin,
    )
    check_ir(generated.program, generated.inputs, grid, report)
    if engine_jobs > 0:
        report.mismatches.extend(check_engine_identity(
            generated.program, generated.name, grid, jobs=engine_jobs,
        ))
    if store_check:
        report.mismatches.extend(check_store_identity(
            generated.program, generated.name, grid,
        ))
    if region_memo_check:
        report.mismatches.extend(check_region_memo_identity(
            generated.program, generated.name, grid,
        ))
    if analysis_check:
        report.mismatches.extend(check_analysis_soundness(
            generated.program, generated.name, grid,
        ))
    return report
