"""repro — a reproduction of *Treegion Scheduling for Wide Issue
Processors* (Havanki, Banerjia, Conte; HPCA 1998).

The package implements the paper's contribution — treegions and treegion
scheduling — together with every substrate the evaluation needs: a
Playdoh-style VLIW IR, a small C-like frontend (minic), a profiling
interpreter, linear-region baselines (basic blocks, SLRs, superblocks),
the four scheduling heuristics, tail duplication with the paper's limits,
dominator parallelism, a cycle-accurate VLIW schedule simulator, and the
profile-weighted performance estimator.

Typical use::

    from repro import (
        compile_source, profile_program, form_treegions,
        schedule_region, ScheduleOptions, VLIW_4U,
    )

    program = compile_source(open("prog.mc").read())
    profile_program(program, inputs=[[42]])
    fn = program.entry_function
    partition = form_treegions(fn.cfg)
    for region in partition:
        schedule = schedule_region(region, VLIW_4U,
                                   ScheduleOptions(heuristic="global_weight"))
        print(schedule.format())

Subpackages:

======================  ==================================================
``repro.core``          treegions: formation (Fig. 2) + tail dup (Fig. 11)
``repro.schedule``      DDG, heuristics, renaming, list scheduler
``repro.regions``       region framework + linear baselines
``repro.ir``            the VLIW IR (ops, CFG, dominators, liveness, text)
``repro.lang``          the minic frontend
``repro.interp``        sequential interpreter + profiler
``repro.vliw``          VLIW schedule simulator (co-simulation oracle)
``repro.machine``       machine models (1U baseline, 4U, 8U)
``repro.evaluation``    schemes, estimator, speedups
``repro.workloads``     synthetic SPECint95 stand-ins + paper CFGs
``repro.api``           the stable typed facade (start here)
``repro.validate``      seeded differential validation + minimizer
``repro.obs``           tracing (Chrome trace export) + metrics registry
======================  ==================================================
"""

#: Kept in sync with pyproject.toml; the authoritative value when the
#: package is installed comes from the distribution metadata below.
_FALLBACK_VERSION = "1.0.0"


def _detect_version() -> str:
    """Package version from installed metadata, or the source fallback.

    Service clients and artifact-store cache keys report this string
    (see :func:`repro.serve.store.store_schema`), so results produced
    by different tool versions never alias.  Source checkouts run from
    ``PYTHONPATH=src`` without installed metadata; they use the
    fallback constant.
    """
    try:
        from importlib.metadata import PackageNotFoundError, version
    except ImportError:  # pragma: no cover - py<3.8 never reaches here
        return _FALLBACK_VERSION
    try:
        return version("repro")
    except PackageNotFoundError:
        return _FALLBACK_VERSION


__version__ = _detect_version()

from repro.core import (
    Treegion,
    TreegionLimits,
    form_treegions,
    form_treegions_td,
)
from repro.ir import (
    CFG,
    BasicBlock,
    CompareCond,
    Function,
    IRBuilder,
    Opcode,
    Operation,
    Program,
    RegClass,
    Register,
    format_function,
    format_program,
    parse_program,
    verify_program,
)
from repro.interp import (
    Interpreter,
    InterpreterError,
    Profiler,
    StepLimitExceeded,
    profile_program,
    run_program,
)
from repro.machine import (
    PAPER_MACHINES,
    SCALAR_1U,
    VLIW_4U,
    VLIW_8U,
    MachineModel,
    universal_machine,
)
from repro.regions import (
    Region,
    RegionPartition,
    SuperblockLimits,
    form_basic_block_regions,
    form_slrs,
    form_superblocks,
    partition_stats,
)
from repro.schedule import (
    HEURISTICS,
    RegionSchedule,
    ScheduleOptions,
    schedule_region,
)
from repro.schedule.scheduler import schedule_partition
from repro.evaluation import (
    baseline_time,
    bb_scheme,
    evaluate_program,
    slr_scheme,
    speedup_over_baseline,
    superblock_scheme,
    treegion_scheme,
    treegion_td_scheme,
)
from repro.vliw import VLIWSimulator, schedule_program
from repro.obs import (
    NULL_METRICS,
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
    current_metrics,
    metrics_scope,
)
from repro.opt import optimize_function, optimize_program
from repro import api
from repro.api import (
    CellResult,
    GridCell,
    SchemeSpec,
    SchemeSpecError,
    compile_source,
    evaluate_cell,
    evaluate_grid,
    load_program,
    make_scheme,
    simulate,
)
from repro.regions.hyperblock import (
    Hyperblock,
    HyperblockLimits,
    form_hyperblocks,
)
from repro.evaluation.schemes import hyperblock_scheme
from repro.dynamic import DynamicParams, collect_trace, simulate_trace
from repro.workloads import (
    SPECINT95,
    build_benchmark,
    build_paper_example,
    build_suite,
)
from repro.workloads.minic_programs import (
    build_minic_program,
    minic_program_names,
)

__all__ = [
    "__version__",
    # core
    "Treegion", "TreegionLimits", "form_treegions", "form_treegions_td",
    # ir
    "CFG", "BasicBlock", "CompareCond", "Function", "IRBuilder", "Opcode",
    "Operation", "Program", "RegClass", "Register", "format_function",
    "format_program", "parse_program", "verify_program",
    # interp / lang
    "Interpreter", "InterpreterError", "StepLimitExceeded", "Profiler",
    "profile_program", "run_program", "compile_source",
    # machine
    "PAPER_MACHINES", "SCALAR_1U", "VLIW_4U", "VLIW_8U", "MachineModel",
    "universal_machine",
    # regions
    "Region", "RegionPartition", "SuperblockLimits",
    "form_basic_block_regions", "form_slrs", "form_superblocks",
    "partition_stats",
    # schedule
    "HEURISTICS", "RegionSchedule", "ScheduleOptions", "schedule_region",
    "schedule_partition",
    # evaluation
    "baseline_time", "bb_scheme", "evaluate_program", "slr_scheme",
    "speedup_over_baseline", "superblock_scheme", "treegion_scheme",
    "treegion_td_scheme",
    # vliw
    "VLIWSimulator", "schedule_program", "simulate",
    # typed facade (repro.api) — validate() stays under repro.api to not
    # shadow the repro.validate subpackage
    "api", "load_program", "make_scheme", "SchemeSpec", "SchemeSpecError",
    "evaluate_grid", "evaluate_cell", "GridCell", "CellResult",
    # observability
    "MetricsRegistry", "NULL_METRICS", "Tracer", "NULL_TRACER",
    "current_metrics", "metrics_scope",
    # optimizer
    "optimize_function", "optimize_program",
    # hyperblocks
    "Hyperblock", "HyperblockLimits", "form_hyperblocks",
    "hyperblock_scheme",
    # dynamic scheduling
    "DynamicParams", "collect_trace", "simulate_trace",
    # workloads
    "SPECINT95", "build_benchmark", "build_paper_example", "build_suite",
    "build_minic_program", "minic_program_names",
]
