"""Structured synthetic CFG generation.

Programs are generated as structured control flow — sequences, if-then,
if-then-else, switch, while, and "check chains" (a run of blocks each
conditionally bailing to a cold shared exit, the shape behind vortex's
linearized treegions) — because real compilers produce CFGs whose merge
structure comes from structured source.  Random digraphs would not exhibit
the treegion shapes the paper measures.

Profile weights are assigned *analytically* during generation: every
construct splits its incoming weight along its arms using the preset's
branch-bias distribution, and loops multiply by an expected trip count, so
the "profile" is exact flow-conserving data without needing execution.

Everything is driven by a seeded ``random.Random``; generation is fully
deterministic per (preset, seed).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.ir.builder import IRBuilder
from repro.ir.cfg import BasicBlock
from repro.ir.liveness import compute_liveness
from repro.ir.function import Function, Program
from repro.ir.registers import Register
from repro.ir.types import CompareCond


@dataclass(frozen=True)
class SynthParams:
    """Generator knobs; one preset per benchmark lives in ``specint.py``."""

    name: str
    seed: int = 1
    #: Rough block budget; generation stops opening constructs beyond it.
    target_blocks: int = 150
    #: Top-level statement count and maximum construct nesting depth.
    toplevel: int = 12
    depth: int = 3
    #: Ops per block ~ max(1, round(gauss(mean, sd))).
    block_ops_mean: float = 6.0
    block_ops_sd: float = 2.5
    #: Op mix (remaining mass is integer ALU).
    load_frac: float = 0.22
    store_frac: float = 0.10
    fp_frac: float = 0.04
    #: Probability that an op reuses an existing register as destination
    #: (creates cross-path conflicts exercising renaming).
    reuse_frac: float = 0.15
    #: Probability that an op consumes the immediately preceding result,
    #: forming sequential dependence chains.  Integer SPEC code is heavily
    #: chain-bound (address arithmetic -> load -> compare -> branch), which
    #: is precisely why wide-issue machines idle on linear regions and
    #: speculation across treegion paths pays off.
    chain_frac: float = 0.65
    #: Construct mix (relative odds when opening a construct).
    ite_odds: float = 4.0
    it_odds: float = 2.0
    switch_odds: float = 0.4
    loop_odds: float = 1.0
    chain_odds: float = 0.5
    #: Switch fanout range and check-chain length range.
    switch_fanout: Tuple[int, int] = (3, 8)
    chain_len: Tuple[int, int] = (3, 6)
    #: Switch cases are small in real code (set a value, jump): their op
    #: count is sampled with this mean, and they nest further constructs
    #: with this (low) probability.  Keeps wide switch treegions *shallow*
    #: (Figure 9) instead of huge.
    switch_case_ops_mean: float = 2.5
    case_nest_prob: float = 0.15
    #: Probability that a construct arm opens a nested construct.  Hot
    #: regions (loop bodies) nest one level shallower so the hottest
    #: treegions stay modest, as real inner loops are.
    nest_prob: float = 0.3
    #: Branch bias: the hot arm of a two-way branch receives
    #: ``uniform(bias_lo, bias_hi)`` of the incoming weight.
    bias_lo: float = 0.55
    bias_hi: float = 0.8
    #: Probability that a two-way branch is *fully* biased (one arm never
    #: executes) — ijpeg-style biased treegions.
    full_bias_prob: float = 0.05
    #: Switch case weights: a Zipf-ish skew; with ``switch_skew`` high,
    #: most cases get (near-)zero weight — gcc/perl's Figure 9 shape.
    switch_skew: float = 1.0
    #: Expected loop trip counts.
    loop_iters: Tuple[float, float] = (2.0, 12.0)
    entry_count: float = 1000.0


class _Generator:
    def __init__(self, params: SynthParams):
        self.p = params
        self.rng = random.Random(params.seed)
        self.function = Function(params.name)
        self.b = IRBuilder(self.function)
        self.pool: List[Register] = []
        self.blocks_made = 0

    # ------------------------------------------------------------------
    # Block content

    def _operand(self):
        if self.pool and self.rng.random() < 0.75:
            return self.rng.choice(self.pool[-24:])
        return self.rng.randrange(0, 256)

    def _dest(self) -> Optional[Register]:
        if self.pool and self.rng.random() < self.p.reuse_frac:
            return self.rng.choice(self.pool[-24:])
        return None  # builder mints a fresh one

    def _chained_operand(self):
        """Prefer the previous result (dependence chain), else the pool."""
        if self.pool and self.rng.random() < self.p.chain_frac:
            return self.pool[-1]
        return self._operand()

    def _fill_block(self, n_ops: Optional[int] = None) -> None:
        """Emit straight-line ops into the builder's current block."""
        p, rng, b = self.p, self.rng, self.b
        if n_ops is None:
            n_ops = max(1, round(rng.gauss(p.block_ops_mean, p.block_ops_sd)))
        for _ in range(n_ops):
            roll = rng.random()
            if roll < p.load_frac:
                reg = b.ld(self._chained_operand(), rng.randrange(0, 64),
                           dest=self._dest())
                self.pool.append(reg)
            elif roll < p.load_frac + p.store_frac:
                b.st(self._operand(), rng.randrange(0, 64),
                     self._chained_operand())
            elif roll < p.load_frac + p.store_frac + p.fp_frac:
                emit = rng.choice((b.fadd, b.fmul, b.fdiv))
                reg = emit(self._chained_operand(), self._operand(),
                           dest=self._dest())
                self.pool.append(reg)
            else:
                emit = rng.choice(
                    (b.add, b.sub, b.mul, b.and_, b.or_, b.xor, b.shl, b.shr)
                )
                reg = emit(self._chained_operand(), self._operand(),
                           dest=self._dest())
                self.pool.append(reg)

    def _compare(self) -> Register:
        """Branch conditions read the block's latest result — the classic
        compute -> compare -> branch critical chain."""
        cond = self.rng.choice(list(CompareCond))
        return self.b.cmpp(cond, self._chained_operand(), self._operand())

    def _new_block(self, name: str = "") -> BasicBlock:
        self.blocks_made += 1
        return self.b.block(name)

    def _budget_left(self) -> bool:
        return self.blocks_made < self.p.target_blocks

    # ------------------------------------------------------------------
    # Weights

    def _two_way_split(self, weight: float) -> Tuple[float, float]:
        """(hot, cold) split of a two-way branch's incoming weight."""
        if self.rng.random() < self.p.full_bias_prob:
            return weight, 0.0
        hot = self.rng.uniform(self.p.bias_lo, self.p.bias_hi)
        return weight * hot, weight * (1.0 - hot)

    def _switch_split(self, weight: float, fanout: int) -> List[float]:
        """Skewed case weights (most mass on few cases when skew high)."""
        raw = [
            (1.0 / (rank + 1) ** self.p.switch_skew)
            * self.rng.uniform(0.5, 1.5)
            for rank in range(fanout)
        ]
        # Randomly zero a fraction of cases under heavy skew (gcc/perl:
        # "most of them had zero profile weight").
        for i in range(fanout):
            if i > 0 and self.rng.random() < min(0.8, self.p.switch_skew / 3):
                raw[i] = 0.0
        total = sum(raw) or 1.0
        self.rng.shuffle(raw)
        return [weight * r / total for r in raw]

    # ------------------------------------------------------------------
    # Constructs.  Each takes (current block, weight), emits into it, and
    # returns the (new current block, weight) control falls into next.

    def _statement(self, block: BasicBlock, weight: float,
                   depth: int) -> Tuple[BasicBlock, float]:
        if depth <= 0 or not self._budget_left():
            return block, weight
        odds = [
            (self.p.ite_odds, self._gen_ite),
            (self.p.it_odds, self._gen_it),
            (self.p.switch_odds, self._gen_switch),
            (self.p.loop_odds, self._gen_loop),
            (self.p.chain_odds, self._gen_chain),
        ]
        total = sum(o for o, _ in odds)
        roll = self.rng.uniform(0, total)
        for odd, gen in odds:
            if roll < odd:
                return gen(block, weight, depth)
            roll -= odd
        return block, weight

    def _maybe_nest(self, block: BasicBlock, weight: float,
                    depth: int) -> Tuple[BasicBlock, float]:
        if depth > 0 and self._budget_left() and self.rng.random() < self.p.nest_prob:
            return self._statement(block, weight, depth - 1)
        return block, weight

    def _gen_ite(self, block, weight, depth):
        self.b.at(block)
        self._fill_block()
        pred = self._compare()
        then_bb = self._new_block("then")
        else_bb = self._new_block("else")
        join = self._new_block("join")
        w_then, w_else = self._two_way_split(weight)
        br = self.b.br_true(pred, then_bb, else_bb)
        block.taken_edge.weight = w_then
        block.fallthrough_edge.weight = w_else

        self.b.at(then_bb)
        then_bb.weight = w_then
        self._fill_block()
        end_then, w_then_out = self._maybe_nest(then_bb, w_then, depth)
        self.b.at(end_then)
        self.b.jump(join)
        end_then.taken_edge.weight = w_then_out

        self.b.at(else_bb)
        else_bb.weight = w_else
        self._fill_block()
        end_else, w_else_out = self._maybe_nest(else_bb, w_else, depth)
        self.b.at(end_else)
        self.b.fallthrough(join)
        end_else.fallthrough_edge.weight = w_else_out

        join.weight = w_then_out + w_else_out
        return join, join.weight

    def _gen_it(self, block, weight, depth):
        self.b.at(block)
        self._fill_block()
        pred = self._compare()
        then_bb = self._new_block("then")
        join = self._new_block("join")
        w_then, w_skip = self._two_way_split(weight)
        self.b.br_true(pred, then_bb, join)
        block.taken_edge.weight = w_then
        block.fallthrough_edge.weight = w_skip

        self.b.at(then_bb)
        then_bb.weight = w_then
        self._fill_block()
        end_then, w_then_out = self._maybe_nest(then_bb, w_then, depth)
        self.b.at(end_then)
        self.b.jump(join)
        end_then.taken_edge.weight = w_then_out

        join.weight = w_then_out + w_skip
        return join, join.weight

    def _gen_switch(self, block, weight, depth):
        fanout = self.rng.randint(*self.p.switch_fanout)
        self.b.at(block)
        self._fill_block()
        selector = self._operand()
        if not isinstance(selector, Register):
            selector = self.b.mov(selector)
        cases = [self._new_block(f"case{i}") for i in range(fanout)]
        default = self._new_block("default")
        join = self._new_block("join")
        weights = self._switch_split(weight, fanout + 1)
        self.b.switch(selector, [(i, c) for i, c in enumerate(cases)], default)
        for edge, w in zip(block.out_edges[-(fanout + 1):], weights):
            edge.weight = w

        out_weight = 0.0
        for case_block, w in zip(cases + [default], weights):
            self.b.at(case_block)
            case_block.weight = w
            case_ops = max(1, round(self.rng.gauss(
                self.p.switch_case_ops_mean, 1.0)))
            self._fill_block(case_ops)
            end, w_out = case_block, w
            if (depth > 0 and self._budget_left()
                    and self.rng.random() < self.p.case_nest_prob):
                end, w_out = self._statement(case_block, w, depth - 1)
                self.b.at(end)
            self.b.jump(join)
            end.taken_edge.weight = w_out
            out_weight += w_out
        join.weight = out_weight
        return join, out_weight

    def _gen_loop(self, block, weight, depth):
        self.b.at(block)
        self._fill_block()
        header = self._new_block("header")
        body = self._new_block("body")
        exit_bb = self._new_block("exit")
        iters = self.rng.uniform(*self.p.loop_iters)
        self.b.fallthrough(header)
        block.fallthrough_edge.weight = weight

        header.weight = weight * (iters + 1.0)
        self.b.at(header)
        pred = self._compare()
        self.b.br_true(pred, body, exit_bb)
        header.taken_edge.weight = weight * iters
        header.fallthrough_edge.weight = weight

        self.b.at(body)
        body.weight = weight * iters
        self._fill_block()
        # Loop bodies carry the most weight; keep their nested control
        # structure a level shallower than cold code.
        end_body, w_body = self._maybe_nest(body, body.weight, depth - 1)
        self.b.at(end_body)
        self.b.jump(header)
        end_body.taken_edge.weight = w_body
        # Flow conservation through nested early structure is preserved by
        # construction (nested constructs conserve weight).

        exit_bb.weight = weight
        return exit_bb, weight

    def _gen_chain(self, block, weight, depth):
        """A vortex-style check chain: k blocks each conditionally bailing
        to a shared cold block; the intermediate exits are (nearly) never
        taken, so the whole chain executes with one weight — the Figure 10
        "linearized treegion" shape."""
        length = self.rng.randint(*self.p.chain_len)
        cold = self._new_block("cold")
        current = block
        current_weight = weight
        self.b.at(current)
        cold_weight = 0.0
        for _ in range(length):
            self._fill_block()
            pred = self._compare()
            nxt = self._new_block("chk")
            bail = weight * 0.0005 * self.rng.random()
            self.b.br_true(pred, cold, nxt)
            current.taken_edge.weight = bail
            current.fallthrough_edge.weight = current_weight - bail
            cold_weight += bail
            nxt.weight = current_weight - bail
            current_weight = nxt.weight
            current = nxt
            self.b.at(current)
        join = self._new_block("join")
        self._fill_block()
        self.b.jump(join)
        current.taken_edge.weight = current_weight

        self.b.at(cold)
        cold.weight = cold_weight
        self._fill_block(2)
        self.b.fallthrough(join)
        cold.fallthrough_edge.weight = cold_weight

        join.weight = current_weight + cold_weight
        return join, join.weight

    # ------------------------------------------------------------------

    def run(self) -> Function:
        entry = self._new_block("entry")
        entry.weight = self.p.entry_count
        self.b.at(entry)
        # Seed the register pool with a few loads.
        for offset in range(4):
            self.pool.append(self.b.ld(0, offset))

        block, weight = entry, self.p.entry_count
        for _ in range(self.p.toplevel):
            if not self._budget_left():
                break
            block, weight = self._statement(block, weight, self.p.depth)
        self.b.at(block)
        self._fill_block()
        self.b.ret(self._operand())
        # The pool deliberately reuses destination registers across sibling
        # arms, so some registers are read on paths that bypass every def.
        # Those are genuine implicit inputs of the generated function:
        # declare them as parameters so the IR is closed under flow-
        # sensitive use-def (the benchmarks are never interpreted, so the
        # extra parameters change nothing but the function signature).
        liveness = compute_liveness(self.function.cfg)
        entry_live = liveness.live_in(self.function.cfg.entry)
        self.function.params = sorted(entry_live)
        return self.function


def generate_function(params: SynthParams) -> Function:
    """Generate one synthetic function."""
    return _Generator(params).run()


def generate_program(params: SynthParams) -> Program:
    """Generate a single-function program named after the preset."""
    program = Program(entry=params.name)
    program.add_function(generate_function(params))
    return program
