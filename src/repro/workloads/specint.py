"""SPECint95 stand-in presets.

One :class:`SynthParams` per benchmark, tuned so the *shape* statistics the
paper reports (Tables 1 and 2: blocks and ops per treegion/SLR) and the
branch-behaviour pathologies it analyses come out qualitatively right:

=========  =====================================================
compress   small program, mildly biased branches
gcc        large, switch-heavy (wide shallow treegions, Fig. 9)
go         large, deep branchy code, bigger blocks
ijpeg      loop kernels with strongly biased branches (Fig. 7)
li         small interpreter loop, moderate switches
m88ksim    simulator: big decode switches, larger treegions
perl       interpreter: the widest switches in the suite (Fig. 9)
vortex     straight-line check chains (linearized trees, Fig. 10)
=========  =====================================================

Absolute sizes are scaled down (hundreds of blocks per program instead of
tens of thousands) to keep the full experiment matrix fast; all comparisons
in the paper are ratios, which scaling preserves.
"""

from __future__ import annotations

from typing import Dict, List

from repro.ir.function import Program
from repro.workloads.synthetic import SynthParams, generate_program

SPECINT95: Dict[str, SynthParams] = {
    "compress": SynthParams(
        name="compress", seed=9501, target_blocks=90, toplevel=9, depth=3,
        block_ops_mean=6.5, switch_odds=0.15, switch_fanout=(3, 5),
        loop_odds=1.2, chain_odds=0.3, bias_lo=0.52, bias_hi=0.75,
        full_bias_prob=0.05, chain_frac=0.75,
    ),
    "gcc": SynthParams(
        name="gcc", seed=9502, target_blocks=520, toplevel=40, depth=3,
        block_ops_mean=6.5, switch_odds=0.35, switch_fanout=(8, 40),
        switch_skew=2.2, loop_odds=0.8, chain_odds=0.4,
        bias_lo=0.5, bias_hi=0.72, full_bias_prob=0.08, chain_frac=0.75,
    ),
    "go": SynthParams(
        name="go", seed=9503, target_blocks=320, toplevel=24, depth=3,
        block_ops_mean=7.0, switch_odds=0.25, switch_fanout=(4, 12),
        ite_odds=5.0, loop_odds=0.9, chain_odds=0.3,
        bias_lo=0.5, bias_hi=0.7, full_bias_prob=0.04, chain_frac=0.72,
    ),
    "ijpeg": SynthParams(
        name="ijpeg", seed=9504, target_blocks=220, toplevel=18, depth=2,
        block_ops_mean=7.0, fp_frac=0.10, switch_odds=0.2,
        switch_fanout=(3, 8), loop_odds=1.6, chain_odds=0.2,
        bias_lo=0.85, bias_hi=0.99, full_bias_prob=0.45, chain_frac=0.7,
    ),
    "li": SynthParams(
        name="li", seed=9505, target_blocks=150, toplevel=14, depth=3,
        block_ops_mean=6.0, switch_odds=0.35, switch_fanout=(4, 10),
        loop_odds=1.0, chain_odds=0.4, bias_lo=0.5, bias_hi=0.72,
        full_bias_prob=0.06, chain_frac=0.78,
    ),
    "m88ksim": SynthParams(
        name="m88ksim", seed=9506, target_blocks=260, toplevel=18, depth=3,
        block_ops_mean=7.5, switch_odds=0.5, switch_fanout=(6, 20),
        switch_skew=1.6, loop_odds=0.9, chain_odds=0.5,
        bias_lo=0.52, bias_hi=0.75, full_bias_prob=0.07, chain_frac=0.75,
    ),
    "perl": SynthParams(
        name="perl", seed=9507, target_blocks=500, toplevel=34, depth=3,
        block_ops_mean=6.5, switch_odds=0.35, switch_fanout=(10, 48),
        switch_skew=2.6, loop_odds=0.7, chain_odds=0.3,
        bias_lo=0.5, bias_hi=0.72, full_bias_prob=0.08, chain_frac=0.75,
    ),
    "vortex": SynthParams(
        name="vortex", seed=9508, target_blocks=300, toplevel=18, depth=3,
        block_ops_mean=9.5, block_ops_sd=3.5, switch_odds=0.3,
        switch_fanout=(3, 8), loop_odds=0.6, chain_odds=1.2,
        chain_len=(3, 6), bias_lo=0.52, bias_hi=0.75, full_bias_prob=0.05,
        chain_frac=0.78,
    ),
}

BENCHMARK_NAMES: List[str] = list(SPECINT95)

_cache: Dict[str, Program] = {}


def build_benchmark(name: str, use_cache: bool = True) -> Program:
    """Generate (or fetch the cached) stand-in program for a benchmark.

    Callers that mutate the CFG must clone first (the evaluation runner
    does) — the cache hands out the same object.
    """
    if use_cache and name in _cache:
        return _cache[name]
    program = generate_program(SPECINT95[name])
    if use_cache:
        _cache[name] = program
    return program


def build_suite(use_cache: bool = True) -> Dict[str, Program]:
    """All eight benchmarks, keyed by name, in the paper's table order."""
    return {name: build_benchmark(name, use_cache) for name in BENCHMARK_NAMES}
