"""The three pathological treegion shapes the paper analyses.

* :func:`build_biased_treegion` — Figure 7: "the leftmost path is the only
  path executed in the treegion" (the ijpeg case, where SLRs match
  treegions because one path has all the weight).
* :func:`build_wide_shallow_treegion` — Figure 9: a treegion rooted by a
  very wide multiway branch whose destinations have roughly equal (small)
  exit counts; the destinations with the highest exit counts are *not* the
  most executed, which defeats the exit-count heuristic (the gcc/perl
  case).
* :func:`build_linearized_treegion` — Figure 10: a single-path treegion of
  equal-weight blocks whose only taken exit is at the *bottom*; sorting by
  exit count (as weighted count does under equal weights) retires the
  never-taken upper exits first and delays the real one (the vortex case).

Each builder returns a :class:`Program` whose entry function's topmost
treegion has the shape in question, with profile weights as annotated in
the figures.
"""

from __future__ import annotations

from typing import List

from repro.ir.builder import IRBuilder
from repro.ir.cfg import BasicBlock
from repro.ir.function import Program
from repro.ir.types import CompareCond


def _ops(b: IRBuilder, n: int) -> None:
    """Emit n chained ALU ops (a little dependence height everywhere)."""
    value = b.ld(0, 0)
    for i in range(n - 1):
        value = b.add(value, i + 1)


def build_biased_treegion(depth: int = 3, hot_weight: float = 100.0) -> Program:
    """Figure 7: a binary tree where only the leftmost path executes."""
    program = Program(entry="biased")
    program.add_global("G")
    fn = program.new_function("biased")
    b = IRBuilder(fn)

    merge = None
    current = b.block("root")
    current.weight = hot_weight
    frontier: List[BasicBlock] = []
    merge = b.block("merge")

    block = current
    for level in range(depth):
        b.at(block)
        _ops(b, 3)
        pred = b.cmpp(CompareCond.GT, b.ld(0, level), 0)
        hot = b.block(f"hot{level}")
        cold = b.block(f"cold{level}")
        b.br_true(pred, cold, hot)  # taken = cold (never), fall = hot
        block.taken_edge.weight = 0.0
        block.fallthrough_edge.weight = block.weight
        cold.weight = 0.0
        hot.weight = block.weight
        b.at(cold)
        _ops(b, 2)
        b.jump(merge)
        cold.taken_edge.weight = 0.0
        block = hot
    b.at(block)
    _ops(b, 3)
    b.jump(merge)
    block.taken_edge.weight = block.weight

    b.at(merge)
    merge.weight = hot_weight
    b.ret(0)
    return program


def build_wide_shallow_treegion(fanout: int = 8,
                                hot_case: int = 5,
                                weight: float = 100.0) -> Program:
    """Figure 9: switch-rooted, shallow; high exit count != high weight.

    Even-numbered destinations contain an inner branch (two exits each);
    odd destinations exit directly (one exit).  All the profile weight goes
    through ``hot_case`` — chosen odd so the hottest destination has the
    *lowest* exit count, reproducing the heuristic failure.
    """
    if hot_case % 2 == 0:
        raise ValueError("hot_case must be odd (a low-exit-count destination)")
    program = Program(entry="wide")
    program.add_global("G")
    fn = program.new_function("wide")
    b = IRBuilder(fn)

    root = b.block("root")
    merge = b.block("merge")
    root.weight = weight
    b.at(root)
    _ops(b, 2)
    selector = b.ld(0, 0)
    cases = [b.block(f"dest{i}") for i in range(fanout)]
    default = b.block("default")
    b.at(root)
    b.switch(selector, [(i, c) for i, c in enumerate(cases)], default)
    for i, edge in enumerate(root.case_edges()):
        edge.weight = weight if i == hot_case else 0.0

    for i, dest in enumerate(cases):
        w = weight if i == hot_case else 0.0
        dest.weight = w
        b.at(dest)
        _ops(b, 3)
        if i % 2 == 0:
            # Two exits: an inner conditional splitting to merge twice.
            pred = b.cmpp(CompareCond.LT, b.ld(0, i), 10)
            side = b.block(f"side{i}")
            b.br_true(pred, merge, side)
            dest.taken_edge.weight = 0.0
            dest.fallthrough_edge.weight = w
            side.weight = w
            b.at(side)
            _ops(b, 2)
            b.jump(merge)
            side.taken_edge.weight = w
        else:
            b.jump(merge)
            dest.taken_edge.weight = w

    b.at(default)
    default.weight = 0.0
    _ops(b, 2)
    b.jump(merge)
    default.taken_edge.weight = 0.0

    b.at(merge)
    merge.weight = weight
    b.ret(0)
    return program


def build_linearized_treegion(length: int = 5, weight: float = 100.0) -> Program:
    """Figure 10: one execution path; only the bottom exit is ever taken."""
    program = Program(entry="linearized")
    program.add_global("G")
    fn = program.new_function("linearized")
    b = IRBuilder(fn)

    cold = b.block("cold")
    hot_exit = b.block("hot_exit")

    block = b.block("top")
    fn.cfg.set_entry(block)
    block.weight = weight
    for i in range(length):
        b.at(block)
        _ops(b, 3)
        pred = b.cmpp(CompareCond.EQ, b.ld(0, i), -1)
        nxt = b.block(f"step{i}")
        b.br_true(pred, cold, nxt)
        block.taken_edge.weight = 0.0
        block.fallthrough_edge.weight = weight
        nxt.weight = weight
        block = nxt
    b.at(block)
    _ops(b, 3)
    b.jump(hot_exit)
    block.taken_edge.weight = weight

    b.at(cold)
    cold.weight = 0.0
    _ops(b, 2)
    b.fallthrough(hot_exit)
    cold.fallthrough_edge.weight = 0.0

    b.at(hot_exit)
    hot_exit.weight = weight
    b.ret(0)
    return program
