"""Workloads: synthetic SPECint95 stand-ins and the paper's example CFGs.

The paper evaluates on SPECint95 compiled by IMPACT/Elcor/LEGO with
training-input profiles.  Neither the benchmarks nor those compilers are
available here, so this package provides the substitution documented in
DESIGN.md: a deterministic *structured* CFG generator
(:mod:`repro.workloads.synthetic`) with one parameter preset per SPECint95
program (:mod:`repro.workloads.specint`), tuned so the region-shape
statistics and branch-bias pathologies that drive the paper's results are
reproduced:

* ijpeg's *biased* treegions (Figure 7),
* gcc/perl's *wide, shallow* switch-rooted treegions (Figure 9),
* vortex's *linearized* equal-weight treegions (Figure 10),

each of which is also available in isolation from
:mod:`repro.workloads.pathological`.  The worked example of Figures 1/4/5
is built exactly (registers and weights included) by
:mod:`repro.workloads.paper_example`.
"""

from repro.workloads.synthetic import SynthParams, generate_program
from repro.workloads.specint import (
    SPECINT95,
    BENCHMARK_NAMES,
    build_benchmark,
    build_suite,
)
from repro.workloads.paper_example import build_paper_example
from repro.workloads.pathological import (
    build_biased_treegion,
    build_wide_shallow_treegion,
    build_linearized_treegion,
)

__all__ = [
    "SynthParams",
    "generate_program",
    "SPECINT95",
    "BENCHMARK_NAMES",
    "build_benchmark",
    "build_suite",
    "build_paper_example",
    "build_biased_treegion",
    "build_wide_shallow_treegion",
    "build_linearized_treegion",
]
