"""The paper's worked example (Figures 1, 4, 5, 12), reconstructed exactly.

The CFG, its ops (register names included), and the profile weights are
taken from the figures:

* ``bb1``: ``r1 = LD(A); r2 = LD(B); p1 = CMPP(r1 > r2)``, branch to
  ``bb8`` (weight 40) else fall into ``bb2`` (weight 60);
* ``bb2``: ``r3 = r1 + r2; p3 = CMPP(r3 < 100)``, branch to ``bb4``
  (weight 25) else ``bb3`` (weight 35);
* ``bb3``: ``r4 = 1; r5 = 2`` → ``bb5``;
* ``bb4``: ``r4 = 3; r5 = 4`` → ``bb5``  (the defs renamed in Figure 5);
* ``bb5`` (merge): ``r6 = 0; r7 = r4 + r5`` → ``bb9``;
* ``bb8``: ``r6 = 5`` → ``bb9``  (not live-out of the treegion's other
  exits, hence executed speculatively without renaming in Figure 5);
* ``bb9`` (merge): ``ST(C) = r6``, return.

The example section of the paper assumes a 4-issue universal machine with
*unit* latencies for every op (unlike the main experiments, where loads
take 2 cycles), so :func:`paper_example_machine` provides exactly that.
"""

from __future__ import annotations

from repro.ir.builder import IRBuilder
from repro.ir.function import Program
from repro.ir.registers import Register
from repro.ir.types import CompareCond, RegClass
from repro.machine.model import MachineModel

#: Profile weights of the three paths (Figures 4/5).
W_BB3, W_BB4, W_BB8 = 35.0, 25.0, 40.0


def paper_example_machine(issue_width: int = 4) -> MachineModel:
    """The example's machine: universal units, everything unit latency."""
    return MachineModel(
        name=f"{issue_width}U-unit", issue_width=issue_width, latencies={},
        use_btr=True,
    )


def build_paper_example() -> Program:
    """Figure 1's CFG with the figures' registers, ops, and weights."""
    program = Program(entry="example")
    program.add_global("A", initial=[7])
    program.add_global("B", initial=[3])
    program.add_global("C")

    fn = program.new_function("example")
    b = IRBuilder(fn)

    def gpr(i: int) -> Register:
        reg = Register(RegClass.GPR, i)
        fn.regs.reserve(reg)
        return reg

    r1, r2, r3, r4, r5, r6, r7 = (gpr(i) for i in range(1, 8))

    bb1 = b.block("bb1")
    bb2 = b.block("bb2")
    bb3 = b.block("bb3")
    bb4 = b.block("bb4")
    bb5 = b.block("bb5")
    bb8 = b.block("bb8")
    bb9 = b.block("bb9")

    b.at(bb1)
    b.ld(0, 0, dest=r1)   # r1 = LD (A)
    b.ld(1, 0, dest=r2)   # r2 = LD (B)
    p1 = b.cmpp(CompareCond.GT, r1, r2)
    b.br_true(p1, bb8, bb2)

    b.at(bb2)
    b.add(r1, r2, dest=r3)
    p3 = b.cmpp(CompareCond.LT, r3, 100)
    b.br_true(p3, bb4, bb3)

    b.at(bb3)
    b.mov(1, dest=r4)
    b.mov(2, dest=r5)
    b.jump(bb5)

    b.at(bb4)
    b.mov(3, dest=r4)
    b.mov(4, dest=r5)
    b.jump(bb5)

    b.at(bb5)
    b.mov(0, dest=r6)
    b.add(r4, r5, dest=r7)
    b.jump(bb9)

    b.at(bb8)
    b.mov(5, dest=r6)
    b.jump(bb9)

    b.at(bb9)
    b.st(2, 0, r6)        # ST (C) = r6
    b.ret(r6)             # r7 is defined only along bb5 (kept live into
    #                       bb5 so the figures' r4/r5 renaming triggers)

    # Profile weights from the figures.
    total = W_BB3 + W_BB4 + W_BB8
    bb1.weight = total
    bb2.weight = W_BB3 + W_BB4
    bb3.weight = W_BB3
    bb4.weight = W_BB4
    bb5.weight = W_BB3 + W_BB4
    bb8.weight = W_BB8
    bb9.weight = total
    bb1.taken_edge.weight = W_BB8
    bb1.fallthrough_edge.weight = W_BB3 + W_BB4
    bb2.taken_edge.weight = W_BB4
    bb2.fallthrough_edge.weight = W_BB3
    bb3.taken_edge.weight = W_BB3
    bb4.taken_edge.weight = W_BB4
    bb5.taken_edge.weight = W_BB3 + W_BB4
    bb8.taken_edge.weight = W_BB8
    return program
