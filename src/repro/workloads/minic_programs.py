"""A library of executable minic workloads.

Used by the co-simulation tests, the examples, and the dynamic-scheduling
study (the paper's future-work item on "dynamically scheduled processor
models" needs real executed traces, which the synthetic CFG suite cannot
provide).  Each entry is (source, default arguments); all programs
terminate on any small non-negative input.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.ir.function import Program
from repro.lang import compile_source

MINIC_PROGRAMS: Dict[str, Tuple[str, List[int]]] = {
    # Insertion sort + polynomial checksum: data-dependent inner loop.
    "sort": (
        """
        array data[16] = {14, 3, 9, 1, 12, 7, 15, 2, 8, 11, 5, 13, 4, 10, 6, 0};
        func main(n) {
            for (var i = 1; i < n; i = i + 1) {
                var key = data[i];
                var j = i - 1;
                while (j >= 0 && data[j] > key) {
                    data[j + 1] = data[j];
                    j = j - 1;
                }
                data[j + 1] = key;
            }
            var acc = 0;
            for (var k = 0; k < n; k = k + 1) { acc = acc * 3 + data[k]; }
            return acc;
        }
        """,
        [16],
    ),
    # Fibonacci by dynamic programming: a tight dependence chain.
    "fib": (
        """
        func main(n) {
            var a = 0;
            var b = 1;
            for (var i = 0; i < n; i = i + 1) {
                var t = a + b;
                a = b;
                b = t % 9973;
            }
            return a;
        }
        """,
        [40],
    ),
    # 4x4 matrix multiply over flat arrays: parallel-friendly FMA chains.
    "matmul": (
        """
        array A[16] = {1,2,3,4, 5,6,7,8, 9,10,11,12, 13,14,15,16};
        array B[16] = {16,15,14,13, 12,11,10,9, 8,7,6,5, 4,3,2,1};
        array C[16];
        func main(n) {
            for (var i = 0; i < 4; i = i + 1) {
                for (var j = 0; j < 4; j = j + 1) {
                    var acc = 0;
                    for (var k = 0; k < 4; k = k + 1) {
                        acc = acc + A[i * 4 + k] * B[k * 4 + j];
                    }
                    C[i * 4 + j] = acc;
                }
            }
            var total = 0;
            for (var t = 0; t < 16; t = t + 1) { total = total + C[t]; }
            return total + n;
        }
        """,
        [0],
    ),
    # A branchy hash/CRC-style loop: the treegion sweet spot.
    "hash": (
        """
        array msg[12] = {104, 112, 99, 97, 49, 57, 57, 56, 116, 114, 101, 101};
        func main(n) {
            var h = 5381;
            for (var r = 0; r < n; r = r + 1) {
                for (var i = 0; i < 12; i = i + 1) {
                    var c = msg[i];
                    if (c & 1 == 1) { h = h * 33 + c; }
                    else { h = h ^ (c << 2); }
                    if (h > 1000000) { h = h % 999983; }
                }
            }
            return h;
        }
        """,
        [3],
    ),
    # A state machine driven by a switch: gcc/perl-shaped control flow.
    "statemachine": (
        """
        array input[10] = {0, 1, 2, 1, 0, 2, 2, 1, 0, 1};
        func main(n) {
            var state = 0;
            var count = 0;
            for (var i = 0; i < n; i = i + 1) {
                var symbol = input[i % 10];
                switch (state * 3 + symbol) {
                    case 0: { state = 1; }
                    case 1: { state = 2; count = count + 1; }
                    case 2: { state = 0; }
                    case 3: { state = 2; }
                    case 4: { state = 1; count = count + 2; }
                    case 5: { state = 2; }
                    case 6: { state = 0; count = count + 3; }
                    case 7: { state = 1; }
                    default: { state = 0; }
                }
            }
            return count * 10 + state;
        }
        """,
        [30],
    ),
}


def build_minic_program(name: str) -> Tuple[Program, List[int]]:
    """Compile one library workload; returns (program, default args)."""
    source, args = MINIC_PROGRAMS[name]
    return compile_source(source), list(args)


def minic_program_names() -> List[str]:
    return list(MINIC_PROGRAMS)
