"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``compile``  — minic source → textual IR on stdout;
* ``run``      — execute a program on the reference interpreter and,
  scheduled, on the VLIW simulator; reports results and cycle counts;
* ``schedule`` — print the region schedules for a program under a chosen
  scheme/machine/heuristic;
* ``bench``    — speedup table over the synthetic SPECint95 stand-ins;
* ``validate`` — seeded differential validation (interpreter vs VLIW
  simulator vs static estimate vs evaluation engine), with automatic
  failure minimization;
* ``trace``    — run the full pipeline under the hierarchical tracer and
  write a Chrome trace-event JSON (open in Perfetto / chrome://tracing);
* ``lint``     — static-analysis diagnostics: IR structure rules, and
  (with ``--schedule``) certification of every region schedule against
  the machine model and dependence graph; exit status 1 when any
  diagnostic reaches ``--fail-on`` severity;
* ``analyze``  — dataflow analysis report: per-region critical-path and
  resource-saturation lower bounds on schedule height next to each
  heuristic's achieved height, the flow-sensitive lint summary, and
  (with ``--calls``) the whole-program call graph; exit status 1 on an
  unsound bound or any lint error;
* ``warm``     — prime the persistent artifact store for a program (or
  the built-in suite) across a scheme/machine/heuristic grid;
* ``serve``    — long-lived compile fleet behind an asyncio front-end
  on ``--endpoint unix:///path`` or ``tcp://host:port`` (framed,
  versioned protocol; content-key sharded stores; ``--shards``);
* ``client``   — one request against a running ``serve`` endpoint
  (compile a program, ``--ping``, ``--stats``, or ``--shutdown``);
* ``soak``     — many-client load soak against a running endpoint (or
  a self-hosted fleet with ``--serve``); reports qps and latency
  percentiles as JSON;
* ``top``      — live ANSI-refresh dashboard over a running fleet's
  ``STATS`` plane (queue depths, hot tier, restarts, rolling latency);
* ``trace-merge`` — stitch per-process distributed-trace JSONL files
  (from ``--trace-dir``) into one Chrome/Perfetto timeline;
* ``dot``      — Graphviz rendering of a function's CFG, clustered by
  region and optionally annotated with schedule cycles.

``serve`` and ``soak`` take ``--trace-dir DIR`` (per-process
distributed-trace span files, merged by ``trace-merge``) and
``--events-log FILE`` (size-rotated JSONL lifecycle event log); see
DESIGN.md §13.

``run``, ``report``, and ``validate`` take ``--metrics FILE`` /
``--trace FILE`` to dump pipeline counters and spans; ``bench`` takes
``--timings-json FILE`` for machine-readable stage timings.  ``run``,
``bench``, and ``report`` take ``--cache-dir DIR`` (with
``--cache-max-mb``) to cache cell results in a content-addressed
artifact store across invocations.

Exit codes: 0 — success; 1 — the tool ran but the result is a failure
(failed seeds, lint errors past ``--fail-on``, simulator disagreement);
2 — the invocation itself is bad (missing file, unknown scheme,
malformed grid spec, unreachable service), reported as one
``repro: error: ...`` line on stderr.

Program inputs may be minic source (``.mc`` or anything else) or textual
IR dumps (detected by the ``program entry=`` header).  Scheme arguments
are typed spec strings (``bb``, ``slr``, ``treegion``, ``superblock``,
``hyperblock``, ``treegion-td[:limit]``) parsed by
:class:`repro.api.SchemeSpec`; everything the CLI does goes through the
:mod:`repro.api` facade.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__, api
from repro.ir.function import Program
from repro.ir.printer import format_program
from repro.interp import Interpreter, profile_program
from repro.schedule import ScheduleOptions
from repro.schedule.priorities import HEURISTICS
from repro.util.errors import ReproError
from repro.evaluation import evaluate_program

#: Plain scheme names offered in ``--help`` (any ``treegion-td:<limit>``
#: spec is accepted too).
SCHEME_CHOICES = ("bb", "slr", "treegion", "superblock", "treegion-td",
                  "hyperblock")


class CLIError(Exception):
    """An operational failure the CLI reports as one line + exit 2.

    Covers bad user inputs (unreadable file, unparsable program, bad
    scheme/machine/grid spec) as opposed to *result* failures, which
    keep their command-specific exit 1, and crashes, which keep their
    tracebacks.
    """


def _load_program(path: str, optimize: bool = False) -> Program:
    try:
        return api.load_program(path, optimize=optimize)
    except (OSError, ReproError, ValueError) as error:
        raise CLIError(f"cannot load {path}: {error}")


def _machine(name: str):
    try:
        return api.machine(name)
    except ValueError as error:
        raise CLIError(str(error))


def _scheme(spec: str):
    try:
        return api.make_scheme(spec)
    except ValueError as error:
        raise CLIError(str(error))


def _parse_args_list(values: Optional[List[str]]) -> List[object]:
    out: List[object] = []
    for value in values or []:
        out.append(float(value) if "." in value else int(value))
    return out


def _region_memo_arg(args):
    """--no-region-memo → False (off); default → None (engine default)."""
    return None if getattr(args, "region_memo", True) else False


def _obs_for(args):
    """(metrics, tracer) per the command's --metrics/--trace flags."""
    from repro.obs import (
        NULL_METRICS, NULL_TRACER, MetricsRegistry, Tracer,
    )

    metrics = MetricsRegistry() if getattr(args, "metrics", None) \
        else NULL_METRICS
    tracer = Tracer() if getattr(args, "trace", None) else NULL_TRACER
    return metrics, tracer


def _write_obs(args, metrics, tracer, timer=None) -> None:
    """Write the files the --metrics/--trace flags asked for."""
    from repro.obs import NullMetrics, write_observability_json

    metrics_path = getattr(args, "metrics", None)
    if metrics_path and not isinstance(metrics, NullMetrics):
        write_observability_json(metrics_path, metrics, timer)
        print(f"metrics written to {metrics_path}", file=sys.stderr)
    trace_path = getattr(args, "trace", None)
    if trace_path and hasattr(tracer, "write_chrome"):
        tracer.write_chrome(trace_path)
        print(f"trace written to {trace_path}", file=sys.stderr)


# ----------------------------------------------------------------------
# Commands

def cmd_compile(args) -> int:
    program = _load_program(args.file, optimize=args.optimize)
    sys.stdout.write(format_program(program))
    return 0


def cmd_run(args) -> int:
    from repro.ir.analysis_cache import record_cache_metrics
    from repro.obs import metrics_scope

    machine = _machine(args.machine)
    program = _load_program(args.file, optimize=args.optimize)
    inputs = _parse_args_list(args.args)
    metrics, tracer = _obs_for(args)
    with tracer.span("interpret"):
        expected = Interpreter(program).run(inputs)
    print(f"interpreter result: {expected}")
    with tracer.span("profile"):
        profile_program(program, inputs=[inputs])
    options = ScheduleOptions(heuristic=args.heuristic,
                              dominator_parallelism=True)
    with metrics_scope(metrics), \
            tracer.span("simulate", scheme=args.scheme,
                        machine=args.machine):
        result, simulator = api.simulate(program, _scheme(args.scheme),
                                         machine, inputs, options)
    simulator.record_metrics(metrics)
    record_cache_metrics(metrics)
    status = "OK" if result == expected else "MISMATCH"
    print(f"VLIW simulator ({args.scheme}, {machine}): {result} [{status}] "
          f"in {simulator.cycles} cycles")
    if getattr(args, "cache_dir", None):
        from repro.api import GridCell

        cell = GridCell(args.file, args.scheme, args.machine,
                        args.heuristic, dominator_parallelism=True)
        cached = api.cached_evaluate(
            [cell], cache_dir=args.cache_dir,
            cache_max_mb=args.cache_max_mb,
            programs={args.file: program}, metrics=metrics, tracer=tracer,
            region_memo=_region_memo_arg(args),
        )[0]
        print(f"cached estimate: {cached.time:g} weighted cycles "
              f"(store at {args.cache_dir})")
    _write_obs(args, metrics, tracer)
    return 0 if result == expected else 1


def cmd_schedule(args) -> int:
    program = _load_program(args.file, optimize=args.optimize)
    if args.args is not None:
        profile_program(program, inputs=[_parse_args_list(args.args)])
    machine = _machine(args.machine)
    options = ScheduleOptions(heuristic=args.heuristic,
                              dominator_parallelism=True)
    result = evaluate_program(program, _scheme(args.scheme), machine,
                              options)
    for schedule in result.schedules:
        print(schedule.format())
        print()
    print(f"estimated time: {result.time:g} weighted cycles; "
          f"code expansion {result.code_expansion:.2f}; "
          f"{result.total_speculated} speculated ops; "
          f"{result.total_copies} rename copies")
    return 0


def cmd_bench(args) -> int:
    from repro.schedule.priorities import DEP_HEIGHT
    from repro.api import GridCell, SchemeSpec
    from repro.util.timing import StageTimer
    from repro.workloads.specint import BENCHMARK_NAMES

    names = args.benchmarks.split(",") if args.benchmarks else BENCHMARK_NAMES
    _machine(args.machine)  # validate the name early
    schemes = (args.schemes.split(",") if args.schemes
               else ["bb", "slr", "superblock", "treegion", "treegion-td"])
    for scheme in schemes:  # validate specs before any work fans out
        try:
            SchemeSpec.parse(scheme)
        except ValueError as error:
            raise CLIError(str(error))
    grid = [GridCell(name, "bb", "1U", DEP_HEIGHT) for name in names] + [
        GridCell(name, scheme, args.machine, args.heuristic,
                 dominator_parallelism=True)
        for name in names
        for scheme in schemes
    ]
    metrics, tracer = _obs_for(args)
    timer = StageTimer()
    if args.cache_dir:
        results = api.cached_evaluate(
            grid, cache_dir=args.cache_dir,
            cache_max_mb=args.cache_max_mb, jobs=args.jobs,
            timer=timer, metrics=metrics, tracer=tracer,
            region_memo=_region_memo_arg(args),
        )
    else:
        results = api.evaluate_grid(grid, jobs=args.jobs, timer=timer,
                                    metrics=metrics, tracer=tracer,
                                    region_memo=_region_memo_arg(args))
    baselines = {r.cell.benchmark: r.time for r in results[:len(names)]}
    rest = iter(results[len(names):])
    print(f"{'program':10s} " + " ".join(f"{s:>12s}" for s in schemes))
    for name in names:
        base = baselines[name]
        cells = [f"{base / next(rest).time:11.2f}x" for _ in schemes]
        print(f"{name:10s} " + " ".join(cells))
    if args.timings:
        print()
        print(timer.format())
    if args.timings_json:
        from repro.obs import write_observability_json

        write_observability_json(args.timings_json, metrics, timer)
        print(f"timings written to {args.timings_json}", file=sys.stderr)
    _write_obs(args, metrics, tracer, timer)
    return 0


def cmd_report(args) -> int:
    from repro.evaluation.report import generate_report
    from repro.util.timing import StageTimer

    names = args.benchmarks.split(",") if args.benchmarks else None
    metrics, tracer = _obs_for(args)
    timer = StageTimer()
    sys.stdout.write(generate_report(names, jobs=args.jobs, timer=timer,
                                     metrics=metrics, tracer=tracer,
                                     cache_dir=args.cache_dir,
                                     cache_max_mb=args.cache_max_mb,
                                     region_memo=_region_memo_arg(args)))
    _write_obs(args, metrics, tracer, timer)
    return 0


def cmd_validate(args) -> int:
    from repro.validate import parse_grid_spec

    try:
        grid = parse_grid_spec(args.grid)
    except ValueError as error:
        raise CLIError(str(error))

    def progress(outcome) -> None:
        if not outcome.ok:
            print(f"seed {outcome.seed}: "
                  f"{outcome.mismatch_count} mismatch(es)")
        elif args.verbose:
            print(f"seed {outcome.seed}: ok "
                  f"({outcome.cells_checked} cells)")

    metrics, tracer = _obs_for(args)
    summary = api.validate(
        args.seeds,
        start=args.start,
        grid=grid,
        jobs=args.jobs,
        shrink=not args.no_shrink,
        max_trials=args.max_trials,
        report_dir=args.report_dir,
        progress=progress,
        metrics=metrics,
        tracer=tracer,
    )
    _write_obs(args, metrics, tracer)
    status = "OK" if summary.ok else "FAIL"
    print(f"{status}: {summary.seeds} seeds, {summary.cells_checked} "
          f"cell-input checks, {len(summary.failures)} failing seed(s)")
    for outcome in summary.failures:
        if outcome.failure is None:
            continue
        failure = outcome.failure
        print(f"  seed {failure.seed} [{failure.check}] cell="
              f"{failure.cell} inputs={failure.inputs}: "
              f"{failure.original_ops} -> {failure.minimized_ops} ops "
              f"({failure.trials} trials)")
        if args.report_dir:
            print(f"    report: {args.report_dir}/"
                  f"failure-seed{failure.seed}.json")
    return 0 if summary.ok else 1


def cmd_trace(args) -> int:
    """Run the full pipeline under the tracer; export Chrome trace JSON."""
    from repro.ir.analysis_cache import record_cache_metrics
    from repro.obs import MetricsRegistry, Tracer, write_observability_json
    from repro.util.timing import StageTimer

    program = _load_program(args.file, optimize=args.optimize)
    if args.args is not None:
        profile_program(program, inputs=[_parse_args_list(args.args)])
    machine = _machine(args.machine)
    options = ScheduleOptions(heuristic=args.heuristic,
                              dominator_parallelism=True)
    tracer = Tracer()
    metrics = MetricsRegistry()
    timer = StageTimer()
    result = evaluate_program(program, _scheme(args.scheme), machine,
                              options, timer=timer, metrics=metrics,
                              tracer=tracer)
    record_cache_metrics(metrics)
    tracer.write_chrome(args.out)
    print(f"trace written to {args.out} "
          f"(open in Perfetto / chrome://tracing)", file=sys.stderr)
    if args.jsonl:
        tracer.write_jsonl(args.jsonl)
        print(f"spans written to {args.jsonl}", file=sys.stderr)
    if args.metrics_out:
        write_observability_json(args.metrics_out, metrics, timer)
        print(f"metrics written to {args.metrics_out}", file=sys.stderr)
    print(f"estimated time: {result.time:g} weighted cycles "
          f"({args.scheme}, {machine})")
    print()
    print(tracer.format_summary())
    print()
    print(metrics.format_table())
    return 0


def _corpus_programs():
    """(label, profiled program) for every built-in workload."""
    from repro.workloads.minic_programs import (
        build_minic_program, minic_program_names,
    )
    from repro.workloads.paper_example import build_paper_example
    from repro.workloads.pathological import (
        build_biased_treegion, build_linearized_treegion,
        build_wide_shallow_treegion,
    )
    from repro.workloads.specint import BENCHMARK_NAMES, build_benchmark

    yield "paper-example", build_paper_example()
    yield "pathological-biased", build_biased_treegion()
    yield "pathological-wide", build_wide_shallow_treegion()
    yield "pathological-linear", build_linearized_treegion()
    for name in BENCHMARK_NAMES:
        yield f"specint-{name}", build_benchmark(name)
    for name in minic_program_names():
        program, canonical_args = build_minic_program(name)
        profile_program(program, inputs=[canonical_args])
        yield f"minic-{name}", program


def cmd_lint(args) -> int:
    from repro.lint import LintReport, Severity
    from repro.lint.run import lint_many

    if (args.file is None) == (not args.corpus):
        raise CLIError("pass exactly one of FILE or --corpus")
    threshold = Severity.parse(args.fail_on)
    _scheme(args.scheme)  # validate the specs before any work fans out
    _machine(args.machine)
    metrics, tracer = _obs_for(args)

    if args.corpus:
        targets = list(_corpus_programs())
    else:
        program = _load_program(args.file, optimize=args.optimize)
        if args.args is not None:
            profile_program(program, inputs=[_parse_args_list(args.args)])
        targets = [(args.file, program)]

    def progress(label, partial) -> None:
        if args.corpus:
            count = len(partial)
            status = "clean" if count == 0 else f"{count} diagnostic(s)"
            print(f"{label}: {status}", file=sys.stderr)

    jobs = args.jobs if args.jobs != 0 else None
    import os as _os

    results = lint_many(
        targets, schedule=args.schedule, scheme=args.scheme,
        machine=args.machine, heuristic=args.heuristic,
        dominator_parallelism=True,
        jobs=(_os.cpu_count() or 1) if jobs is None else jobs,
        metrics=metrics, progress=progress,
    )
    report = LintReport()
    for _label, partial in results:
        report.extend(partial.diagnostics)

    if args.format == "json":
        print(report.format("json"))
    else:
        print(report.format())
    _write_obs(args, metrics, tracer)
    failing = report.at_or_above(threshold)
    return 1 if failing else 0


def cmd_analyze(args) -> int:
    """Dataflow analysis: schedule-height bounds, lint, call graph."""
    import json as _json

    if (args.file is None) == (not args.corpus):
        raise CLIError("pass exactly one of FILE or --corpus")
    schemes = args.schemes.split(",") if args.schemes else None
    machines = args.machines.split(",") if args.machines else None
    heuristics = args.heuristics.split(",") if args.heuristics else None

    if args.corpus:
        targets = _corpus_programs()
    else:
        program = _load_program(args.file, optimize=args.optimize)
        if args.args is not None:
            profile_program(program, inputs=[_parse_args_list(args.args)])
        targets = [(args.file, program)]

    results = []
    failed = False
    for label, program in targets:
        try:
            result = api.analyze_program(
                program, name=label, schemes=schemes, machines=machines,
                heuristics=heuristics, calls=args.calls,
                lint=not args.no_lint,
            )
        except ValueError as error:
            raise CLIError(str(error))
        results.append(result)
        summary = result["summary"]
        lint = result.get("lint")
        bad = (summary["unsound"] > 0
               or (lint is not None and lint["errors"] > 0))
        failed = failed or bad
        if args.corpus:
            status = "FAIL" if bad else "ok"
            print(f"{label}: {summary['regions']} region(s), "
                  f"tight {summary['tight']}/{summary['regions']}, "
                  f"max gap {summary['max_gap']} [{status}]",
                  file=sys.stderr)

    if args.format == "json":
        if args.corpus:
            payload = {
                "programs": results,
                "summary": {
                    "programs": len(results),
                    "regions": sum(r["summary"]["regions"]
                                   for r in results),
                    "unsound": sum(r["summary"]["unsound"]
                                   for r in results),
                    "sound": all(r["summary"]["sound"] for r in results),
                    "lint_errors": sum(
                        r["lint"]["errors"] for r in results
                        if r.get("lint") is not None),
                },
            }
        else:
            payload = results[0]
        print(_json.dumps(payload, indent=2, sort_keys=True))
    else:
        from repro.analysis.driver import format_analysis

        for result in results:
            print(format_analysis(result))
            print()
    return 1 if failed else 0


def cmd_gap(args) -> int:
    """Optimality gap: heuristic heights vs proven branch-and-bound optima."""
    import json as _json

    if (args.file is None) == (not args.corpus):
        raise CLIError("pass exactly one of FILE or --corpus")
    schemes = args.schemes.split(",") if args.schemes else None
    machines = args.machines.split(",") if args.machines else None

    if args.corpus:
        targets = _corpus_programs()
    else:
        program = _load_program(args.file, optimize=args.optimize)
        if args.args is not None:
            profile_program(program, inputs=[_parse_args_list(args.args)])
        targets = [(args.file, program)]

    results = []
    failed = False
    for label, program in targets:
        try:
            result = api.gap_report(
                program, name=label, schemes=schemes, machines=machines,
                budget=args.budget, max_ops=args.max_ops,
                lint=not args.no_lint,
            )
        except ValueError as error:
            raise CLIError(str(error))
        results.append(result)
        summary = result["summary"]
        bad = summary["unsound_bounds"] > 0 or summary["lint_errors"] > 0
        failed = failed or bad
        if args.corpus:
            status = "FAIL" if bad else "ok"
            print(f"{label}: {summary['regions']} region(s), "
                  f"proven {summary['proven']}/{summary['regions']}, "
                  f"improved {summary['improved']} [{status}]",
                  file=sys.stderr)

    if args.corpus:
        from repro.exact.gap import gap_summary

        rows = [row for result in results for row in result["regions"]]
        skipped = sum(r["summary"]["skipped"] for r in results)
        heuristics = results[0]["heuristics"] if results else []
        corpus_summary = gap_summary(rows, heuristics, skipped=skipped)

    if args.format == "json":
        if args.corpus:
            payload = {
                "programs": results,
                "summary": dict(corpus_summary, programs=len(results)),
            }
        else:
            payload = results[0]
        print(_json.dumps(payload, indent=2, sort_keys=True))
    else:
        from repro.exact.gap import format_gap, format_gap_summary

        for result in results:
            print(format_gap(result))
            print()
        if args.corpus and results:
            print("corpus")
            print("\n".join(format_gap_summary(corpus_summary, heuristics)))
    return 1 if failed else 0


def cmd_dot(args) -> int:
    from repro.core import form_treegions
    from repro.ir.dot import cfg_to_dot
    from repro.regions import form_slrs
    from repro.regions.hyperblock import form_hyperblocks

    program = _load_program(args.file)
    function = program.function(args.function or program.entry_name)
    partition = None
    if args.regions == "treegion":
        partition = form_treegions(function.cfg)
    elif args.regions == "slr":
        partition = form_slrs(function.cfg)
    elif args.regions == "hyperblock":
        partition = form_hyperblocks(function.cfg)
    schedules = None
    if args.schedule and partition is not None:
        from repro.schedule.scheduler import schedule_partition

        options = ScheduleOptions(heuristic=args.heuristic,
                                  dominator_parallelism=True)
        schedules = schedule_partition(partition, _machine(args.machine),
                                       options)
    sys.stdout.write(cfg_to_dot(function.cfg, partition=partition,
                                name=function.name, schedules=schedules))
    return 0


# ----------------------------------------------------------------------
# Service & caching commands (repro.serve)


def _warm_grid(args, benchmark: str) -> List:
    """Grid cells for one benchmark label from a --grid axes spec."""
    from repro.api import GridCell
    from repro.validate import parse_grid_spec

    try:
        axes = parse_grid_spec(args.grid)
    except ValueError as error:
        raise CLIError(str(error))
    return [
        GridCell(benchmark, cell.scheme, cell.machine, cell.heuristic,
                 dominator_parallelism=True)
        for cell in axes
    ]


def cmd_warm(args) -> int:
    """Prime the artifact store for a program (or the built-in suite)."""
    metrics, tracer = _obs_for(args)
    programs = None
    cells = []
    if args.file is not None:
        program = _load_program(args.file, optimize=args.optimize)
        if args.args is not None:
            profile_program(program, inputs=[_parse_args_list(args.args)])
        programs = {args.file: program}
        cells = _warm_grid(args, args.file)
    else:
        from repro.workloads.specint import BENCHMARK_NAMES

        names = (args.benchmarks.split(",") if args.benchmarks
                 else list(BENCHMARK_NAMES))
        for name in names:
            cells.extend(_warm_grid(args, name))
    from repro.serve.store import ArtifactStore

    store = ArtifactStore(args.cache_dir, max_mb=args.cache_max_mb)
    with store:
        before = store.stats()
        api.cached_evaluate(cells, store=store, programs=programs,
                            jobs=args.jobs, metrics=metrics,
                            tracer=tracer,
                            region_memo=_region_memo_arg(args))
        after = store.stats()
    print(f"warmed {len(cells)} cell(s): "
          f"{after['hits'] - before['hits']} already cached, "
          f"{after['misses'] - before['misses']} compiled; store holds "
          f"{after['entries']} entries ({after['bytes']} bytes)")
    _write_obs(args, metrics, tracer)
    return 0


def _endpoint_from_args(args) -> str:
    """--endpoint, or the deprecated --socket PATH (→ ``unix://PATH``)."""
    socket_path = getattr(args, "socket", None)
    endpoint = getattr(args, "endpoint", None)
    if endpoint and socket_path:
        raise CLIError("pass --endpoint or --socket, not both")
    if socket_path:
        print("repro: note: --socket PATH is deprecated; use "
              f"--endpoint unix://{socket_path}", file=sys.stderr)
        return f"unix://{socket_path}"
    if not endpoint:
        raise CLIError("pass --endpoint unix:///path or tcp://host:port")
    return endpoint


def _parse_endpoint_arg(value: str):
    import socket as _socket

    from repro.serve.wire import parse_endpoint

    try:
        endpoint = parse_endpoint(value)
    except ValueError as error:
        raise CLIError(str(error))
    if endpoint.scheme == "unix" and not hasattr(_socket, "AF_UNIX"):
        raise CLIError("this platform has no AF_UNIX sockets; "
                       "use a tcp:// endpoint")
    return endpoint


def _fleet_obs(args):
    """(trace_dir, event log) from --trace-dir/--events-log."""
    from repro.serve.events import NULL_EVENTS, EventLog

    trace_dir = getattr(args, "trace_dir", None)
    if trace_dir:
        import os

        os.makedirs(trace_dir, exist_ok=True)
    events_path = getattr(args, "events_log", None)
    events = EventLog(events_path) if events_path else NULL_EVENTS
    return trace_dir, events


def _open_fleet(args, metrics, tracer, trace_dir=None, events=None):
    from repro.serve.events import NULL_EVENTS

    return api.open_fleet(
        shards=args.shards, cache_dir=args.cache_dir,
        cache_max_mb=args.cache_max_mb, jobs=args.jobs,
        batch_size=args.batch_size, max_pending=args.max_pending,
        job_timeout=args.job_timeout, retries=args.retries,
        metrics=metrics, tracer=tracer,
        trace_dir=trace_dir,
        events=events if events is not None else NULL_EVENTS,
    )


def cmd_serve(args) -> int:
    """Serve the compile fleet until a client sends shutdown."""
    from repro.serve.frontend import FrontendServer

    endpoint = _parse_endpoint_arg(_endpoint_from_args(args))
    metrics, tracer = _obs_for(args)
    trace_dir, events = _fleet_obs(args)
    fleet = _open_fleet(args, metrics, tracer, trace_dir=trace_dir,
                        events=events)
    server = FrontendServer(fleet, endpoint, metrics=metrics,
                            trace_dir=trace_dir, events=events)
    try:
        bound = server.start()
    except OSError as error:
        fleet.close(drain=False)
        raise CLIError(f"cannot listen on {endpoint}: {error}")
    print(f"serving on {bound} ({args.shards} shard(s), cache: "
          f"{args.cache_dir or 'none'})", file=sys.stderr)
    try:
        server.join()
    except KeyboardInterrupt:
        server.stop()
    finally:
        fleet.close(drain=True)
        events.close()
        print(f"fleet stats: {fleet.stats()}", file=sys.stderr)
        _write_obs(args, metrics, tracer)
    return 0


def cmd_client(args) -> int:
    """One client round trip against a running ``repro serve`` endpoint."""
    import json as _json

    from repro.api import GridCell
    from repro.serve.client import Client, ClientError

    endpoint = _parse_endpoint_arg(_endpoint_from_args(args))
    if not (args.ping or args.stats or args.shutdown) and args.file is None:
        raise CLIError("pass FILE to compile, or one of "
                       "--ping/--stats/--shutdown")
    try:
        with Client(endpoint, timeout=args.timeout) as client:
            if args.ping:
                reply = client.ping()
                output = {"ok": True, "healthy": reply.healthy,
                          "protocol": reply.protocol_version,
                          "schema": reply.schema, "shards": reply.shards}
            elif args.stats:
                output = {"ok": True, "stats": client.stats()}
            elif args.shutdown:
                client.shutdown()
                output = {"ok": True, "shutdown": True}
            else:
                program = _load_program(args.file, optimize=args.optimize)
                if args.args is not None:
                    profile_program(program,
                                    inputs=[_parse_args_list(args.args)])
                _scheme(args.scheme)  # validate specs client-side
                _machine(args.machine)
                cell = GridCell(args.file, args.scheme, args.machine,
                                args.heuristic, dominator_parallelism=True)
                reply = client.submit(
                    cell, program_text=format_program(program))
                output = {"ok": True, "cached": reply.cached,
                          "attempts": reply.attempts,
                          "shard": reply.shard, "source": reply.source,
                          "result": reply.result}
    except ClientError as error:
        raise CLIError(str(error))
    except OSError as error:
        raise CLIError(f"cannot reach service at {endpoint}: {error}")
    print(_json.dumps(output, indent=2, sort_keys=True))
    return 0


def cmd_soak(args) -> int:
    """Many-client soak against a compile front-end; JSON report out."""
    import json as _json

    from repro.serve.soak import run_soak

    from repro.workloads.specint import BENCHMARK_NAMES

    names = (args.benchmarks.split(",") if args.benchmarks
             else list(BENCHMARK_NAMES))
    cells = []
    for name in names:
        cells.extend(_warm_grid(args, name))
    if not cells:
        raise CLIError("the soak grid is empty; pass --benchmarks/--grid")
    metrics, tracer = _obs_for(args)
    trace_dir, events = _fleet_obs(args)

    server = fleet = None
    if args.serve:
        from repro.serve.frontend import FrontendServer

        fleet = _open_fleet(args, metrics, tracer, trace_dir=trace_dir,
                            events=events)
        server = FrontendServer(
            fleet, args.endpoint or "tcp://127.0.0.1:0", metrics=metrics,
            trace_dir=trace_dir, events=events)
        endpoint = server.start()
        print(f"soak fleet serving on {endpoint}", file=sys.stderr)
    else:
        endpoint = _parse_endpoint_arg(_endpoint_from_args(args))
    try:
        report = run_soak(
            endpoint, cells, clients=args.clients,
            requests=args.requests, ramp_seconds=args.ramp,
            metrics=metrics, trace_dir=trace_dir,
        )
    finally:
        if server is not None:
            server.stop()
        if fleet is not None:
            fleet.close(drain=False)
        events.close()
    summary = report.as_dict()
    print(_json.dumps(summary, indent=2, sort_keys=True))
    if trace_dir:
        print(f"distributed-trace spans in {trace_dir} "
              f"(merge with: repro trace-merge {trace_dir})",
              file=sys.stderr)
    _write_obs(args, metrics, tracer)
    return 0 if report.dropped == 0 and not report.errors else 1


def cmd_top(args) -> int:
    """Live ANSI dashboard over a running fleet's STATS plane."""
    from repro.serve.top import run_top

    endpoint = _parse_endpoint_arg(_endpoint_from_args(args))
    if args.interval <= 0:
        raise CLIError("--interval must be positive")
    return run_top(endpoint, interval=args.interval,
                   iterations=args.iterations, clear=not args.no_clear)


def cmd_trace_merge(args) -> int:
    """Stitch per-process span JSONL into one Perfetto timeline."""
    from repro.obs.distributed import merge_traces

    try:
        merged = merge_traces(args.trace_dir)
    except OSError as error:
        raise CLIError(f"cannot read {args.trace_dir}: {error}")
    if not merged.spans:
        raise CLIError(f"no trace-*.jsonl spans under {args.trace_dir}")
    merged.write_chrome(args.out)
    print(f"{len(merged.spans)} span(s) across "
          f"{len(merged.services())} service(s), "
          f"{len(merged.trace_ids())} trace(s) -> {args.out} "
          f"(open in Perfetto / chrome://tracing)", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Treegion scheduling (HPCA 1998) reproduction toolkit",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, with_scheme=True):
        if with_scheme:
            p.add_argument("--scheme", default="treegion",
                           metavar="SPEC",
                           help="one of %s, or treegion-td:<limit>"
                                % ", ".join(SCHEME_CHOICES))
        p.add_argument("--machine", default="4U",
                       help="1U, 4U, 8U, or <N>U")
        p.add_argument("--heuristic", choices=list(HEURISTICS),
                       default="global_weight")

    def obs_flags(p):
        p.add_argument("--metrics", default=None, metavar="FILE",
                       help="write pipeline counters as JSON to FILE")
        p.add_argument("--trace", default=None, metavar="FILE",
                       help="write a Chrome trace-event JSON to FILE")

    def cache_flags(p, required=False):
        p.add_argument("--cache-dir", default=None, metavar="DIR",
                       dest="cache_dir", required=required,
                       help="persistent artifact store directory "
                            "(results are cached across runs)")
        p.add_argument("--cache-max-mb", type=float, default=256.0,
                       dest="cache_max_mb", metavar="MB",
                       help="LRU size bound of the store (default: 256)")
        p.add_argument("--no-region-memo", dest="region_memo",
                       action="store_false", default=True,
                       help="disable the region-level schedule memo "
                            "(results are bit-identical either way)")

    p = sub.add_parser("compile", help="minic -> textual IR")
    p.add_argument("file")
    p.add_argument("-O", "--optimize", action="store_true",
                   help="apply classic optimizations first")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("run", help="interpret + schedule + simulate")
    p.add_argument("file")
    p.add_argument("--args", nargs="*", default=[])
    p.add_argument("-O", "--optimize", action="store_true",
                   help="apply classic optimizations first")
    common(p)
    obs_flags(p)
    cache_flags(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("schedule", help="print region schedules")
    p.add_argument("file")
    p.add_argument("--args", nargs="*", default=None,
                   help="profile the program on these arguments first")
    p.add_argument("-O", "--optimize", action="store_true",
                   help="apply classic optimizations first")
    common(p)
    p.set_defaults(func=cmd_schedule)

    p = sub.add_parser("bench", help="speedups over the synthetic suite")
    p.add_argument("--benchmarks", default=None,
                   help="comma-separated subset (default: all eight)")
    p.add_argument("--schemes", default=None,
                   help="comma-separated schemes")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (1 = serial, 0 = one per CPU)")
    p.add_argument("--timings", action="store_true",
                   help="print per-stage wall time after the table")
    p.add_argument("--timings-json", default=None, metavar="FILE",
                   dest="timings_json",
                   help="write per-stage timings (and counters, with "
                        "--metrics) as JSON to FILE")
    common(p, with_scheme=False)
    obs_flags(p)
    cache_flags(p)
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("report", help="full markdown experiment report")
    p.add_argument("--benchmarks", default=None,
                   help="comma-separated subset (default: all eight)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (1 = serial, 0 = one per CPU)")
    obs_flags(p)
    cache_flags(p)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "validate",
        help="differential validation over random seeded programs",
    )
    p.add_argument("--seeds", type=int, default=50,
                   help="number of generator seeds to check")
    p.add_argument("--start", type=int, default=0,
                   help="first seed (campaign covers start..start+seeds-1)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (1 = serial, 0 = one per CPU)")
    p.add_argument("--grid", default=None, metavar="SPEC",
                   help="axes, e.g. 'schemes=bb,treegion;machines=4U,8U;"
                        "heuristics=global_weight' (defaults: all schemes, "
                        "4U+8U, global_weight)")
    p.add_argument("--report-dir", default=None,
                   help="write one JSON failure report per failing seed")
    p.add_argument("--max-trials", type=int, default=3000,
                   help="shrinker budget per failure")
    p.add_argument("--no-shrink", action="store_true",
                   help="report failures without minimizing them")
    p.add_argument("--verbose", action="store_true",
                   help="print every seed, not just failures")
    obs_flags(p)
    p.set_defaults(func=cmd_validate)

    p = sub.add_parser(
        "trace",
        help="trace the pipeline and export Chrome trace-event JSON",
    )
    p.add_argument("file")
    p.add_argument("--out", default="trace.json", metavar="FILE",
                   help="Chrome trace-event JSON output (default: "
                        "trace.json)")
    p.add_argument("--jsonl", default=None, metavar="FILE",
                   help="also write one JSON object per span")
    p.add_argument("--metrics-out", default=None, metavar="FILE",
                   dest="metrics_out",
                   help="also write pipeline counters + timings as JSON")
    p.add_argument("--args", nargs="*", default=None,
                   help="profile the program on these arguments first")
    p.add_argument("-O", "--optimize", action="store_true",
                   help="apply classic optimizations first")
    common(p)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "lint",
        help="static IR lint and schedule-legality certification",
    )
    p.add_argument("file", nargs="?", default=None)
    p.add_argument("--corpus", action="store_true",
                   help="lint every built-in workload instead of FILE")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for --corpus "
                        "(1 = serial, 0 = one per CPU)")
    p.add_argument("--schedule", action="store_true",
                   help="also schedule the program and certify every "
                        "region schedule against the machine model")
    p.add_argument("--fail-on", choices=["error", "warning"],
                   default="error", dest="fail_on",
                   help="lowest severity that makes the exit status 1 "
                        "(default: error)")
    p.add_argument("--format", choices=["text", "json"], default="text",
                   help="diagnostic output format")
    p.add_argument("--args", nargs="*", default=None,
                   help="profile FILE on these arguments first")
    p.add_argument("-O", "--optimize", action="store_true",
                   help="apply classic optimizations first")
    common(p)
    obs_flags(p)
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "analyze",
        help="dataflow analysis: schedule-height lower bounds, "
             "flow-sensitive lint, call graph",
    )
    p.add_argument("file", nargs="?", default=None)
    p.add_argument("--corpus", action="store_true",
                   help="analyze every built-in workload instead of FILE")
    p.add_argument("--schemes", default=None,
                   help="comma-separated schemes (default: bb,treegion; "
                        "hyperblock is not supported)")
    p.add_argument("--machines", default=None,
                   help="comma-separated machines (default: 4U,8U)")
    p.add_argument("--heuristics", default=None,
                   help="comma-separated heuristics (default: all)")
    p.add_argument("--calls", action="store_true",
                   help="include the whole-program call graph")
    p.add_argument("--no-lint", action="store_true", dest="no_lint",
                   help="skip the flow-sensitive lint summary")
    p.add_argument("--format", choices=["text", "json"], default="text",
                   help="report output format")
    p.add_argument("--args", nargs="*", default=None,
                   help="profile FILE on these arguments first")
    p.add_argument("-O", "--optimize", action="store_true",
                   help="apply classic optimizations first")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser(
        "gap",
        help="optimality gap: heuristic schedule heights vs proven "
             "branch-and-bound optima; certifies the analysis bounds",
    )
    p.add_argument("file", nargs="?", default=None)
    p.add_argument("--corpus", action="store_true",
                   help="measure every built-in workload instead of FILE")
    p.add_argument("--schemes", default=None,
                   help="comma-separated schemes (default: bb,treegion; "
                        "hyperblock is not supported)")
    p.add_argument("--machines", default=None,
                   help="comma-separated machines (default: 4U,8U)")
    p.add_argument("--budget", type=int, default=None,
                   help="branch-and-bound node budget per region "
                        "(default: 50000)")
    p.add_argument("--max-ops", type=int, default=None, dest="max_ops",
                   help="skip regions with more schedulable ops")
    p.add_argument("--no-lint", action="store_true", dest="no_lint",
                   help="skip sched.* certification of exact schedules")
    p.add_argument("--format", choices=["text", "json"], default="text",
                   help="report output format")
    p.add_argument("--args", nargs="*", default=None,
                   help="profile FILE on these arguments first")
    p.add_argument("-O", "--optimize", action="store_true",
                   help="apply classic optimizations first")
    p.set_defaults(func=cmd_gap)

    p = sub.add_parser(
        "warm",
        help="prime the artifact store for a program or the suite",
    )
    p.add_argument("file", nargs="?", default=None,
                   help="program to warm (default: built-in benchmarks)")
    p.add_argument("--benchmarks", default=None,
                   help="comma-separated built-in subset (no FILE)")
    p.add_argument("--grid", default=None, metavar="SPEC",
                   help="axes, e.g. 'schemes=bb,treegion;machines=4U,8U;"
                        "heuristics=global_weight'")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the cold cells")
    p.add_argument("--args", nargs="*", default=None,
                   help="profile FILE on these arguments first")
    p.add_argument("-O", "--optimize", action="store_true",
                   help="apply classic optimizations first")
    cache_flags(p, required=True)
    obs_flags(p)
    p.set_defaults(func=cmd_warm)

    def endpoint_flags(p):
        p.add_argument("--endpoint", default=None, metavar="URL",
                       help="unix:///path/to.sock or tcp://host:port")
        p.add_argument("--socket", default=None, metavar="PATH",
                       help="deprecated alias for --endpoint unix://PATH")

    def fleet_flags(p):
        p.add_argument("--shards", type=int, default=2,
                       help="service+store shards in the fleet "
                            "(default: 2)")
        p.add_argument("--jobs", type=int, default=1,
                       help="worker processes per shard")
        p.add_argument("--batch-size", type=int, default=16,
                       dest="batch_size",
                       help="max jobs coalesced into one dispatch")
        p.add_argument("--max-pending", type=int, default=256,
                       dest="max_pending",
                       help="per-shard intake queue bound (backpressure)")
        p.add_argument("--job-timeout", type=float, default=None,
                       dest="job_timeout", metavar="SECONDS",
                       help="per-dispatch timeout before a retry")
        p.add_argument("--retries", type=int, default=2,
                       help="extra attempts for crashed/timed-out "
                            "dispatches")

    def dist_obs_flags(p):
        p.add_argument("--trace-dir", default=None, metavar="DIR",
                       dest="trace_dir",
                       help="write per-process distributed-trace span "
                            "files (trace-*.jsonl) under DIR; merge "
                            "with 'repro trace-merge DIR'")
        p.add_argument("--events-log", default=None, metavar="FILE",
                       dest="events_log",
                       help="append fleet lifecycle events (shard "
                            "start/death/restart, evictions, retries) "
                            "as size-rotated JSONL to FILE")

    p = sub.add_parser(
        "serve",
        help="compile fleet behind an asyncio front-end",
    )
    endpoint_flags(p)
    fleet_flags(p)
    cache_flags(p)
    obs_flags(p)
    dist_obs_flags(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "client",
        help="send one request to a running 'repro serve' endpoint",
    )
    p.add_argument("file", nargs="?", default=None,
                   help="program to compile remotely")
    endpoint_flags(p)
    p.add_argument("--ping", action="store_true",
                   help="health-check the fleet")
    p.add_argument("--stats", action="store_true",
                   help="fetch fleet + store statistics")
    p.add_argument("--shutdown", action="store_true",
                   help="ask the front-end to shut down")
    p.add_argument("--timeout", type=float, default=60.0,
                   help="socket timeout in seconds")
    p.add_argument("--args", nargs="*", default=None,
                   help="profile FILE on these arguments first")
    p.add_argument("-O", "--optimize", action="store_true",
                   help="apply classic optimizations first")
    common(p)
    p.set_defaults(func=cmd_client)

    p = sub.add_parser(
        "soak",
        help="many-client load soak against a compile front-end",
    )
    endpoint_flags(p)
    p.add_argument("--serve", action="store_true",
                   help="self-host a fleet for the soak (ephemeral "
                        "tcp://127.0.0.1:0 unless --endpoint is given)")
    p.add_argument("--clients", type=int, default=32,
                   help="concurrent client connections (default: 32)")
    p.add_argument("--requests", type=int, default=None,
                   help="total requests (default: one per grid cell; "
                        "more than that measures warm traffic)")
    p.add_argument("--ramp", type=float, default=0.0, metavar="SECONDS",
                   help="stagger client start-up across this window")
    p.add_argument("--benchmarks", default=None,
                   help="comma-separated built-in subset")
    p.add_argument("--grid", default=None, metavar="SPEC",
                   help="axes, e.g. 'schemes=bb,treegion;machines=4U'")
    fleet_flags(p)
    cache_flags(p)
    obs_flags(p)
    dist_obs_flags(p)
    p.set_defaults(func=cmd_soak)

    p = sub.add_parser(
        "top",
        help="live dashboard over a running fleet's STATS plane",
    )
    endpoint_flags(p)
    p.add_argument("--interval", type=float, default=1.0,
                   metavar="SECONDS",
                   help="poll/refresh period (default: 1.0)")
    p.add_argument("--iterations", type=int, default=None,
                   help="stop after N frames (default: run until ^C)")
    p.add_argument("--no-clear", action="store_true", dest="no_clear",
                   help="append frames instead of repainting "
                        "(pipes, CI logs)")
    p.set_defaults(func=cmd_top)

    p = sub.add_parser(
        "trace-merge",
        help="merge per-process span JSONL into one Perfetto trace",
    )
    p.add_argument("trace_dir", metavar="DIR",
                   help="directory of trace-*.jsonl files (--trace-dir "
                        "of a serve/soak run)")
    p.add_argument("-o", "--out", default="fleet_trace.json",
                   metavar="FILE",
                   help="Chrome trace-event JSON output "
                        "(default: fleet_trace.json)")
    p.set_defaults(func=cmd_trace_merge)

    p = sub.add_parser("dot", help="Graphviz CFG rendering")
    p.add_argument("file")
    p.add_argument("--function", default=None)
    p.add_argument("--regions", choices=["none", "treegion", "slr",
                                         "hyperblock"], default="treegion")
    p.add_argument("--schedule", action="store_true",
                   help="schedule the regions and annotate blocks with "
                        "cycle counts")
    common(p, with_scheme=False)
    p.set_defaults(func=cmd_dot)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except CLIError as error:
        print(f"repro: error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
