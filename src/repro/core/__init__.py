"""The paper's primary contribution: treegions and treegion scheduling.

* :class:`~repro.core.treegion.Treegion` — the non-linear region type;
* :func:`~repro.core.formation.form_treegions` — Figure 2's profile-
  independent formation;
* :func:`~repro.core.tail_duplication.form_treegions_td` — Figure 11's
  formation with tail duplication under code-expansion / merge-count /
  path-count limits;
* :func:`~repro.core.pipeline.schedule_function` /
  :func:`~repro.core.pipeline.compile_and_schedule` — the end-to-end
  convenience API tying formation, scheduling (in :mod:`repro.schedule`),
  and evaluation together.
"""

from repro.core.treegion import Treegion
from repro.core.formation import form_treegions
from repro.core.tail_duplication import TreegionLimits, form_treegions_td

__all__ = [
    "Treegion",
    "form_treegions",
    "TreegionLimits",
    "form_treegions_td",
]
