"""Treegion formation with tail duplication (Figure 11, Section 4).

"Tail duplication [...] can be used in treegion formation to convert
saplings (which are merge points) into a set of single entry blocks which
can be absorbed into surrounding treegions."

Three heuristics bound the process (all from Section 4):

* **code expansion limit** — a treegion may grow to at most
  ``code_expansion`` times the total size of the *distinct original
  blocks* it represents (the paper evaluates 2.0 and 3.0);
* **merge count limit** — saplings with more than ``merge_count`` incoming
  edges are not duplicated, "unless they are merge points with no
  successors in the CFG, such as function exits" (paper value: 4);
* **path count limit** — duplication stops once the treegion has
  ``path_count`` distinct root-to-leaf paths (paper value: 20).

One additional rule, implied by the treegion's acyclicity but not spelled
out in the pseudo-code: a sapling is never duplicated along a *back* edge —
concretely, never onto a tree path that already contains a copy of the same
original block.  Without it the formation loop would unroll loops into the
tree, which the paper explicitly leaves to future work ("this study did not
employ any software pipelining techniques").

``form_treegions_td`` **mutates the CFG** (duplication adds blocks); clone
the function first when the original must survive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.ir.cfg import BasicBlock, CFG, Edge
from repro.obs.metrics import current_metrics
from repro.regions.absorb import absorb_into_tree, grow_partition, region_saplings
from repro.regions.region import Region, RegionPartition
from repro.core.treegion import Treegion


@dataclass(frozen=True)
class TreegionLimits:
    """The tail-duplication heuristics of Section 4."""

    code_expansion: float = 2.0
    merge_count: int = 4
    path_count: int = 20
    #: Safety valve on formation work per treegion; generous enough that
    #: the paper-style limits always bind first.
    max_duplications: int = 10_000


class _TailDuplicatingFormer:
    """Implements ``treeform-td`` (Figure 11)."""

    def __init__(self, cfg: CFG, limits: TreegionLimits):
        self.cfg = cfg
        self.limits = limits
        # Snapshot of original block sizes, keyed by origin id, taken
        # before any duplication: the denominator of the expansion limit.
        self.original_ops: Dict[int, int] = {
            block.origin: len(block.ops) for block in cfg.blocks()
        }
        # Loop headers (blocks dominating one of their predecessors) are
        # never tail-duplicated: duplicating one would peel an iteration
        # into the predecessor treegion, i.e. loop unrolling, which the
        # paper leaves to future work.
        self.loop_header_origins = self._find_loop_headers()

    def _find_loop_headers(self) -> set:
        from repro.ir.dominators import DominatorTree

        dom = DominatorTree(self.cfg)
        headers = set()
        for block in self.cfg.blocks():
            for edge in block.in_edges:
                if dom.dominates(block, edge.src):
                    headers.add(block.origin)
                    break
        return headers

    # ------------------------------------------------------------------

    def run(self) -> RegionPartition:
        return grow_partition(
            self.cfg, "treegion-td", self._absorb_and_duplicate,
            make_region=Treegion,
        )

    def _absorb_and_duplicate(
        self, region: Region, node: BasicBlock, partition: RegionPartition
    ) -> None:
        absorb_into_tree(region, node, partition)
        duplications = 0
        while duplications < self.limits.max_duplications:
            if region.path_count >= self.limits.path_count:
                break
            selection = self._select_sapling(region, partition)
            if selection is None:
                break
            sapling, edge = selection
            if sapling.is_merge_point():
                clone = self.cfg.clone_block_for_edge(sapling, edge)
                metrics = current_metrics()
                metrics.inc("tail_dup.blocks")
                metrics.inc("tail_dup.ops", len(clone.ops))
                absorb_into_tree(region, clone, partition, parent=edge.src)
                duplications += 1
            else:
                absorb_into_tree(region, sapling, partition, parent=edge.src)

    # ------------------------------------------------------------------
    # Sapling selection (the if-chain of Figure 11, lines 11–18)

    def _select_sapling(
        self, region: Region, partition: RegionPartition
    ):
        for sapling in region_saplings(region):
            if partition.region_of(sapling) is not None:
                continue  # "if sapling is in another treegion continue"
            edge = self._usable_tree_edge(region, sapling)
            if edge is None:
                continue  # only reachable via back edges — never duplicated
            if sapling.is_merge_point():
                if sapling.origin in self.loop_header_origins:
                    continue  # never peel loops into the tree
                if not self._merge_count_ok(sapling):
                    continue
                if not self._expansion_ok(region, sapling):
                    continue
            return sapling, edge
        return None

    def _usable_tree_edge(self, region: Region, sapling: BasicBlock) -> Optional[Edge]:
        """First in-edge from the tree that would not re-copy an original
        block already present on its root path (the no-unrolling rule)."""
        for edge in sapling.in_edges:
            if edge.src not in region:
                continue
            path_origins = {b.origin for b in region.path_to(edge.src)}
            if sapling.origin in path_origins:
                continue
            return edge
        return None

    def _merge_count_ok(self, sapling: BasicBlock) -> bool:
        if not sapling.successors:
            return True  # function exits may always be duplicated
        return sapling.merge_count <= self.limits.merge_count

    def _expansion_ok(self, region: Region, sapling: BasicBlock) -> bool:
        """Would absorbing a *copy* of ``sapling`` break the expansion limit?

        The treegion's size after the copy must stay within
        ``code_expansion`` times the summed size of its *original* (non-
        duplicate) members — duplicates only count against the numerator,
        so a limit of 1.0 forbids duplication entirely.  Zero-op blocks are
        costed at one op so duplicating empty join blocks still consumes
        budget.
        """
        new_size = region.op_count + max(1, len(sapling.ops))
        base = sum(
            self.original_ops.get(block.origin, 1)
            for block in region.blocks
            if block.bid == block.origin
        )
        base = max(1, base)
        return new_size <= self.limits.code_expansion * base


def form_treegions_td(
    cfg: CFG, limits: Optional[TreegionLimits] = None
) -> RegionPartition:
    """Figure 11: treegion formation with tail duplication.

    **Mutates the CFG.**  Returns a partition of ``treegion-td`` regions
    covering the (grown) CFG.
    """
    return _TailDuplicatingFormer(cfg, limits or TreegionLimits()).run()
