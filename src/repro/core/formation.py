"""Treegion formation (Figure 2 of the paper).

"Treegions are grown across a CFG starting from the entry points, each of
which roots a new treegion.  From a given root, the CFG is traversed, and
basic blocks are absorbed into the root's treegion if they are not merge
points.  [...] The process continues until the entire CFG has been
consumed, at which time each basic block is in exactly one treegion."

Formation is profile independent — only the CFG topology matters.
"""

from __future__ import annotations

from repro.ir.cfg import BasicBlock, CFG
from repro.regions.absorb import absorb_into_tree, grow_partition
from repro.regions.region import Region, RegionPartition
from repro.core.treegion import Treegion


def form_treegions(cfg: CFG) -> RegionPartition:
    """Partition ``cfg`` into treegions.  Does not modify the CFG."""

    def absorb(region: Region, node: BasicBlock, partition: RegionPartition) -> None:
        absorb_into_tree(region, node, partition)

    partition = grow_partition(cfg, "treegion", absorb, make_region=Treegion)
    for region in partition:
        region.check_invariants()  # type: ignore[attr-defined]
    return partition
