"""The treegion region type.

"A treegion encompasses a decision-tree subgraph of a program's control
flow graph.  [...] A treegion can contain multiple, independent control
paths that diverge from the root of the tree.  Since it is a tree, a
treegion is acyclic and contains no merge points except possibly the root
itself." — Section 2.

Almost all of the machinery lives in the shared :class:`Region` base (the
linear regions are degenerate trees); :class:`Treegion` adds the treegion-
specific vocabulary (saplings) and invariant checks used by the tests and
the formation passes.
"""

from __future__ import annotations

from typing import List

from repro.util.errors import SchedulingError
from repro.ir.cfg import BasicBlock
from repro.regions.absorb import region_saplings
from repro.regions.region import Region


class Treegion(Region):
    """A single-entry, tree-shaped, multi-path scheduling region."""

    def __init__(self):
        super().__init__("treegion")

    def saplings(self) -> List[BasicBlock]:
        """The blocks just beyond this treegion's leaves.

        "Eventually, only merge points remain following a treegion's leaf
        blocks.  These are called saplings of the treegion and become the
        roots of new treegions."
        """
        return region_saplings(self)

    def check_invariants(self) -> None:
        """Raise unless this region is a well-formed treegion:

        * non-root members have exactly one incoming CFG edge (no internal
          merge points), and it comes from their tree parent;
        * the member set is acyclic by construction (tree);
        * the root is the only member that may be a merge point.
        """
        for block in self.blocks:
            if block is self.root:
                continue
            if len(block.in_edges) != 1:
                raise SchedulingError(
                    f"treegion member bb{block.bid} has "
                    f"{len(block.in_edges)} in-edges (must be 1)"
                )
            parent = self.parent(block)
            if parent is None or block.in_edges[0].src is not parent:
                raise SchedulingError(
                    f"treegion member bb{block.bid}'s CFG predecessor is not "
                    f"its tree parent"
                )
