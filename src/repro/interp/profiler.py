"""Execution profiling: block and edge counts → ``weight`` fields.

Plays the role of the paper's training-input profiling runs.  Multiple
inputs can be profiled into one accumulated profile (as the paper does
with training sets), then applied to the IR in place.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.ir.cfg import BasicBlock, Edge
from repro.ir.function import Function, Program
from repro.interp.interpreter import ExecutionObserver, Interpreter


class Profiler(ExecutionObserver):
    """Accumulates block/edge execution counts across runs."""

    def __init__(self):
        self.block_counts: Dict[Tuple[str, int], int] = {}
        self.edge_counts: Dict[int, int] = {}
        self._edges: Dict[int, Edge] = {}

    # ------------------------------------------------------------------
    # Observer callbacks

    def on_block(self, function: Function, block: BasicBlock) -> None:
        key = (function.name, block.bid)
        self.block_counts[key] = self.block_counts.get(key, 0) + 1

    def on_edge(self, function: Function, edge: Edge) -> None:
        key = id(edge)
        self.edge_counts[key] = self.edge_counts.get(key, 0) + 1
        self._edges[key] = edge

    # ------------------------------------------------------------------

    def block_count(self, function: Function, block: BasicBlock) -> int:
        return self.block_counts.get((function.name, block.bid), 0)

    def apply(self, program: Program) -> None:
        """Write accumulated counts into the IR's weight fields.

        Every block *and edge* weight is overwritten — unvisited ones get
        0.  Walking ``block.out_edges`` (rather than only the edges the
        observer saw) matters when re-profiling a program that already
        carries weights, e.g. after a semantics-preserving transform:
        stale weights on untaken edges would otherwise survive.
        """
        for function in program.functions():
            for block in function.cfg.blocks():
                block.weight = float(self.block_count(function, block))
                for edge in block.out_edges:
                    edge.weight = float(self.edge_counts.get(id(edge), 0))


def profile_program(
    program: Program,
    inputs: Sequence[Sequence[object]] = ((),),
    max_steps: int = 5_000_000,
) -> Profiler:
    """Run the program on each input, accumulate, and apply the profile."""
    profiler = Profiler()
    results: List[object] = []
    for args in inputs:
        interpreter = Interpreter(program, max_steps=max_steps,
                                  observer=profiler)
        results.append(interpreter.run(args))
    profiler.apply(program)
    profiler.results = results  # type: ignore[attr-defined]
    return profiler
