"""Scalar semantics of individual opcodes, shared by the sequential
interpreter and the VLIW schedule simulator.

Integer division and modulus truncate toward zero (C semantics, matching
what the minic frontend promises).  In *dismissible* mode — used for
speculatively executed ops, following Play-Doh's dismissible loads —
divide-by-zero yields 0 instead of trapping, since a speculated op's
inputs may be garbage that the taken path never uses.
"""

from __future__ import annotations

import math

from repro.util.errors import InterpreterError
from repro.ir.types import Opcode


def _int_div(a, b, dismissible: bool):
    if b == 0:
        if dismissible:
            return 0
        raise InterpreterError("integer division by zero")
    return int(math.trunc(a / b))


def _int_mod(a, b, dismissible: bool):
    if b == 0:
        if dismissible:
            return 0
        raise InterpreterError("integer modulus by zero")
    return a - b * int(math.trunc(a / b))


def _fdiv(a, b, dismissible: bool):
    if b == 0:
        if dismissible:
            return 0.0
        raise InterpreterError("floating-point division by zero")
    return a / b


def _shift_amount(b) -> int:
    return int(b) & 63


def evaluate(opcode: Opcode, operands, dismissible: bool = False):
    """Apply a pure compute opcode to evaluated operand values."""
    a = operands[0] if operands else None
    b = operands[1] if len(operands) > 1 else None
    if opcode is Opcode.ADD:
        return a + b
    if opcode is Opcode.SUB:
        return a - b
    if opcode is Opcode.MUL:
        return a * b
    if opcode is Opcode.DIV:
        return _int_div(a, b, dismissible)
    if opcode is Opcode.MOD:
        return _int_mod(a, b, dismissible)
    if opcode is Opcode.NEG:
        return -a
    if opcode is Opcode.AND:
        return int(a) & int(b)
    if opcode is Opcode.OR:
        return int(a) | int(b)
    if opcode is Opcode.XOR:
        return int(a) ^ int(b)
    if opcode is Opcode.NOT:
        return ~int(a)
    if opcode is Opcode.SHL:
        return int(a) << _shift_amount(b)
    if opcode is Opcode.SHR:
        return int(a) >> _shift_amount(b)
    if opcode is Opcode.FADD:
        return float(a) + float(b)
    if opcode is Opcode.FSUB:
        return float(a) - float(b)
    if opcode is Opcode.FMUL:
        return float(a) * float(b)
    if opcode is Opcode.FDIV:
        return _fdiv(float(a), float(b), dismissible)
    if opcode in (Opcode.MOV, Opcode.COPY):
        return a
    raise InterpreterError(f"evaluate() cannot handle opcode {opcode.value}")


#: Opcodes evaluate() accepts (everything pure and single-destination).
PURE_OPCODES = frozenset({
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.MOD, Opcode.NEG,
    Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.NOT, Opcode.SHL, Opcode.SHR,
    Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV,
    Opcode.MOV, Opcode.COPY,
})
