"""Interpreter machine state: registers and word-addressed memory."""

from __future__ import annotations

from typing import Dict, Optional

from repro.util.errors import InterpreterError
from repro.ir.function import Program
from repro.ir.registers import Register


class MachineState:
    """Registers and flat memory for one activation.

    Registers are per-activation (each call gets a fresh file, as the IR
    uses virtual registers with no calling convention beyond parameter
    registers).  Memory is shared across activations and word-addressed;
    reads of untouched words return 0, like zero-initialized data memory.
    Reads of never-written registers raise — the sequential interpreter is
    the semantic oracle and must catch frontend bugs — unless ``strict``
    is disabled (the VLIW simulator disables it: speculated ops may
    legitimately read junk that is then discarded).
    """

    def __init__(self, memory: Optional[Dict[int, object]] = None,
                 strict: bool = True):
        self.registers: Dict[Register, object] = {}
        self.memory: Dict[int, object] = memory if memory is not None else {}
        self.strict = strict

    # ------------------------------------------------------------------

    def read(self, register: Register):
        try:
            return self.registers[register]
        except KeyError:
            if self.strict:
                raise InterpreterError(
                    f"read of undefined register {register}"
                ) from None
            return 0

    def write(self, register: Register, value) -> None:
        self.registers[register] = value

    def is_defined(self, register: Register) -> bool:
        return register in self.registers

    # ------------------------------------------------------------------

    def load(self, address: int):
        return self.memory.get(int(address), 0)

    def store(self, address: int, value) -> None:
        self.memory[int(address)] = value

    # ------------------------------------------------------------------

    @staticmethod
    def initial_memory(program: Program) -> Dict[int, object]:
        """Memory image with the program's globals laid out and filled."""
        memory: Dict[int, object] = {}
        for var in program.globals.values():
            for offset, value in enumerate(var.initial):
                memory[var.address + offset] = value
        return memory
