"""Sequential IR interpretation and profiling.

The paper profiles SPECint95 with training inputs to obtain the block and
edge weights its heuristics consume.  This package plays that role for
programs we can execute (hand-built IR and minic programs): a reference
interpreter defines the IR's sequential semantics, and the profiler turns
execution counts into the ``weight`` fields region formation and
scheduling read.

The interpreter doubles as the *oracle* for schedule correctness: the VLIW
simulator (:mod:`repro.vliw`) must produce identical results and memory.
"""

from repro.util.errors import InterpreterError, StepLimitExceeded
from repro.interp.state import MachineState
from repro.interp.interpreter import Interpreter, run_program
from repro.interp.profiler import Profiler, profile_program

__all__ = [
    "MachineState",
    "Interpreter",
    "InterpreterError",
    "StepLimitExceeded",
    "run_program",
    "Profiler",
    "profile_program",
]
