"""The sequential IR interpreter — the library's semantic oracle.

Executes a program block by block, following CFG edges, with a Python call
stack for ``CALL``.  An optional observer receives block-entry and
edge-traversal events, which is how the profiler collects weights without
the interpreter knowing about profiling.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.util.errors import InterpreterError, StepLimitExceeded
from repro.ir.cfg import BasicBlock, Edge
from repro.ir.function import Function, Program
from repro.ir.operation import Operation
from repro.ir.registers import Register
from repro.ir.types import EdgeKind, Immediate, Opcode
from repro.interp.ops import PURE_OPCODES, evaluate
from repro.interp.state import MachineState


class Interpreter:
    """Executes IR programs with precise sequential semantics."""

    def __init__(self, program: Program, max_steps: int = 5_000_000,
                 observer: Optional["ExecutionObserver"] = None):
        self.program = program
        self.max_steps = max_steps
        self.observer = observer
        self.steps = 0
        self.memory: Dict[int, object] = MachineState.initial_memory(program)

    # ------------------------------------------------------------------

    def run(self, args: Sequence[object] = ()):
        """Execute the program's entry function; returns its return value."""
        return self.call(self.program.entry_function, list(args))

    def call(self, function: Function, args: Sequence[object]):
        state = MachineState(memory=self.memory)
        if len(args) != len(function.params):
            raise InterpreterError(
                f"{function.name} expects {len(function.params)} args, "
                f"got {len(args)}"
            )
        for param, value in zip(function.params, args):
            state.write(param, value)

        block = function.cfg.entry
        if block is None:
            raise InterpreterError(f"{function.name} has no entry block")
        while True:
            if self.observer is not None:
                self.observer.on_block(function, block)
            outcome = self._execute_block(function, block, state)
            if outcome.returned:
                return outcome.value
            edge = outcome.edge
            if self.observer is not None:
                self.observer.on_edge(function, edge)
            block = edge.dst

    # ------------------------------------------------------------------

    def _tick(self, function: Function, block: BasicBlock) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise StepLimitExceeded(self.max_steps, function.name, block.bid)

    def _value(self, state: MachineState, operand):
        if isinstance(operand, Immediate):
            return operand.value
        if isinstance(operand, Register):
            return state.read(operand)
        raise InterpreterError(f"bad operand {operand!r}")

    def _guard_holds(self, state: MachineState, op: Operation) -> bool:
        if op.guard is None:
            return True
        return bool(state.read(op.guard))

    def _execute_block(self, function: Function, block: BasicBlock,
                       state: MachineState) -> "_BlockOutcome":
        for op in block.ops:
            self._tick(function, block)
            if op.is_terminator:
                return self._terminate(function, block, op, state)
            self._execute_op(function, op, state)
        edge = block.fallthrough_edge
        if edge is None:
            raise InterpreterError(
                f"control fell off bb{block.bid} in {function.name}"
            )
        return _BlockOutcome(edge=edge)

    def _execute_op(self, function: Function, op: Operation,
                    state: MachineState) -> None:
        if not self._guard_holds(state, op):
            return
        opcode = op.opcode
        if opcode in PURE_OPCODES:
            values = [self._value(state, s) for s in op.srcs]
            state.write(op.dest, evaluate(opcode, values))
        elif opcode is Opcode.LD:
            base = self._value(state, op.srcs[0])
            offset = self._value(state, op.srcs[1])
            state.write(op.dest, state.load(base + offset))
        elif opcode is Opcode.ST:
            base = self._value(state, op.srcs[0])
            offset = self._value(state, op.srcs[1])
            value = self._value(state, op.srcs[2])
            state.store(base + offset, value)
        elif opcode is Opcode.CMPP:
            result = op.cond.evaluate(
                self._value(state, op.srcs[0]), self._value(state, op.srcs[1])
            )
            state.write(op.dests[0], bool(result))
            if len(op.dests) > 1:
                state.write(op.dests[1], not result)
        elif opcode is Opcode.PAND:
            values = [bool(self._value(state, s)) for s in op.srcs]
            state.write(op.dest, all(values))
        elif opcode is Opcode.PANDCN:
            values = [bool(self._value(state, s)) for s in op.srcs]
            rest = all(values[1:]) if len(values) > 1 else True
            state.write(op.dest, (not values[0]) and rest)
        elif opcode is Opcode.POR:
            values = [bool(self._value(state, s)) for s in op.srcs]
            state.write(op.dest, any(values))
        elif opcode is Opcode.NINSET:
            selector = self._value(state, op.srcs[0])
            members = {self._value(state, s) for s in op.srcs[1:]}
            state.write(op.dest, selector not in members)
        elif opcode is Opcode.PBR:
            state.write(op.dest, op.target)
        elif opcode is Opcode.CALL:
            callee = self.program.function(op.callee)
            values = [self._value(state, s) for s in op.srcs]
            result = self.call(callee, values)
            if op.dests:
                state.write(op.dest, result)
        elif opcode is Opcode.NOP:
            pass
        else:
            raise InterpreterError(
                f"unexpected opcode {opcode.value} mid-block"
            )

    def _terminate(self, function: Function, block: BasicBlock,
                   op: Operation, state: MachineState) -> "_BlockOutcome":
        opcode = op.opcode
        if opcode is Opcode.RET:
            value = self._value(state, op.srcs[0]) if op.srcs else None
            return _BlockOutcome(returned=True, value=value)
        if opcode is Opcode.BRU:
            return _BlockOutcome(edge=block.taken_edge)
        if opcode in (Opcode.BRCT, Opcode.BRCF):
            predicate = bool(self._value(state, op.srcs[0]))
            taken = predicate if opcode is Opcode.BRCT else not predicate
            edge = block.taken_edge if taken else block.fallthrough_edge
            return _BlockOutcome(edge=edge)
        if opcode is Opcode.SWITCH:
            selector = self._value(state, op.srcs[0])
            for edge in block.case_edges():
                if edge.case_value == selector:
                    return _BlockOutcome(edge=edge)
            return _BlockOutcome(edge=block.out_edge(EdgeKind.DEFAULT))
        raise InterpreterError(f"unknown terminator {opcode.value}")


class _BlockOutcome:
    __slots__ = ("edge", "returned", "value")

    def __init__(self, edge: Optional[Edge] = None, returned: bool = False,
                 value=None):
        self.edge = edge
        self.returned = returned
        self.value = value


class ExecutionObserver:
    """Callbacks the interpreter invokes; see the profiler for a user."""

    def on_block(self, function: Function, block: BasicBlock) -> None:
        pass

    def on_edge(self, function: Function, edge: Edge) -> None:
        pass


def run_program(program: Program, args: Sequence[object] = (),
                max_steps: int = 5_000_000):
    """Convenience: run the entry function; returns (result, memory)."""
    interpreter = Interpreter(program, max_steps=max_steps)
    result = interpreter.run(args)
    return result, interpreter.memory
