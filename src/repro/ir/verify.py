"""Structural IR verification.

Every pass in this library is expected to leave the IR in a state that
passes these checks; the tests call the verifier after formation, tail
duplication, and lowering.  Checks cover:

* entry block present; every block reachable from somewhere or the entry;
* terminators are last; edge counts/kinds match the terminator
  (``BRU`` → one taken edge, ``BRCT``/``BRCF`` → taken + fallthrough,
  ``SWITCH`` → ≥1 case + one default with distinct case values,
  ``RET`` → no out-edges, no terminator → exactly one fallthrough);
* branch-op targets agree with the taken edge;
* edge lists are symmetric between blocks;
* register classes are sane (CMPP writes predicates, PBR writes BTRs,
  guards are predicates, branch predicates are predicates);
* op uids are unique within the function.
"""

from __future__ import annotations


from repro.util.errors import IRValidationError
from repro.ir.cfg import CFG, BasicBlock
from repro.ir.function import Function, Program
from repro.ir.types import EdgeKind, Opcode, RegClass


def _fail(message: str) -> None:
    raise IRValidationError(message)


def _verify_block_edges(block: BasicBlock) -> None:
    term = block.terminator
    kinds = [e.kind for e in block.out_edges]
    where = f"bb{block.bid}"

    for op in block.ops[:-1]:
        if op.is_terminator:
            _fail(f"{where}: terminator {op.opcode.value} not last")

    if term is None:
        if kinds != [EdgeKind.FALLTHROUGH]:
            _fail(f"{where}: no terminator requires exactly one fallthrough edge, "
                  f"got {[k.value for k in kinds]}")
        return

    if term.opcode is Opcode.RET:
        if block.out_edges:
            _fail(f"{where}: RET block has out-edges")
        return

    if term.opcode is Opcode.BRU:
        if kinds != [EdgeKind.TAKEN]:
            _fail(f"{where}: BRU requires exactly one taken edge, got "
                  f"{[k.value for k in kinds]}")
    elif term.opcode in (Opcode.BRCT, Opcode.BRCF):
        if sorted(k.value for k in kinds) != ["fallthrough", "taken"]:
            _fail(f"{where}: conditional branch requires taken + fallthrough, "
                  f"got {[k.value for k in kinds]}")
        pred_srcs = term.source_registers()
        if not pred_srcs or pred_srcs[0].rclass is not RegClass.PRED:
            _fail(f"{where}: conditional branch must read a predicate")
    elif term.opcode is Opcode.SWITCH:
        cases = [e for e in block.out_edges if e.kind is EdgeKind.CASE]
        defaults = [e for e in block.out_edges if e.kind is EdgeKind.DEFAULT]
        others = [e for e in block.out_edges
                  if e.kind not in (EdgeKind.CASE, EdgeKind.DEFAULT)]
        if others or len(defaults) != 1 or not cases:
            _fail(f"{where}: SWITCH requires case edges plus one default")
        values = [e.case_value for e in cases]
        if len(set(values)) != len(values):
            _fail(f"{where}: duplicate switch case values {values}")

    if term.opcode in (Opcode.BRU, Opcode.BRCT, Opcode.BRCF):
        taken = block.taken_edge
        if taken is None or term.target != taken.dst.bid:
            _fail(f"{where}: branch target bb{term.target} does not match "
                  f"taken edge")


def _verify_op_classes(block: BasicBlock) -> None:
    where = f"bb{block.bid}"
    for op in block.ops:
        if op.guard is not None and op.guard.rclass is not RegClass.PRED:
            _fail(f"{where}: guard {op.guard} is not a predicate")
        if op.opcode is Opcode.CMPP:
            if not (1 <= len(op.dests) <= 2):
                _fail(f"{where}: CMPP needs 1 or 2 dests")
            for dest in op.dests:
                if dest.rclass is not RegClass.PRED:
                    _fail(f"{where}: CMPP dest {dest} is not a predicate")
            if op.cond is None:
                _fail(f"{where}: CMPP without a condition")
        elif op.opcode is Opcode.PBR:
            if len(op.dests) != 1 or op.dest.rclass is not RegClass.BTR:
                _fail(f"{where}: PBR must write one BTR")
            if op.target is None:
                _fail(f"{where}: PBR without a target")
        elif op.opcode is Opcode.LD:
            if len(op.dests) != 1 or op.dest.rclass is not RegClass.GPR:
                _fail(f"{where}: LD must write one GPR")
            if len(op.srcs) != 2:
                _fail(f"{where}: LD needs base and offset")
        elif op.opcode is Opcode.ST:
            if op.dests:
                _fail(f"{where}: ST has no destination")
            if len(op.srcs) != 3:
                _fail(f"{where}: ST needs base, offset, value")
        elif op.opcode is Opcode.CALL:
            if op.callee is None:
                _fail(f"{where}: CALL without callee")


def verify_cfg(cfg: CFG) -> None:
    """Raise :class:`IRValidationError` on any structural violation."""
    if cfg.entry is None:
        _fail("CFG has no entry block")

    seen_uids = set()
    for block in cfg.blocks():
        for op in block.ops:
            if op.uid in seen_uids:
                _fail(f"duplicate op uid {op.uid}")
            seen_uids.add(op.uid)
        for edge in block.out_edges:
            if edge.src is not block:
                _fail(f"edge {edge!r} in wrong out list")
            if edge not in edge.dst.in_edges:
                _fail(f"edge {edge!r} missing from destination in list")
        for edge in block.in_edges:
            if edge.dst is not block:
                _fail(f"edge {edge!r} in wrong in list")
            if edge not in edge.src.out_edges:
                _fail(f"edge {edge!r} missing from source out list")
        _verify_block_edges(block)
        _verify_op_classes(block)


def verify_function(function: Function) -> None:
    verify_cfg(function.cfg)
    returns = [
        block
        for block in function.cfg.blocks()
        if block.terminator is not None
        and block.terminator.opcode is Opcode.RET
    ]
    if not returns:
        _fail(f"function {function.name} has no return block")


def verify_program(program: Program) -> None:
    if not program.has_function(program.entry_name):
        _fail(f"program entry '{program.entry_name}' is not defined")
    for function in program.functions():
        verify_function(function)
        for block in function.cfg.blocks():
            for op in block.ops:
                if op.opcode is Opcode.CALL and not program.has_function(op.callee or ""):
                    _fail(f"call to undefined function '{op.callee}'")


def check_program(program: Program) -> "list[str]":
    """Collect structural violations instead of raising on the first.

    The differential-validation oracle verifies every transformed clone of
    a generated program; a raising verifier would hide all but one problem
    per program, so this wrapper runs the checks function by function and
    returns every message (empty list = clean).  The granularity is one
    message per failing function plus one per bad call target — the
    verifier itself still stops a function at its first violation.
    """
    problems: list = []
    if not program.has_function(program.entry_name):
        problems.append(
            f"program entry '{program.entry_name}' is not defined"
        )
    for function in program.functions():
        try:
            verify_function(function)
        except IRValidationError as error:
            problems.append(f"{function.name}: {error}")
        for block in function.cfg.blocks():
            for op in block.ops:
                if (op.opcode is Opcode.CALL
                        and not program.has_function(op.callee or "")):
                    problems.append(
                        f"{function.name}: call to undefined function "
                        f"'{op.callee}'"
                    )
    return problems
