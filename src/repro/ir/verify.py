"""Structural IR verification — raising facade over ``repro.lint``.

The checks themselves live in :mod:`repro.lint.ir_rules` as diagnostic-
collecting rules (one :class:`~repro.lint.diagnostics.Diagnostic` per
violation, with function/block/op locations).  This module keeps the
historical raising API on top of them: each ``verify_*`` entry point runs
the corresponding rule scopes and raises :class:`IRValidationError`
listing *every* error found — not just the first, as the pre-lint
verifier did.

Warning-severity rules (e.g. ``ir.use-def``) never fail verification;
they describe suspicious-but-defined constructs and are surfaced by
``repro lint`` instead.

The rule modules are imported lazily inside each function:
``repro.ir.__init__`` imports this module at package load, before the
rest of the IR package (which the rules depend on) exists.
"""

from __future__ import annotations

from repro.util.errors import IRValidationError
from repro.ir.cfg import CFG
from repro.ir.function import Function, Program


def _raise_on_errors(report) -> None:
    errors = report.errors
    if errors:
        raise IRValidationError(
            "; ".join(d.format() for d in errors)
        )


def verify_cfg(cfg: CFG) -> None:
    """Raise :class:`IRValidationError` on any structural violation."""
    from repro.lint.diagnostics import LintReport
    from repro.lint.ir_rules import lint_cfg

    _raise_on_errors(lint_cfg(cfg, LintReport()))


def verify_function(function: Function) -> None:
    """Verify one function (CFG structure plus function-level rules)."""
    from repro.lint.diagnostics import LintReport
    from repro.lint.ir_rules import lint_function

    _raise_on_errors(lint_function(function, LintReport()))


def verify_program(program: Program) -> None:
    """Verify a whole program (all functions plus program-level rules)."""
    from repro.lint.diagnostics import LintReport
    from repro.lint.ir_rules import lint_program_ir

    _raise_on_errors(lint_program_ir(program, LintReport()))


def check_program(program: Program) -> "list[str]":
    """Collect structural violations instead of raising on the first.

    The differential-validation oracle verifies every transformed clone of
    a generated program; a raising verifier would hide all but one problem
    per program, so this returns one formatted message per error-severity
    diagnostic (empty list = clean).  Unlike the pre-lint implementation,
    every violation in a function is reported, each with its location.
    """
    from repro.lint.diagnostics import LintReport
    from repro.lint.ir_rules import lint_program_ir

    report = lint_program_ir(program, LintReport())
    return [d.format() for d in report.errors]
