"""Basic blocks, typed control-flow edges, and the CFG.

The control-flow graph is the source of truth for control flow: branch ops
carry a target block id for printing and interpretation, but region
formation, tail duplication, and the verifier all reason over explicit
:class:`Edge` objects.  Edges carry profile weights (execution counts), which
is the only profile information the paper's heuristics consume.

Merge points — blocks with two or more incoming edges — are what delimit
treegions (Section 2), so :meth:`BasicBlock.is_merge_point` counts *edges*,
not distinct predecessors: a conditional branch whose both arms reach the
same block makes that block a merge point.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.util.errors import IRValidationError
from repro.util.ids import IdAllocator
from repro.ir.types import EdgeKind, Opcode
from repro.ir.operation import Operation
from repro.ir.registers import Register


class Edge:
    """A directed control-flow edge with a profile weight.

    ``kind`` records how control traverses the edge (branch taken,
    fallthrough, switch case/default); ``case_value`` is the selector value
    for :attr:`EdgeKind.CASE` edges.  ``weight`` is the profiled traversal
    count (0.0 until a profile is attached).
    """

    __slots__ = ("src", "dst", "kind", "case_value", "weight")

    def __init__(
        self,
        src: "BasicBlock",
        dst: "BasicBlock",
        kind: EdgeKind,
        case_value: Optional[int] = None,
        weight: float = 0.0,
    ):
        self.src = src
        self.dst = dst
        self.kind = kind
        self.case_value = case_value
        self.weight = weight

    def __repr__(self) -> str:
        tag = self.kind.value
        if self.kind is EdgeKind.CASE:
            tag = f"case {self.case_value}"
        return f"<edge bb{self.src.bid} -> bb{self.dst.bid} ({tag}, w={self.weight:g})>"


class BasicBlock:
    """A basic block: a straight-line op sequence plus typed out-edges.

    A block ends with at most one terminator (``BRU``, ``BRCT``, ``BRCF``,
    ``SWITCH``, ``RET``); a block without a terminator must have exactly one
    fallthrough out-edge (or none, which the verifier rejects except via
    ``RET``).
    """

    __slots__ = (
        "bid", "name", "ops", "in_edges", "out_edges", "weight", "cfg", "origin",
    )

    def __init__(self, bid: int, name: str = "", cfg: Optional["CFG"] = None):
        self.bid = bid
        self.name = name or f"bb{bid}"
        self.ops: List[Operation] = []
        self.in_edges: List[Edge] = []
        self.out_edges: List[Edge] = []
        # Profiled execution count of the block.  Kept explicitly (rather
        # than derived from in-edge weights) so the entry block and
        # synthetic profiles work uniformly.
        self.weight: float = 0.0
        self.cfg = cfg
        # Provenance for tail duplication: the bid of the original block
        # this one was (transitively) cloned from; its own bid if original.
        # Code-expansion accounting counts each origin once.
        self.origin: int = bid

    # ------------------------------------------------------------------
    # Structure queries

    @property
    def terminator(self) -> Optional[Operation]:
        """The block's terminator op, or None for fallthrough blocks."""
        if self.ops and self.ops[-1].is_terminator:
            return self.ops[-1]
        return None

    @property
    def successors(self) -> List["BasicBlock"]:
        return [edge.dst for edge in self.out_edges]

    @property
    def predecessors(self) -> List["BasicBlock"]:
        return [edge.src for edge in self.in_edges]

    def is_merge_point(self) -> bool:
        """True if two or more edges enter this block (Section 2)."""
        return len(self.in_edges) >= 2

    @property
    def merge_count(self) -> int:
        """Number of incoming edges (the tail-duplication limit input)."""
        return len(self.in_edges)

    def out_edge(self, kind: EdgeKind) -> Optional[Edge]:
        """The unique out-edge of the given kind, or None.

        Raises if several edges share the kind (only legal for CASE).
        """
        found = [e for e in self.out_edges if e.kind is kind]
        if not found:
            return None
        if len(found) > 1 and kind is not EdgeKind.CASE:
            raise IRValidationError(
                f"bb{self.bid} has {len(found)} {kind.value} edges"
            )
        return found[0]

    @property
    def taken_edge(self) -> Optional[Edge]:
        return self.out_edge(EdgeKind.TAKEN)

    @property
    def fallthrough_edge(self) -> Optional[Edge]:
        return self.out_edge(EdgeKind.FALLTHROUGH)

    def case_edges(self) -> List[Edge]:
        return [e for e in self.out_edges if e.kind is EdgeKind.CASE]

    @property
    def op_count(self) -> int:
        return len(self.ops)

    def non_branch_ops(self) -> List[Operation]:
        """The ops that do useful (non-control) work, for statistics."""
        return [op for op in self.ops if not op.is_branch and op.opcode is not Opcode.RET]

    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        return f"<bb{self.bid} '{self.name}' ops={len(self.ops)} w={self.weight:g}>"


class CFG:
    """A control-flow graph owning blocks, edges, and op uids.

    One CFG belongs to one :class:`~repro.ir.function.Function`.  All
    structural mutation — adding blocks/edges, retargeting edges, cloning
    blocks for tail duplication — goes through methods here so that edge
    lists, branch-op targets, and id allocation stay consistent.
    """

    def __init__(self):
        self._blocks: Dict[int, BasicBlock] = {}
        self._block_ids = IdAllocator(start=1)
        self._op_ids = IdAllocator(start=1)
        self.entry: Optional[BasicBlock] = None
        # Monotonic mutation counter: bumped by every structural change
        # (blocks, edges, op lists).  Cached analyses (liveness, dominators,
        # register bounds — see repro.ir.analysis_cache) are keyed on it,
        # so a stale result is never served after a mutation.
        self.version: int = 0

    # ------------------------------------------------------------------
    # Construction

    def bump_version(self) -> None:
        """Invalidate cached analyses after a structural mutation.

        Called automatically by every mutating CFG method; passes that
        edit blocks or ops directly (the builder, parser, optimizer) must
        call it themselves — that is the cache-invalidation contract.
        """
        self.version += 1

    def new_block(self, name: str = "") -> BasicBlock:
        """Create and register a new empty block."""
        bid = self._block_ids.allocate()
        block = BasicBlock(bid, name=name, cfg=self)
        self._blocks[bid] = block
        if self.entry is None:
            self.entry = block
        self.version += 1
        return block

    def new_op(self, opcode: Opcode, **kwargs) -> Operation:
        """Create an op with a fresh uid (not yet placed in any block)."""
        return Operation(self._op_ids.allocate(), opcode, **kwargs)

    def append_op(self, block: BasicBlock, opcode: Opcode, **kwargs) -> Operation:
        """Create an op and append it to ``block``."""
        op = self.new_op(opcode, **kwargs)
        block.ops.append(op)
        self.version += 1
        return op

    def add_edge(
        self,
        src: BasicBlock,
        dst: BasicBlock,
        kind: EdgeKind = EdgeKind.FALLTHROUGH,
        case_value: Optional[int] = None,
        weight: float = 0.0,
    ) -> Edge:
        """Create an edge and register it on both endpoints."""
        edge = Edge(src, dst, kind, case_value=case_value, weight=weight)
        src.out_edges.append(edge)
        dst.in_edges.append(edge)
        self.version += 1
        return edge

    def remove_edge(self, edge: Edge) -> None:
        edge.src.out_edges.remove(edge)
        edge.dst.in_edges.remove(edge)
        self.version += 1

    def set_entry(self, block: BasicBlock) -> None:
        if block.bid not in self._blocks:
            raise IRValidationError(f"bb{block.bid} is not in this CFG")
        self.entry = block
        self.version += 1

    def remove_block(self, block: BasicBlock) -> None:
        """Delete an edge-free, non-entry block (unreachable-code cleanup)."""
        if block is self.entry:
            raise IRValidationError("cannot remove the entry block")
        if block.in_edges or block.out_edges:
            raise IRValidationError(
                f"bb{block.bid} still has edges; detach it first"
            )
        del self._blocks[block.bid]
        self.version += 1

    # ------------------------------------------------------------------
    # Access

    def block(self, bid: int) -> BasicBlock:
        return self._blocks[bid]

    def blocks(self) -> List[BasicBlock]:
        """All blocks in creation (id) order."""
        return [self._blocks[bid] for bid in sorted(self._blocks)]

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks())

    def __contains__(self, block: BasicBlock) -> bool:
        return self._blocks.get(block.bid) is block

    @property
    def total_ops(self) -> int:
        return sum(len(b.ops) for b in self._blocks.values())

    # ------------------------------------------------------------------
    # Traversal

    def reverse_postorder(self) -> List[BasicBlock]:
        """Blocks in reverse postorder from the entry.

        Unreachable blocks are appended afterwards in id order so every
        block appears exactly once.
        """
        if self.entry is None:
            return []
        order: List[BasicBlock] = []
        visited = set()
        # Iterative DFS with an explicit stack of (block, successor index).
        stack = [(self.entry, 0)]
        visited.add(self.entry.bid)
        while stack:
            block, idx = stack[-1]
            if idx < len(block.out_edges):
                stack[-1] = (block, idx + 1)
                succ = block.out_edges[idx].dst
                if succ.bid not in visited:
                    visited.add(succ.bid)
                    stack.append((succ, 0))
            else:
                stack.pop()
                order.append(block)
        order.reverse()
        for block in self.blocks():
            if block.bid not in visited:
                order.append(block)
        return order

    # ------------------------------------------------------------------
    # Surgery (used by tail duplication and superblock formation)

    def retarget_edge(self, edge: Edge, new_dst: BasicBlock) -> None:
        """Point ``edge`` at ``new_dst``, fixing the branch op's target.

        Fallthrough edges have no op payload; taken/case edges update the
        source block's terminator when it names the old destination.
        """
        old_dst = edge.dst
        old_dst.in_edges.remove(edge)
        edge.dst = new_dst
        new_dst.in_edges.append(edge)
        term = edge.src.terminator
        if term is not None and term.target == old_dst.bid and edge.kind is EdgeKind.TAKEN:
            term.target = new_dst.bid
        self.version += 1

    def clone_block_for_edge(self, block: BasicBlock, incoming: Edge) -> BasicBlock:
        """Tail-duplicate ``block`` for one of its incoming edges.

        Creates a clone with copies of every op (clone uids are fresh but
        ``origin`` is preserved), copies of every out-edge to the *same*
        destinations, then retargets ``incoming`` to the clone.  Profile
        weights move with the edge: the clone inherits ``incoming.weight``
        and splits its out-edge weights in the original block's proportions,
        which are deducted from the original.
        """
        if incoming.dst is not block:
            raise IRValidationError("incoming edge does not reach the block being cloned")
        clone = self.new_block(name=self._clone_name(block.name))
        clone.origin = block.origin
        for op in block.ops:
            clone.ops.append(op.clone(self._op_ids.allocate()))
        self.version += 1  # ops appended directly, not via append_op
        # Split profile weight proportionally along out-edges.
        moved = incoming.weight
        total_out = sum(e.weight for e in block.out_edges)
        for edge in list(block.out_edges):
            if total_out > 0:
                share = moved * (edge.weight / total_out)
            elif block.out_edges:
                share = moved / len(block.out_edges)
            else:
                share = 0.0
            self.add_edge(clone, edge.dst, edge.kind, case_value=edge.case_value,
                          weight=share)
            edge.weight = max(0.0, edge.weight - share)
        clone.weight = moved
        block.weight = max(0.0, block.weight - moved)
        self.retarget_edge(incoming, clone)
        return clone

    def _clone_name(self, base: str) -> str:
        """A fresh ``.dup``-suffixed label for a tail-duplication clone.

        The first clone of ``X`` is ``X.dup``; further clones count up
        (``X.dup2``, ``X.dup3``) so every clone stays distinguishable in
        dumps and dot output (``ir.duplicate-label``).
        """
        taken = {b.name for b in self._blocks.values()}
        name = f"{base}.dup"
        serial = 1
        while name in taken:
            serial += 1
            name = f"{base}.dup{serial}"
        return name

    # ------------------------------------------------------------------
    # Convenience op constructors (shared by builder, frontend, tests)

    def make_branch_true(self, block: BasicBlock, pred: Register, target: BasicBlock,
                         fallthrough: BasicBlock) -> Operation:
        """Append ``BRCT pred -> target`` and both out-edges."""
        op = self.append_op(block, Opcode.BRCT, srcs=[pred], target=target.bid)
        self.add_edge(block, target, EdgeKind.TAKEN)
        self.add_edge(block, fallthrough, EdgeKind.FALLTHROUGH)
        return op

    def make_jump(self, block: BasicBlock, target: BasicBlock) -> Operation:
        """Append ``BRU -> target`` and its taken edge."""
        op = self.append_op(block, Opcode.BRU, target=target.bid)
        self.add_edge(block, target, EdgeKind.TAKEN)
        return op

    def make_return(self, block: BasicBlock, value: Optional[object] = None) -> Operation:
        srcs = [] if value is None else [value]
        return self.append_op(block, Opcode.RET, srcs=srcs)
