"""Deep-copying functions.

Region formation with tail duplication mutates the CFG, and the experiment
harness schedules the *same* program under several region schemes, so every
scheme works on its own copy.  The clone preserves block/op ids, weights,
edge kinds, and provenance so statistics computed on a clone match the
original exactly.
"""

from __future__ import annotations

from typing import Dict

from repro.ir.cfg import BasicBlock, CFG
from repro.ir.function import Function, Program


def clone_cfg(source: CFG) -> CFG:
    """Structure-identical deep copy (same bids, op uids, weights)."""
    target = CFG()
    mapping: Dict[int, BasicBlock] = {}
    for block in source.blocks():
        copy = BasicBlock(block.bid, name=block.name, cfg=target)
        copy.weight = block.weight
        copy.origin = block.origin
        for op in block.ops:
            new_op = op.clone(op.uid)
            new_op.origin = op.origin
            new_op.speculative = op.speculative
            copy.ops.append(new_op)
        mapping[block.bid] = copy
        target._blocks[block.bid] = copy  # keep identical ids
        target._block_ids.reserve(block.bid)
    # Replay op-id space so fresh ops in the clone never collide.
    max_uid = 0
    for block in source.blocks():
        for op in block.ops:
            max_uid = max(max_uid, op.uid)
    target._op_ids.reserve(max_uid)
    for block in source.blocks():
        copy = mapping[block.bid]
        for edge in block.out_edges:
            target.add_edge(
                copy,
                mapping[edge.dst.bid],
                edge.kind,
                case_value=edge.case_value,
                weight=edge.weight,
            )
    if source.entry is not None:
        target.entry = mapping[source.entry.bid]
    return target


def clone_function(source: Function) -> Function:
    """Deep-copy a function; the register factory state is replicated."""
    target = Function(source.name, list(source.params))
    target.cfg = clone_cfg(source.cfg)
    # Reserve every register mentioned anywhere so fresh names are safe.
    for block in target.cfg.blocks():
        for op in block.ops:
            for reg in op.defined_registers():
                target.regs.reserve(reg)
            for reg in op.used_registers():
                target.regs.reserve(reg)
    return target


def clone_program(source: Program) -> Program:
    target = Program(entry=source.entry_name)
    for var in source.globals.values():
        target.add_global(var.name, size=var.size, initial=list(var.initial))
    for function in source.functions():
        target.add_function(clone_function(function))
    return target
