"""Version-keyed per-CFG analysis cache.

Scheduling one program under several schemes, machines, and heuristics
recomputes the same liveness sets, dominator trees, and register bounds
over and over — every ``evaluate_program`` call walks the full CFG once
per *region* just to reserve registers, and each scheme recomputes
liveness on a CFG nothing has touched.  This module memoizes those
function-level analyses keyed on :attr:`repro.ir.cfg.CFG.version`, the
mutation counter every structural edit bumps (builder emits, parser
appends, optimizer rewrites, tail duplication, superblock formation).

The invalidation contract is simple and strict:

* every mutation of blocks, edges, or op lists bumps ``cfg.version``
  (the mutating CFG methods do it automatically; direct editors call
  :meth:`~repro.ir.cfg.CFG.bump_version`);
* a cached value is served only while its recorded version matches the
  CFG's current version — otherwise it is recomputed on the spot.

Entries are held in ``WeakKeyDictionary``s so a CFG that goes away takes
its cached analyses with it; the cache never extends object lifetimes.
Because a long campaign (a multi-thousand-seed ``validate`` run) can
keep many CFGs alive at once, each table is additionally bounded to
``max_entries`` live CFGs: inserting past the cap evicts the least-
recently-used entry (counted in :attr:`AnalysisCache.evictions`,
published as the ``cache.evictions`` gauge) — the same recency policy
the disk-backed artifact store uses (:mod:`repro.serve.store`).
Eviction only ever costs a recompute, never correctness.

Profile weights are deliberately *not* part of the version: liveness,
dominators, and register bounds are structural and do not read weights,
so re-profiling a program keeps every cached analysis valid.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, TypeVar
from weakref import WeakKeyDictionary

from repro.ir.cfg import CFG
from repro.ir.dominators import DominatorTree
from repro.ir.liveness import LivenessInfo, compute_liveness
from repro.ir.types import RegClass

T = TypeVar("T")


def _register_bounds(cfg: CFG) -> Dict[RegClass, int]:
    """Highest register index + 1 per class, over every op of the CFG.

    This is the whole-CFG scan ``prepare_region`` used to repeat per
    region; scanning once per CFG version makes per-region preparation
    O(region) instead of O(function).
    """
    bounds = {rclass: 0 for rclass in RegClass}
    for block in cfg.blocks():
        for op in block.ops:
            for reg in op.defined_registers():
                if reg.index >= bounds[reg.rclass]:
                    bounds[reg.rclass] = reg.index + 1
            for reg in op.used_registers():
                if reg.index >= bounds[reg.rclass]:
                    bounds[reg.rclass] = reg.index + 1
    return bounds


#: Default per-table bound on live CFG entries.  Each entry is one
#: function's analysis results, so this comfortably covers every
#: program of a whole evaluation grid while capping a validate
#: campaign's growth.
DEFAULT_MAX_ENTRIES = 1024


class AnalysisCache:
    """Memoized per-CFG analyses, invalidated by the CFG version counter.

    ``max_entries`` bounds each analysis table to that many live CFGs;
    the least recently used entry is evicted on overflow.
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES):
        self.max_entries = max(1, max_entries)
        self._liveness: "WeakKeyDictionary[CFG, Tuple[int, LivenessInfo, int]]" = \
            WeakKeyDictionary()
        self._dominators: "WeakKeyDictionary[CFG, Tuple[int, DominatorTree, int]]" = \
            WeakKeyDictionary()
        self._reg_bounds: "WeakKeyDictionary[CFG, Tuple[int, Dict[RegClass, int], int]]" = \
            WeakKeyDictionary()
        # Tables for the repro.analysis subsystem.  Same LRU and same
        # cfg.version invalidation contract; hits/misses/evictions are
        # counted separately (the cache.analysis.* gauges) so the
        # Observability report can tell scheduler-feeding lookups from
        # lint/analyze-feeding ones.  Reaching definitions additionally
        # key on the declared parameter list (it shapes the boundary
        # value), and the call graph is program-keyed on the tuple of
        # member CFG versions.
        self._reaching: "WeakKeyDictionary[CFG, Tuple[object, object, int]]" = \
            WeakKeyDictionary()
        self._live_ranges: "WeakKeyDictionary[CFG, Tuple[object, object, int]]" = \
            WeakKeyDictionary()
        self._reachability: "WeakKeyDictionary[CFG, Tuple[object, object, int]]" = \
            WeakKeyDictionary()
        self._call_graph: "WeakKeyDictionary[object, Tuple[object, object, int]]" = \
            WeakKeyDictionary()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.analysis_hits = 0
        self.analysis_misses = 0
        self.analysis_evictions = 0
        self._tick = 0

    # ------------------------------------------------------------------

    def _get(
        self,
        table: "WeakKeyDictionary[CFG, Tuple[int, T, int]]",
        cfg: CFG,
        compute: Callable[[CFG], T],
    ) -> T:
        self._tick += 1
        entry = table.get(cfg)
        if entry is not None and entry[0] == cfg.version:
            self.hits += 1
            table[cfg] = (entry[0], entry[1], self._tick)
            return entry[1]
        self.misses += 1
        value = compute(cfg)
        table[cfg] = (cfg.version, value, self._tick)
        if len(table) > self.max_entries:
            self.evictions += self._evict_lru(table)
        return value

    def _get_analysis(self, table, key_obj, version, compute):
        """Like :meth:`_get` but with an explicit version key and the
        ``analysis_*`` counters (``key_obj`` is the weak table key)."""
        self._tick += 1
        entry = table.get(key_obj)
        if entry is not None and entry[0] == version:
            self.analysis_hits += 1
            table[key_obj] = (entry[0], entry[1], self._tick)
            return entry[1]
        self.analysis_misses += 1
        value = compute()
        table[key_obj] = (version, value, self._tick)
        if len(table) > self.max_entries:
            self.analysis_evictions += self._evict_lru(table)
        return value

    def _evict_lru(
        self, table: "WeakKeyDictionary[CFG, Tuple[int, T, int]]",
    ) -> int:
        evicted = 0
        while len(table) > self.max_entries:
            victim = None
            oldest = None
            for cfg, (_, _, used) in table.items():
                if oldest is None or used < oldest:
                    victim, oldest = cfg, used
            if victim is None:
                break
            del table[victim]
            evicted += 1
        return evicted

    def liveness(self, cfg: CFG) -> LivenessInfo:
        """Live-variable analysis for ``cfg``, cached per version."""
        return self._get(self._liveness, cfg, compute_liveness)

    def dominators(self, cfg: CFG) -> DominatorTree:
        """Dominator tree for ``cfg``, cached per version."""
        return self._get(self._dominators, cfg, DominatorTree)

    def register_bounds(self, cfg: CFG) -> Dict[RegClass, int]:
        """Per-class next-free register indices, cached per version."""
        return self._get(self._reg_bounds, cfg, _register_bounds)

    # ------------------------------------------------------------------
    # repro.analysis results (imported lazily: the analysis package is
    # optional at IR-import time and pulls in regions/machine modules).

    def reaching(self, function):
        """Reaching definitions for one function, cached per
        (cfg.version, params) — the parameter list shapes the boundary."""
        from repro.analysis.reaching import ReachingDefinitions

        cfg = function.cfg
        params = tuple(function.params)
        return self._get_analysis(
            self._reaching, cfg, (cfg.version, params),
            lambda: ReachingDefinitions(cfg, params),
        )

    def live_ranges(self, cfg: CFG):
        """Op-granular live ranges, cached per version."""
        from repro.analysis.liveranges import LiveRanges

        return self._get_analysis(
            self._live_ranges, cfg, cfg.version, lambda: LiveRanges(cfg),
        )

    def reachability(self, cfg: CFG):
        """Const-aware reachability, cached per version."""
        from repro.analysis.reachability import Reachability

        return self._get_analysis(
            self._reachability, cfg, cfg.version,
            lambda: Reachability(cfg),
        )

    def call_graph(self, program):
        """Whole-program call graph, keyed on every member CFG version.

        Adding or removing a function changes the version tuple, so the
        graph also invalidates on program-shape changes.
        """
        from repro.analysis.callgraph import CallGraph

        version = tuple(
            (fn.name, fn.cfg.version) for fn in program.functions()
        )
        return self._get_analysis(
            self._call_graph, program, version, lambda: CallGraph(program),
        )

    # ------------------------------------------------------------------

    def invalidate(self, cfg: Optional[CFG] = None) -> None:
        """Drop cached entries for one CFG, or everything when None."""
        if cfg is None:
            self._liveness.clear()
            self._dominators.clear()
            self._reg_bounds.clear()
            self._reaching.clear()
            self._live_ranges.clear()
            self._reachability.clear()
            self._call_graph.clear()
        else:
            self._liveness.pop(cfg, None)
            self._dominators.pop(cfg, None)
            self._reg_bounds.pop(cfg, None)
            self._reaching.pop(cfg, None)
            self._live_ranges.pop(cfg, None)
            self._reachability.pop(cfg, None)

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.analysis_hits = 0
        self.analysis_misses = 0
        self.analysis_evictions = 0


#: Process-wide cache used by the scheduler and the evaluation engine.
#: Correctness never depends on sharing it — the version check makes a
#: stale hit impossible — so module-level state is safe here, and each
#: worker process of the parallel engine simply grows its own.
GLOBAL_CACHE = AnalysisCache()


def liveness_of(cfg: CFG) -> LivenessInfo:
    return GLOBAL_CACHE.liveness(cfg)


def dominators_of(cfg: CFG) -> DominatorTree:
    return GLOBAL_CACHE.dominators(cfg)


def register_bounds_of(cfg: CFG) -> Dict[RegClass, int]:
    return GLOBAL_CACHE.register_bounds(cfg)


def reaching_definitions_of(function):
    """Cached :class:`repro.analysis.reaching.ReachingDefinitions`."""
    return GLOBAL_CACHE.reaching(function)


def live_ranges_of(cfg: CFG):
    """Cached :class:`repro.analysis.liveranges.LiveRanges`."""
    return GLOBAL_CACHE.live_ranges(cfg)


def reachability_of(cfg: CFG):
    """Cached :class:`repro.analysis.reachability.Reachability`."""
    return GLOBAL_CACHE.reachability(cfg)


def call_graph_of(program):
    """Cached :class:`repro.analysis.callgraph.CallGraph`."""
    return GLOBAL_CACHE.call_graph(program)


def invalidate(cfg: Optional[CFG] = None) -> None:
    GLOBAL_CACHE.invalidate(cfg)


def record_cache_metrics(metrics, cache: Optional[AnalysisCache] = None) -> None:
    """Publish a cache's hit/miss totals as gauges.

    Gauges, not counters: the totals are process-local (each parallel
    worker grows its own :data:`GLOBAL_CACHE`) and depend on execution
    mode, so they sit outside the serial/parallel determinism contract.
    """
    cache = cache if cache is not None else GLOBAL_CACHE
    metrics.gauge("cache.hits", cache.hits)
    metrics.gauge("cache.misses", cache.misses)
    metrics.gauge("cache.evictions", cache.evictions)
    metrics.gauge("cache.analysis.hits", cache.analysis_hits)
    metrics.gauge("cache.analysis.misses", cache.analysis_misses)
    metrics.gauge("cache.analysis.evictions", cache.analysis_evictions)
