"""Graphviz DOT export for CFGs and region partitions.

Debugging/teaching aid: render a function's CFG with blocks clustered by
region (treegions show up as the dotted groups of the paper's Figure 1).

    dot = cfg_to_dot(fn.cfg, partition=form_treegions(fn.cfg))
    pathlib.Path("cfg.dot").write_text(dot)
    # then: dot -Tsvg cfg.dot -o cfg.svg
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.cfg import CFG, BasicBlock
from repro.ir.printer import format_operation
from repro.ir.types import EdgeKind
from repro.regions.region import RegionPartition


def _block_label(block: BasicBlock, max_ops: int,
                 cycle_info: Optional[Tuple[int, int]] = None) -> str:
    lines = [f"{block.name} (w={block.weight:g})"]
    if cycle_info is not None:
        last_cycle, region_length = cycle_info
        lines.append(f"sched: last op @ cycle {last_cycle} "
                     f"of {region_length}")
    for op in block.ops[:max_ops]:
        lines.append(format_operation(op))
    if len(block.ops) > max_ops:
        lines.append(f"... +{len(block.ops) - max_ops} ops")
    escaped = "\\l".join(line.replace('"', '\\"') for line in lines)
    return escaped + "\\l"


def _schedule_cycle_map(schedules) -> Dict[int, Tuple[int, int]]:
    """Map home block id -> (last placed cycle, region schedule length).

    Reads each schedule through its stable
    :meth:`~repro.schedule.schedule.RegionSchedule.last_issue_by_block`
    view — the same accessor the lint certifier and simulator use — paired
    with the region's total length, the two numbers that let a rendered
    CFG cross-reference a trace.
    """
    info: Dict[int, Tuple[int, int]] = {}
    for schedule in schedules:
        for bid, cycle in schedule.last_issue_by_block().items():
            previous = info.get(bid)
            if previous is None or cycle > previous[0]:
                info[bid] = (cycle, schedule.length)
    return info


def cfg_to_dot(
    cfg: CFG,
    partition: Optional[RegionPartition] = None,
    name: str = "cfg",
    max_ops_per_block: int = 6,
    schedules: Optional[Sequence] = None,
) -> str:
    """Render a CFG (optionally clustered by region) as DOT text.

    When ``schedules`` (the :class:`~repro.schedule.schedule.RegionSchedule`
    list for ``partition``) is supplied, each block is annotated with the
    last cycle one of its ops issues in and its region's schedule length,
    and each region cluster label carries the schedule length — so the
    graph cross-references `repro trace` output.
    """
    cycle_map = _schedule_cycle_map(schedules) if schedules else {}
    lengths_by_root: Dict[int, int] = {}
    if schedules:
        for schedule in schedules:
            lengths_by_root[schedule.region.root.bid] = schedule.length

    lines: List[str] = [
        f"digraph {name} {{",
        '  node [shape=box, fontname="monospace", fontsize=9];',
        "  rankdir=TB;",
    ]

    if partition is not None:
        for region in partition:
            length = lengths_by_root.get(region.root.bid)
            label = f"{region.kind} #{region.rid}"
            if length is not None:
                label += f" ({length} cycles)"
            lines.append(f"  subgraph cluster_r{region.rid} {{")
            lines.append(f'    label="{label}";')
            lines.append("    style=dotted;")
            for block in region.blocks:
                lines.append(
                    f'    bb{block.bid} '
                    f'[label="{_block_label(block, max_ops_per_block, cycle_map.get(block.bid))}"];'
                )
            lines.append("  }")
        covered = {b.bid for r in partition for b in r.blocks}
    else:
        covered = set()

    for block in cfg.blocks():
        if block.bid not in covered:
            lines.append(
                f'  bb{block.bid} '
                f'[label="{_block_label(block, max_ops_per_block, cycle_map.get(block.bid))}"];'
            )

    styles = {
        EdgeKind.TAKEN: "solid",
        EdgeKind.FALLTHROUGH: "dashed",
        EdgeKind.CASE: "solid",
        EdgeKind.DEFAULT: "dotted",
    }
    for block in cfg.blocks():
        for edge in block.out_edges:
            attributes = [f'style={styles[edge.kind]}']
            label = f"{edge.weight:g}"
            if edge.kind is EdgeKind.CASE:
                label = f"case {edge.case_value}: {label}"
            attributes.append(f'label="{label}"')
            lines.append(
                f"  bb{block.bid} -> bb{edge.dst.bid} "
                f"[{', '.join(attributes)}];"
            )
    lines.append("}")
    return "\n".join(lines) + "\n"
