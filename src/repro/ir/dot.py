"""Graphviz DOT export for CFGs and region partitions.

Debugging/teaching aid: render a function's CFG with blocks clustered by
region (treegions show up as the dotted groups of the paper's Figure 1).

    dot = cfg_to_dot(fn.cfg, partition=form_treegions(fn.cfg))
    pathlib.Path("cfg.dot").write_text(dot)
    # then: dot -Tsvg cfg.dot -o cfg.svg
"""

from __future__ import annotations

from typing import List, Optional

from repro.ir.cfg import CFG, BasicBlock
from repro.ir.printer import format_operation
from repro.ir.types import EdgeKind
from repro.regions.region import RegionPartition


def _block_label(block: BasicBlock, max_ops: int) -> str:
    lines = [f"{block.name} (w={block.weight:g})"]
    for op in block.ops[:max_ops]:
        lines.append(format_operation(op))
    if len(block.ops) > max_ops:
        lines.append(f"... +{len(block.ops) - max_ops} ops")
    escaped = "\\l".join(line.replace('"', '\\"') for line in lines)
    return escaped + "\\l"


def cfg_to_dot(
    cfg: CFG,
    partition: Optional[RegionPartition] = None,
    name: str = "cfg",
    max_ops_per_block: int = 6,
) -> str:
    """Render a CFG (optionally clustered by region) as DOT text."""
    lines: List[str] = [
        f"digraph {name} {{",
        '  node [shape=box, fontname="monospace", fontsize=9];',
        "  rankdir=TB;",
    ]

    if partition is not None:
        for region in partition:
            lines.append(f"  subgraph cluster_r{region.rid} {{")
            lines.append(f'    label="{region.kind} #{region.rid}";')
            lines.append("    style=dotted;")
            for block in region.blocks:
                lines.append(
                    f'    bb{block.bid} '
                    f'[label="{_block_label(block, max_ops_per_block)}"];'
                )
            lines.append("  }")
        covered = {b.bid for r in partition for b in r.blocks}
    else:
        covered = set()

    for block in cfg.blocks():
        if block.bid not in covered:
            lines.append(
                f'  bb{block.bid} '
                f'[label="{_block_label(block, max_ops_per_block)}"];'
            )

    styles = {
        EdgeKind.TAKEN: "solid",
        EdgeKind.FALLTHROUGH: "dashed",
        EdgeKind.CASE: "solid",
        EdgeKind.DEFAULT: "dotted",
    }
    for block in cfg.blocks():
        for edge in block.out_edges:
            attributes = [f'style={styles[edge.kind]}']
            label = f"{edge.weight:g}"
            if edge.kind is EdgeKind.CASE:
                label = f"case {edge.case_value}: {label}"
            attributes.append(f'label="{label}"')
            lines.append(
                f"  bb{block.bid} -> bb{edge.dst.bid} "
                f"[{', '.join(attributes)}];"
            )
    lines.append("}")
    return "\n".join(lines) + "\n"
