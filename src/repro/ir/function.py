"""Functions and programs.

A :class:`Function` owns a CFG and a register factory; a :class:`Program` is
an ordered collection of functions plus a global-variable layout used by the
interpreter's flat memory.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.util.errors import IRValidationError
from repro.ir.cfg import CFG
from repro.ir.registers import Register, RegisterFactory


class Function:
    """A single function: name, parameters, CFG, register namespace."""

    def __init__(self, name: str, params: Optional[List[Register]] = None):
        self.name = name
        self.params: List[Register] = list(params or [])
        self.cfg = CFG()
        self.regs = RegisterFactory()
        for param in self.params:
            self.regs.reserve(param)

    @property
    def entry(self):
        return self.cfg.entry

    def __repr__(self) -> str:
        return f"<function {self.name} blocks={len(self.cfg)}>"


class GlobalVar:
    """A global variable: a name bound to a fixed memory address.

    ``size`` is in words (the interpreter's memory is word-addressed);
    arrays occupy ``size`` consecutive words starting at ``address``.
    """

    __slots__ = ("name", "address", "size", "initial")

    def __init__(self, name: str, address: int, size: int = 1,
                 initial: Optional[List[object]] = None):
        self.name = name
        self.address = address
        self.size = size
        self.initial = list(initial or [])

    def __repr__(self) -> str:
        return f"<global {self.name} @{self.address} size={self.size}>"


class Program:
    """An ordered set of functions with a designated entry point."""

    def __init__(self, entry: str = "main"):
        self.entry_name = entry
        self._functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVar] = {}
        self._next_address = 0

    # ------------------------------------------------------------------

    def add_function(self, function: Function) -> Function:
        if function.name in self._functions:
            raise IRValidationError(f"duplicate function '{function.name}'")
        self._functions[function.name] = function
        return function

    def new_function(self, name: str, params: Optional[List[Register]] = None) -> Function:
        return self.add_function(Function(name, params))

    def function(self, name: str) -> Function:
        return self._functions[name]

    def has_function(self, name: str) -> bool:
        return name in self._functions

    def functions(self) -> List[Function]:
        return list(self._functions.values())

    def __iter__(self) -> Iterator[Function]:
        return iter(self._functions.values())

    def __len__(self) -> int:
        return len(self._functions)

    @property
    def entry_function(self) -> Function:
        return self._functions[self.entry_name]

    # ------------------------------------------------------------------
    # Globals

    def add_global(self, name: str, size: int = 1,
                   initial: Optional[List[object]] = None) -> GlobalVar:
        """Lay out a global at the next free address."""
        if name in self.globals:
            raise IRValidationError(f"duplicate global '{name}'")
        var = GlobalVar(name, self._next_address, size=size, initial=initial)
        self._next_address += size
        self.globals[name] = var
        return var

    @property
    def global_words(self) -> int:
        """Total words occupied by globals (the heap starts after this)."""
        return self._next_address

    def __repr__(self) -> str:
        return f"<program entry={self.entry_name} functions={len(self)}>"
