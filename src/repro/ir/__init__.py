"""The intermediate representation (IR) substrate.

This package plays the role of the Rebel IR / LEGO compiler infrastructure
used by the paper: a VLIW-oriented IR with Playdoh-style operations
(compare-to-predicate, prepare-to-branch, predicated branches), virtual
registers in three classes (general ``r``, predicate ``p``, branch-target
``b``), basic blocks, an explicit CFG with typed edges carrying profile
weights, dominators, liveness, a builder, a textual printer/parser, and a
structural verifier.

Public entry points:

* :class:`~repro.ir.operation.Operation`, :class:`~repro.ir.registers.Register`
* :class:`~repro.ir.cfg.BasicBlock`, :class:`~repro.ir.cfg.Edge`,
  :class:`~repro.ir.cfg.CFG`
* :class:`~repro.ir.function.Function`, :class:`~repro.ir.function.Program`
* :class:`~repro.ir.builder.IRBuilder` for constructing functions by hand
* :func:`~repro.ir.verify.verify_function` / ``verify_cfg``
* :func:`~repro.ir.printer.format_function` and
  :func:`~repro.ir.parser.parse_program`
"""

from repro.ir.types import (
    Opcode,
    RegClass,
    CompareCond,
    EdgeKind,
    Immediate,
    LabelRef,
)
from repro.ir.registers import Register, RegisterFactory
from repro.ir.operation import Operation
from repro.ir.cfg import BasicBlock, Edge, CFG
from repro.ir.function import Function, Program
from repro.ir.builder import IRBuilder
from repro.ir.dominators import DominatorTree
from repro.ir.liveness import LivenessInfo, compute_liveness
from repro.ir.analysis_cache import (
    AnalysisCache,
    dominators_of,
    liveness_of,
    register_bounds_of,
)
from repro.ir.verify import verify_cfg, verify_function, verify_program
from repro.ir.printer import format_function, format_program, format_operation
from repro.ir.parser import parse_program

__all__ = [
    "Opcode",
    "RegClass",
    "CompareCond",
    "EdgeKind",
    "Immediate",
    "LabelRef",
    "Register",
    "RegisterFactory",
    "Operation",
    "BasicBlock",
    "Edge",
    "CFG",
    "Function",
    "Program",
    "IRBuilder",
    "DominatorTree",
    "LivenessInfo",
    "compute_liveness",
    "AnalysisCache",
    "liveness_of",
    "dominators_of",
    "register_bounds_of",
    "verify_cfg",
    "verify_function",
    "verify_program",
    "format_function",
    "format_program",
    "format_operation",
    "parse_program",
]
