"""Textual IR printing.

The format is line-oriented and designed to round-trip through
``repro.ir.parser``: one op per line, blocks introduced by ``block`` lines
carrying profile weights, and out-edges printed explicitly after each
block's ops (edges are the CFG's source of truth, so they are never
inferred from branch mnemonics).

Example::

    func main(r0) {
      block bb1 weight=100
        r1 = ld r0, #0
        p1 = cmpp.gt r1, #10
        brct p1 -> bb2
      edge bb1 -> bb2 taken weight=60
      edge bb1 -> bb3 fallthrough weight=40
      ...
    }
"""

from __future__ import annotations

from typing import List

from repro.ir.cfg import BasicBlock, Edge
from repro.ir.function import Function, Program
from repro.ir.operation import Operation
from repro.ir.types import EdgeKind, Opcode


def format_operand(operand) -> str:
    return str(operand)


def format_operation(op: Operation) -> str:
    """One-line textual form of an op."""
    mnemonic = op.opcode.value
    if op.cond is not None:
        mnemonic += f".{op.cond.value}"
    parts: List[str] = []
    if op.dests:
        parts.append(", ".join(str(d) for d in op.dests))
        parts.append("=")
    parts.append(mnemonic)
    if op.opcode is Opcode.CALL:
        parts.append(op.callee or "?")
    if op.srcs:
        parts.append(", ".join(format_operand(s) for s in op.srcs))
    if op.guard is not None:
        parts.append(f"? {op.guard}")
    if op.target is not None:
        parts.append(f"-> bb{op.target}")
    if op.speculative:
        parts.append("!spec")
    return " ".join(parts)


def format_edge(edge: Edge) -> str:
    kind = edge.kind.value
    if edge.kind is EdgeKind.CASE:
        kind = f"case({edge.case_value})"
    return (
        f"edge bb{edge.src.bid} -> bb{edge.dst.bid} {kind} "
        f"weight={edge.weight:g}"
    )


def format_block(block: BasicBlock, entry: bool = False) -> str:
    lines = [f"  block bb{block.bid} weight={block.weight:g}"
             + (" entry" if entry else "")]
    for op in block.ops:
        lines.append(f"    {format_operation(op)}")
    for edge in block.out_edges:
        lines.append(f"  {format_edge(edge)}")
    return "\n".join(lines)


def format_function(function: Function) -> str:
    params = ", ".join(str(p) for p in function.params)
    lines = [f"func {function.name}({params}) {{"]
    entry = function.cfg.entry
    for block in function.cfg.blocks():
        lines.append(format_block(block, entry=block is entry))
    lines.append("}")
    return "\n".join(lines)


def format_program(program: Program) -> str:
    lines = [f"program entry={program.entry_name}"]
    for var in program.globals.values():
        line = f"global {var.name} size={var.size}"
        if var.initial:
            init = ", ".join(str(v) for v in var.initial)
            line += f" init=[{init}]"
        lines.append(line)
    for function in program.functions():
        lines.append("")
        lines.append(format_function(function))
    return "\n".join(lines) + "\n"
