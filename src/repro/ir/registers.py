"""Virtual registers.

The IR uses an unbounded supply of virtual registers in three classes
(general, predicate, branch-target).  Register pressure and allocation are
outside the paper's scope — its machine models assume enough registers, and
compile-time renaming freely mints new names — so registers here are simple
immutable (class, index) pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.types import RegClass


@dataclass(frozen=True, order=True)
class Register:
    """A virtual register, e.g. ``r3``, ``p1``, ``b2``.

    Frozen so registers can key dicts and sets; ordering (by class then
    index) makes sorted dumps deterministic.
    """

    rclass: RegClass
    index: int

    def __post_init__(self):
        # Registers key the DDG's producer maps and the renamer's live
        # sets millions of times per evaluation grid; the generated hash
        # re-hashes the enum member on every probe, so precompute once.
        object.__setattr__(self, "_hash", hash((self.rclass, self.index)))

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Rebuild through __init__ so an unpickled register recomputes
        # ``_hash`` under the receiving interpreter's hash seed.
        return (Register, (self.rclass, self.index))

    def __str__(self) -> str:
        return f"{self.rclass.prefix}{self.index}"

    def __repr__(self) -> str:
        return f"Register({self})"


class RegisterFactory:
    """Allocates fresh virtual registers for one function.

    Renaming during scheduling and guard synthesis both need names that are
    guaranteed not to collide with anything in the function, so the factory
    lives on :class:`~repro.ir.function.Function` and is threaded through
    every pass that creates registers.
    """

    def __init__(self):
        self._next = {rclass: 0 for rclass in RegClass}

    def fresh(self, rclass: RegClass) -> Register:
        """Return a never-before-seen register of the given class."""
        index = self._next[rclass]
        self._next[rclass] = index + 1
        return Register(rclass, index)

    def fresh_gpr(self) -> Register:
        return self.fresh(RegClass.GPR)

    def fresh_pred(self) -> Register:
        return self.fresh(RegClass.PRED)

    def fresh_btr(self) -> Register:
        return self.fresh(RegClass.BTR)

    def reserve(self, register: Register) -> None:
        """Record an externally-created register so ``fresh`` avoids it."""
        nxt = self._next[register.rclass]
        if register.index >= nxt:
            self._next[register.rclass] = register.index + 1

    def reserve_bounds(self, bounds) -> None:
        """Reserve every index below precomputed per-class bounds.

        Takes a ``{RegClass: next_free_index}`` map (see
        :func:`repro.ir.analysis_cache.register_bounds_of`) so callers that
        already know the function-wide maxima skip the per-register walk.
        """
        for rclass, nxt in bounds.items():
            if nxt > self._next[rclass]:
                self._next[rclass] = nxt

    def next_index(self, rclass: RegClass) -> int:
        """The index the next ``fresh`` call would use (for tests)."""
        return self._next[rclass]
