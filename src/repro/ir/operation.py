"""IR operations (the paper's "Ops").

An :class:`Operation` is one machine operation: at most a few destination
registers, a list of source operands (registers or immediates), an optional
guard predicate (Playdoh-style predicated execution), and opcode-specific
payload (compare condition, branch target, callee name).

Two bookkeeping fields support the paper's algorithms:

* ``uid`` — unique within the function; DDG nodes and schedules refer to ops
  by identity, and uids make dumps stable.
* ``origin`` — the uid of the op this one was cloned from by tail
  duplication (or its own uid if original).  Dominator parallelism
  (Section 4 of the paper) eliminates a duplicated op when another op with
  the same origin is already scheduled in a dominating position, so clones
  must remember their family.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.ir.types import CompareCond, Immediate, Opcode
from repro.ir.registers import Register

Operand = Union[Register, Immediate]


class Operation:
    """A single IR operation.

    Mutable by design: renaming, predication, and tail duplication all
    rewrite operands in place.  Identity (not value) equality is used
    throughout so the same textual op appearing twice stays two nodes.
    """

    __slots__ = (
        "uid",
        "opcode",
        "dests",
        "srcs",
        "guard",
        "cond",
        "target",
        "callee",
        "origin",
        "speculative",
    )

    def __init__(
        self,
        uid: int,
        opcode: Opcode,
        dests: Sequence[Register] = (),
        srcs: Sequence[Operand] = (),
        guard: Optional[Register] = None,
        cond: Optional[CompareCond] = None,
        target: Optional[int] = None,
        callee: Optional[str] = None,
        origin: Optional[int] = None,
    ):
        self.uid = uid
        self.opcode = opcode
        self.dests: List[Register] = list(dests)
        self.srcs: List[Operand] = list(srcs)
        self.guard = guard
        self.cond = cond
        self.target = target  # destination block id for branches / PBR
        self.callee = callee
        self.origin = uid if origin is None else origin
        # Set by the scheduler when the op is hoisted above a branch it was
        # control-dependent on.  Purely informational outside scheduling.
        self.speculative = False

    # ------------------------------------------------------------------
    # Operand accessors

    @property
    def dest(self) -> Register:
        """The single destination (raises if there is not exactly one)."""
        if len(self.dests) != 1:
            raise ValueError(f"op {self} has {len(self.dests)} dests")
        return self.dests[0]

    def defined_registers(self) -> List[Register]:
        """Registers written by this op."""
        return list(self.dests)

    def used_registers(self) -> List[Register]:
        """Registers read by this op, including the guard predicate."""
        used = [src for src in self.srcs if isinstance(src, Register)]
        if self.guard is not None:
            used.append(self.guard)
        return used

    def source_registers(self) -> List[Register]:
        """Registers read as data sources (guard excluded)."""
        return [src for src in self.srcs if isinstance(src, Register)]

    def replace_uses(self, old: Register, new: Register) -> int:
        """Rewrite reads of ``old`` (sources and guard) to ``new``.

        Returns the number of operands rewritten.
        """
        count = 0
        for i, src in enumerate(self.srcs):
            if src == old:
                self.srcs[i] = new
                count += 1
        if self.guard == old:
            self.guard = new
            count += 1
        return count

    def replace_defs(self, old: Register, new: Register) -> int:
        """Rewrite writes of ``old`` to ``new``; returns rewrite count."""
        count = 0
        for i, dst in enumerate(self.dests):
            if dst == old:
                self.dests[i] = new
                count += 1
        return count

    # ------------------------------------------------------------------
    # Classification helpers

    @property
    def is_branch(self) -> bool:
        return self.opcode.is_branch

    @property
    def is_terminator(self) -> bool:
        return self.opcode.is_terminator

    @property
    def is_memory(self) -> bool:
        return self.opcode.is_memory

    @property
    def is_store(self) -> bool:
        return self.opcode is Opcode.ST

    @property
    def is_load(self) -> bool:
        return self.opcode is Opcode.LD

    @property
    def can_speculate(self) -> bool:
        """True if the op may execute before its guarding branch resolves.

        Stores, calls, and control ops may not; everything else may, with
        register renaming repairing any live-out violations (Section 3).
        """
        return not self.opcode.has_side_effects

    def same_computation(self, other: "Operation") -> bool:
        """True if both ops compute the same value from the same operands.

        Used by dominator parallelism: two tail-duplication clones may only
        be merged when, *after renaming*, they still read identical operands
        (otherwise the clones genuinely compute different values).
        """
        return (
            self.opcode is other.opcode
            and self.cond is other.cond
            and self.srcs == other.srcs
            and self.target == other.target
            and self.callee == other.callee
        )

    # ------------------------------------------------------------------
    # Cloning

    def clone(self, uid: int) -> "Operation":
        """Copy this op under a new uid, preserving ``origin``.

        Tail duplication uses this; the clone's ``origin`` points back at
        the family root so dominator parallelism can recognize siblings.
        """
        op = Operation(
            uid,
            self.opcode,
            dests=list(self.dests),
            srcs=list(self.srcs),
            guard=self.guard,
            cond=self.cond,
            target=self.target,
            callee=self.callee,
            origin=self.origin,
        )
        return op

    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        from repro.ir.printer import format_operation

        return f"<op{self.uid} {format_operation(self)}>"
