"""Core IR enumerations and small value types.

The operation set follows the HPL Play-Doh architecture specification that
the paper's machine models assume: general-purpose compute ops, loads and
stores, a two-destination compare-to-predicate (``CMPP``), prepare-to-branch
(``PBR``) writing branch-target registers, and predicated branch ops
(``BRCT``/``BRCF``/``BRU``).  ``SWITCH`` models the wide multiway branches
that the paper observes rooting the problematic treegions in gcc and perl.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class RegClass(enum.Enum):
    """Register classes, printed with the paper's prefixes.

    ``GPR`` holds both integer and floating-point values (the machine models
    use universal function units, so a unified register file loses nothing).
    ``PRED`` holds one-bit predicates.  ``BTR`` holds branch targets
    initialized by ``PBR`` ops.
    """

    GPR = "r"
    PRED = "p"
    BTR = "b"

    def __lt__(self, other: "RegClass"):
        # Register is ordered "by class then index" (sorted liveness
        # dumps, renaming determinism); that requires the class itself to
        # be orderable when a mixed-class set is sorted — which first
        # happens when a predicate is live across a block boundary.
        if isinstance(other, RegClass):
            return self.value < other.value
        return NotImplemented

    @property
    def prefix(self) -> str:
        return self.value


class Opcode(enum.Enum):
    """Operation opcodes.

    The string values double as the textual IR mnemonics.
    """

    # Integer ALU.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    NEG = "neg"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    SHL = "shl"
    SHR = "shr"
    # Floating point (carried in GPRs; latencies differ).
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    # Data movement.
    MOV = "mov"          # register or immediate move
    COPY = "copy"        # compiler-inserted rename-repair copy
    # Memory.
    LD = "ld"            # dest = MEM[src0 + src1]
    ST = "st"            # MEM[src0 + src1] = src2
    # Predicates.
    CMPP = "cmpp"        # p_true[, p_false] = compare(src0, src1) [? guard]
    PAND = "pand"        # p = src0 & src1 (predicate conjunction)
    PANDCN = "pandcn"    # p = ~src0 & src1 (and-complement)
    POR = "por"          # p = src0 | src1 | ... (predicate disjunction;
    #                      hyperblock merge guards)
    NINSET = "ninset"    # p = src0 not in {src1..srcN} [? guard]; switch default guard
    # Control.
    PBR = "pbr"          # btr = address-of(target block)
    BRU = "bru"          # unconditional branch
    BRCT = "brct"        # branch if predicate true
    BRCF = "brcf"        # branch if predicate false
    SWITCH = "switch"    # multiway branch on src0 (case edges on the block)
    CALL = "call"        # dest = callee(srcs); scheduling barrier
    RET = "ret"          # return [src0]
    NOP = "nop"

    @property
    def is_branch(self) -> bool:
        """True for ops that transfer control (excluding CALL/RET)."""
        return self in _BRANCHES

    @property
    def is_terminator(self) -> bool:
        """True for ops that must appear last in a basic block."""
        return self in _TERMINATORS

    @property
    def is_memory(self) -> bool:
        return self in (Opcode.LD, Opcode.ST)

    @property
    def has_side_effects(self) -> bool:
        """Ops that may not be executed speculatively.

        Stores write memory, calls are opaque, and control ops are handled
        by the predication machinery rather than by speculation.
        """
        return self in _SIDE_EFFECTS


_BRANCHES = frozenset({Opcode.BRU, Opcode.BRCT, Opcode.BRCF, Opcode.SWITCH})
_TERMINATORS = frozenset(
    {Opcode.BRU, Opcode.BRCT, Opcode.BRCF, Opcode.SWITCH, Opcode.RET}
)
_SIDE_EFFECTS = frozenset(
    {Opcode.ST, Opcode.CALL, Opcode.RET} | _BRANCHES
)


class CompareCond(enum.Enum):
    """Comparison conditions for ``CMPP``."""

    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"

    def evaluate(self, lhs, rhs) -> bool:
        """Apply the comparison to two Python numbers."""
        if self is CompareCond.EQ:
            return lhs == rhs
        if self is CompareCond.NE:
            return lhs != rhs
        if self is CompareCond.LT:
            return lhs < rhs
        if self is CompareCond.LE:
            return lhs <= rhs
        if self is CompareCond.GT:
            return lhs > rhs
        return lhs >= rhs

    def negate(self) -> "CompareCond":
        """The condition computing the logical complement."""
        return _NEGATIONS[self]


_NEGATIONS = {
    CompareCond.EQ: CompareCond.NE,
    CompareCond.NE: CompareCond.EQ,
    CompareCond.LT: CompareCond.GE,
    CompareCond.LE: CompareCond.GT,
    CompareCond.GT: CompareCond.LE,
    CompareCond.GE: CompareCond.LT,
}


class EdgeKind(enum.Enum):
    """How control reaches an edge's destination from its source block."""

    TAKEN = "taken"              # target of BRU/BRCT/BRCF
    FALLTHROUGH = "fallthrough"  # textual successor (no branch / branch not taken)
    CASE = "case"                # SWITCH case edge; carries a case value
    DEFAULT = "default"          # SWITCH default edge


@dataclass(frozen=True)
class Immediate:
    """An immediate operand.

    Immediates may be integers or floats; the IR is untyped beyond the
    register class split, matching the paper's level of abstraction.
    """

    value: object  # int or float

    def __str__(self) -> str:
        return f"#{self.value}"


@dataclass(frozen=True)
class LabelRef:
    """A reference to a basic block used as a branch/PBR target payload."""

    block_id: int

    def __str__(self) -> str:
        return f"bb{self.block_id}"
