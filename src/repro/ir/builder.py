"""A fluent builder for constructing IR functions by hand.

Used heavily by tests, the examples, and the reconstruction of the paper's
Figure 1 CFG.  The builder keeps a current insertion block; emit methods
wrap plain Python numbers into :class:`Immediate` operands and mint fresh
destination registers unless one is supplied.

Example::

    fn = Function("main")
    b = IRBuilder(fn)
    entry = b.block("entry")
    b.at(entry)
    x = b.ld(b.addr_of(0))
    p = b.cmpp(CompareCond.GT, x, 10)
    then_bb, else_bb = b.block("then"), b.block("else")
    b.br_true(p, then_bb, else_bb)
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro.util.errors import IRValidationError
from repro.ir.cfg import BasicBlock
from repro.ir.function import Function
from repro.ir.operation import Operation, Operand
from repro.ir.registers import Register
from repro.ir.types import CompareCond, EdgeKind, Immediate, Opcode, RegClass

Value = Union[Register, Immediate, int, float]


def as_operand(value: Value) -> Operand:
    """Wrap plain numbers in :class:`Immediate`; pass operands through."""
    if isinstance(value, (Register, Immediate)):
        return value
    if isinstance(value, bool):
        return Immediate(int(value))
    if isinstance(value, (int, float)):
        return Immediate(value)
    raise IRValidationError(f"cannot use {value!r} as an operand")


class IRBuilder:
    """Builds ops into a current block of one function."""

    def __init__(self, function: Function):
        self.function = function
        self.cfg = function.cfg
        self._block: Optional[BasicBlock] = None

    # ------------------------------------------------------------------
    # Block management

    def block(self, name: str = "") -> BasicBlock:
        """Create a new block (does not change the insertion point)."""
        return self.cfg.new_block(name)

    def at(self, block: BasicBlock) -> "IRBuilder":
        """Set the insertion point; returns self for chaining."""
        self._block = block
        return self

    @property
    def current(self) -> BasicBlock:
        if self._block is None:
            raise IRValidationError("no insertion block set; call .at(block)")
        return self._block

    # ------------------------------------------------------------------
    # Register helpers

    def fresh(self, rclass: RegClass = RegClass.GPR) -> Register:
        return self.function.regs.fresh(rclass)

    # ------------------------------------------------------------------
    # Generic emission

    def emit(self, opcode: Opcode, dests: Sequence[Register] = (),
             srcs: Sequence[Value] = (), guard: Optional[Register] = None,
             **kwargs) -> Operation:
        op = self.cfg.new_op(
            opcode,
            dests=dests,
            srcs=[as_operand(s) for s in srcs],
            guard=guard,
            **kwargs,
        )
        self.current.ops.append(op)
        self.cfg.bump_version()  # direct op-list edit: invalidate analyses
        return op

    def _binary(self, opcode: Opcode, a: Value, b: Value,
                dest: Optional[Register] = None) -> Register:
        dest = dest or self.fresh()
        self.emit(opcode, dests=[dest], srcs=[a, b])
        return dest

    def _unary(self, opcode: Opcode, a: Value,
               dest: Optional[Register] = None) -> Register:
        dest = dest or self.fresh()
        self.emit(opcode, dests=[dest], srcs=[a])
        return dest

    # ------------------------------------------------------------------
    # Arithmetic / logic

    def add(self, a: Value, b: Value, dest: Optional[Register] = None) -> Register:
        return self._binary(Opcode.ADD, a, b, dest)

    def sub(self, a: Value, b: Value, dest: Optional[Register] = None) -> Register:
        return self._binary(Opcode.SUB, a, b, dest)

    def mul(self, a: Value, b: Value, dest: Optional[Register] = None) -> Register:
        return self._binary(Opcode.MUL, a, b, dest)

    def div(self, a: Value, b: Value, dest: Optional[Register] = None) -> Register:
        return self._binary(Opcode.DIV, a, b, dest)

    def mod(self, a: Value, b: Value, dest: Optional[Register] = None) -> Register:
        return self._binary(Opcode.MOD, a, b, dest)

    def and_(self, a: Value, b: Value, dest: Optional[Register] = None) -> Register:
        return self._binary(Opcode.AND, a, b, dest)

    def or_(self, a: Value, b: Value, dest: Optional[Register] = None) -> Register:
        return self._binary(Opcode.OR, a, b, dest)

    def xor(self, a: Value, b: Value, dest: Optional[Register] = None) -> Register:
        return self._binary(Opcode.XOR, a, b, dest)

    def shl(self, a: Value, b: Value, dest: Optional[Register] = None) -> Register:
        return self._binary(Opcode.SHL, a, b, dest)

    def shr(self, a: Value, b: Value, dest: Optional[Register] = None) -> Register:
        return self._binary(Opcode.SHR, a, b, dest)

    def neg(self, a: Value, dest: Optional[Register] = None) -> Register:
        return self._unary(Opcode.NEG, a, dest)

    def not_(self, a: Value, dest: Optional[Register] = None) -> Register:
        return self._unary(Opcode.NOT, a, dest)

    def fadd(self, a: Value, b: Value, dest: Optional[Register] = None) -> Register:
        return self._binary(Opcode.FADD, a, b, dest)

    def fsub(self, a: Value, b: Value, dest: Optional[Register] = None) -> Register:
        return self._binary(Opcode.FSUB, a, b, dest)

    def fmul(self, a: Value, b: Value, dest: Optional[Register] = None) -> Register:
        return self._binary(Opcode.FMUL, a, b, dest)

    def fdiv(self, a: Value, b: Value, dest: Optional[Register] = None) -> Register:
        return self._binary(Opcode.FDIV, a, b, dest)

    def mov(self, value: Value, dest: Optional[Register] = None) -> Register:
        return self._unary(Opcode.MOV, value, dest)

    # ------------------------------------------------------------------
    # Memory

    def ld(self, base: Value, offset: Value = 0,
           dest: Optional[Register] = None) -> Register:
        dest = dest or self.fresh()
        self.emit(Opcode.LD, dests=[dest], srcs=[base, offset])
        return dest

    def st(self, base: Value, offset: Value, value: Value) -> Operation:
        return self.emit(Opcode.ST, srcs=[base, offset, value])

    # ------------------------------------------------------------------
    # Predicates and control

    def cmpp(self, cond: CompareCond, a: Value, b: Value,
             dest: Optional[Register] = None,
             dest_false: Optional[Register] = None,
             guard: Optional[Register] = None,
             both: bool = False) -> Union[Register, Tuple[Register, Register]]:
        """Emit a compare-to-predicate.

        With ``both=True`` (or an explicit ``dest_false``) the op writes the
        complement predicate too, returning a (true, false) pair — the
        two-destination CMPP form of Playdoh that the treegion scheduler
        uses for guard chains.
        """
        dest = dest or self.fresh(RegClass.PRED)
        dests: List[Register] = [dest]
        if both and dest_false is None:
            dest_false = self.fresh(RegClass.PRED)
        if dest_false is not None:
            dests.append(dest_false)
        self.emit(Opcode.CMPP, dests=dests, srcs=[a, b], cond=cond, guard=guard)
        if dest_false is not None:
            return dest, dest_false
        return dest

    def br_true(self, pred: Register, target: BasicBlock,
                fallthrough: BasicBlock) -> Operation:
        op = self.emit(Opcode.BRCT, srcs=[pred], target=target.bid)
        self.cfg.add_edge(self.current, target, EdgeKind.TAKEN)
        self.cfg.add_edge(self.current, fallthrough, EdgeKind.FALLTHROUGH)
        return op

    def br_false(self, pred: Register, target: BasicBlock,
                 fallthrough: BasicBlock) -> Operation:
        op = self.emit(Opcode.BRCF, srcs=[pred], target=target.bid)
        self.cfg.add_edge(self.current, target, EdgeKind.TAKEN)
        self.cfg.add_edge(self.current, fallthrough, EdgeKind.FALLTHROUGH)
        return op

    def jump(self, target: BasicBlock) -> Operation:
        op = self.emit(Opcode.BRU, target=target.bid)
        self.cfg.add_edge(self.current, target, EdgeKind.TAKEN)
        return op

    def fallthrough(self, target: BasicBlock) -> None:
        """Add a plain fallthrough edge (no branch op)."""
        self.cfg.add_edge(self.current, target, EdgeKind.FALLTHROUGH)

    def switch(self, selector: Value,
               cases: Sequence[Tuple[int, BasicBlock]],
               default: BasicBlock) -> Operation:
        """Emit a multiway branch with one CASE edge per (value, block)."""
        op = self.emit(Opcode.SWITCH, srcs=[selector])
        for value, block in cases:
            self.cfg.add_edge(self.current, block, EdgeKind.CASE, case_value=value)
        self.cfg.add_edge(self.current, default, EdgeKind.DEFAULT)
        return op

    def call(self, callee: str, args: Sequence[Value] = (),
             dest: Optional[Register] = None) -> Register:
        dest = dest or self.fresh()
        self.emit(Opcode.CALL, dests=[dest], srcs=list(args), callee=callee)
        return dest

    def ret(self, value: Optional[Value] = None) -> Operation:
        srcs = [] if value is None else [value]
        return self.emit(Opcode.RET, srcs=srcs)

    def nop(self) -> Operation:
        return self.emit(Opcode.NOP)
