"""Live-variable analysis.

The treegion scheduler needs to know, for a register defined inside a
region, whether it is live-out along a given exit: speculating a def above a
branch is only a *live-out violation* (requiring renaming) when the original
value is still needed on the other arm (Section 3; the paper's ``r6 = 5``
example is exactly the non-live-out case where no repair is needed).

This is the textbook backward may-analysis over virtual registers, computed
per function.  Guards count as uses.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set, Tuple

from repro.ir.cfg import CFG, BasicBlock
from repro.ir.registers import Register


class LivenessInfo:
    """Per-block live-in/live-out register sets for one CFG."""

    def __init__(self, live_in: Dict[int, FrozenSet[Register]],
                 live_out: Dict[int, FrozenSet[Register]]):
        self._live_in = live_in
        self._live_out = live_out
        # Lazily cached sorted live-in tuples: renaming and the DDG
        # builder iterate live sets in sorted order once per region exit,
        # and one LivenessInfo is shared across all regions of a CFG (and
        # across schemes, via the analysis cache) — sorting each block's
        # set once beats re-sorting it at every exit.
        self._sorted_in: Dict[int, Tuple[Register, ...]] = {}

    def live_in(self, block: BasicBlock) -> FrozenSet[Register]:
        return self._live_in.get(block.bid, frozenset())

    def live_out(self, block: BasicBlock) -> FrozenSet[Register]:
        return self._live_out.get(block.bid, frozenset())

    def live_in_sorted(self, block: BasicBlock) -> Tuple[Register, ...]:
        """``sorted(live_in(block))`` as a cached tuple."""
        cached = self._sorted_in.get(block.bid)
        if cached is None:
            cached = tuple(sorted(self._live_in.get(block.bid, ())))
            self._sorted_in[block.bid] = cached
        return cached

    def live_into_edge(self, edge) -> FrozenSet[Register]:
        """Registers live on entry to the edge's destination.

        Edge-granular liveness (live-out restricted to one successor) is
        what the renaming pass actually asks about; with a may-analysis the
        destination's live-in is the precise answer.
        """
        return self.live_in(edge.dst)

    def live_into_edge_sorted(self, edge) -> Tuple[Register, ...]:
        """``sorted(live_into_edge(edge))`` as a cached tuple."""
        return self.live_in_sorted(edge.dst)


def block_use_def(block: BasicBlock):
    """(upward-exposed uses, defs) for one block."""
    uses: Set[Register] = set()
    defs: Set[Register] = set()
    for op in block.ops:
        for reg in op.used_registers():
            if reg not in defs:
                uses.add(reg)
        defs.update(op.defined_registers())
    return uses, defs


def compute_liveness(cfg: CFG) -> LivenessInfo:
    """Run the backward fixed-point over the CFG."""
    use: Dict[int, Set[Register]] = {}
    deff: Dict[int, Set[Register]] = {}
    for block in cfg.blocks():
        u, d = block_use_def(block)
        use[block.bid] = u
        deff[block.bid] = d

    live_in: Dict[int, Set[Register]] = {b.bid: set() for b in cfg.blocks()}
    live_out: Dict[int, Set[Register]] = {b.bid: set() for b in cfg.blocks()}

    # Iterate blocks in reverse RPO for fast convergence.
    order = list(reversed(cfg.reverse_postorder()))
    changed = True
    while changed:
        changed = False
        for block in order:
            out = set()
            for succ in block.successors:
                out |= live_in[succ.bid]
            inn = use[block.bid] | (out - deff[block.bid])
            if out != live_out[block.bid]:
                live_out[block.bid] = out
                changed = True
            if inn != live_in[block.bid]:
                live_in[block.bid] = inn
                changed = True

    return LivenessInfo(
        {bid: frozenset(s) for bid, s in live_in.items()},
        {bid: frozenset(s) for bid, s in live_out.items()},
    )
