"""Parser for the textual IR emitted by ``repro.ir.printer``.

Line-oriented recursive descent.  Block labels (``bb7``) are resolved to
freshly-allocated blocks, so parsed ids may differ from printed ids, but the
structure, weights, and op streams are identical; a second print/parse
round-trip is a fixed point (tested in ``tests/test_ir_roundtrip.py``).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.util.errors import IRValidationError
from repro.ir.cfg import BasicBlock
from repro.ir.function import Function, Program
from repro.ir.registers import Register
from repro.ir.types import CompareCond, EdgeKind, Immediate, Opcode, RegClass

_REG_RE = re.compile(r"^([rpb])(\d+)$")
_IMM_RE = re.compile(r"^#(-?\d+(?:\.\d+)?)$")
_BLOCK_RE = re.compile(r"^block (bb\d+) weight=([-\d.e+]+)( entry)?$")
_EDGE_RE = re.compile(
    r"^edge (bb\d+) -> (bb\d+) (taken|fallthrough|default|case\((-?\d+)\)) weight=([-\d.e+]+)$"
)
_FUNC_RE = re.compile(r"^func (\w+)\(([^)]*)\) \{$")
_GLOBAL_RE = re.compile(r"^global (\w+) size=(\d+)(?: init=\[([^\]]*)\])?$")
_TARGET_RE = re.compile(r"-> bb(\d+)")

_CLASS_BY_PREFIX = {"r": RegClass.GPR, "p": RegClass.PRED, "b": RegClass.BTR}
_OPCODES_BY_NAME = {op.value: op for op in Opcode}
_CONDS_BY_NAME = {c.value: c for c in CompareCond}


def _parse_register(text: str) -> Register:
    match = _REG_RE.match(text)
    if not match:
        raise IRValidationError(f"bad register {text!r}")
    return Register(_CLASS_BY_PREFIX[match.group(1)], int(match.group(2)))


def _parse_operand(text: str):
    imm = _IMM_RE.match(text)
    if imm:
        raw = imm.group(1)
        value = float(raw) if "." in raw else int(raw)
        return Immediate(value)
    return _parse_register(text)


def _parse_operation(function: Function, line: str,
                     labels: Dict[str, BasicBlock]) -> None:
    """Parse one op line and append it to the most recent block."""
    cfg = function.cfg
    block = cfg.blocks()[-1] if len(cfg) else None
    if block is None:
        raise IRValidationError(f"op outside any block: {line!r}")

    speculative = False
    if line.endswith("!spec"):
        speculative = True
        line = line[: -len("!spec")].strip()

    target: Optional[int] = None
    target_match = _TARGET_RE.search(line)
    target_label: Optional[str] = None
    if target_match:
        target_label = f"bb{target_match.group(1)}"
        line = _TARGET_RE.sub("", line).strip()

    guard: Optional[Register] = None
    if "?" in line:
        line, guard_text = line.rsplit("?", 1)
        guard = _parse_register(guard_text.strip())
        line = line.strip()

    dests: List[Register] = []
    if "=" in line:
        dest_text, line = line.split("=", 1)
        dests = [_parse_register(t.strip()) for t in dest_text.split(",")]
        line = line.strip()

    tokens = line.split(None, 1)
    mnemonic = tokens[0]
    rest = tokens[1] if len(tokens) > 1 else ""
    cond: Optional[CompareCond] = None
    if "." in mnemonic:
        mnemonic, cond_name = mnemonic.split(".", 1)
        cond = _CONDS_BY_NAME.get(cond_name)
        if cond is None:
            raise IRValidationError(f"bad condition {cond_name!r} in {line!r}")
    opcode = _OPCODES_BY_NAME.get(mnemonic)
    if opcode is None:
        raise IRValidationError(f"unknown opcode {mnemonic!r}")

    callee: Optional[str] = None
    if opcode is Opcode.CALL:
        call_tokens = rest.split(None, 1)
        callee = call_tokens[0] if call_tokens else None
        rest = call_tokens[1] if len(call_tokens) > 1 else ""

    srcs = []
    if rest.strip():
        srcs = [_parse_operand(t.strip()) for t in rest.split(",")]

    op = cfg.new_op(opcode, dests=dests, srcs=srcs, guard=guard,
                    cond=cond, callee=callee)
    op.speculative = speculative
    for reg in dests:
        function.regs.reserve(reg)
    for reg in op.used_registers():
        function.regs.reserve(reg)
    if target_label is not None:
        # Record the label; resolved to a real block id after all blocks of
        # the function exist (see _resolve_targets).
        op.target = target_label  # type: ignore[assignment]
    block.ops.append(op)
    cfg.bump_version()


def _resolve_targets(function: Function, labels: Dict[str, BasicBlock]) -> None:
    for block in function.cfg.blocks():
        for op in block.ops:
            if isinstance(op.target, str):
                dest = labels.get(op.target)
                if dest is None:
                    raise IRValidationError(
                        f"branch to unknown label {op.target!r}"
                    )
                op.target = dest.bid


def parse_program(text: str) -> Program:
    """Parse a whole program dump back into IR."""
    program: Optional[Program] = None
    function: Optional[Function] = None
    labels: Dict[str, BasicBlock] = {}
    pending_edges: List[Tuple[str, str, str, Optional[str], float]] = []

    def finish_function() -> None:
        nonlocal function
        if function is None:
            return
        _resolve_targets(function, labels)
        for src_label, dst_label, kind_text, case_text, weight in pending_edges:
            src = labels[src_label]
            dst = labels[dst_label]
            if kind_text.startswith("case"):
                kind = EdgeKind.CASE
                case_value: Optional[int] = int(case_text)  # type: ignore[arg-type]
            else:
                kind = EdgeKind(kind_text)
                case_value = None
            function.cfg.add_edge(src, dst, kind, case_value=case_value,
                                  weight=weight)
        pending_edges.clear()
        labels.clear()
        function = None

    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith(";"):
            continue

        if line.startswith("program "):
            entry = line.split("entry=", 1)[1].strip()
            program = Program(entry=entry)
            continue

        if program is None:
            raise IRValidationError("missing 'program' header line")

        global_match = _GLOBAL_RE.match(line)
        if global_match:
            name, size, init_text = global_match.groups()
            initial = None
            if init_text:
                initial = [
                    float(v) if "." in v else int(v)
                    for v in (t.strip() for t in init_text.split(","))
                    if v
                ]
            program.add_global(name, size=int(size), initial=initial)
            continue

        func_match = _FUNC_RE.match(line)
        if func_match:
            finish_function()
            name, params_text = func_match.groups()
            params = [
                _parse_register(t.strip())
                for t in params_text.split(",")
                if t.strip()
            ]
            function = program.new_function(name, params)
            continue

        if line == "}":
            finish_function()
            continue

        if function is None:
            raise IRValidationError(f"line outside any function: {line!r}")

        block_match = _BLOCK_RE.match(line)
        if block_match:
            label, weight, entry_flag = block_match.groups()
            block = function.cfg.new_block(name=label)
            block.weight = float(weight)
            labels[label] = block
            if entry_flag:
                function.cfg.set_entry(block)
            continue

        edge_match = _EDGE_RE.match(line)
        if edge_match:
            src_label, dst_label, kind_text, case_text, weight = edge_match.groups()
            pending_edges.append(
                (src_label, dst_label, kind_text, case_text, float(weight))
            )
            continue

        _parse_operation(function, line, labels)

    finish_function()
    if program is None:
        raise IRValidationError("empty IR text")
    return program
