"""Dominator analysis.

Dominator parallelism (Section 4 of the paper) relies on the fact that in a
treegion every block dominates all blocks below it; the general CFG
dominator tree computed here is used by the verifier, by tests asserting
that property, and by the scheduler's de-speculation step.

The implementation is the classic Cooper–Harvey–Kennedy iterative algorithm
over reverse postorder, which is simple and fast enough for the CFG sizes
this library handles.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ir.cfg import CFG, BasicBlock


class DominatorTree:
    """Immediate-dominator map for a CFG, computed on construction."""

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        self._idom: Dict[int, Optional[int]] = {}
        self._order_index: Dict[int, int] = {}
        self._compute()

    def _compute(self) -> None:
        entry = self.cfg.entry
        if entry is None:
            return
        rpo = [b for b in self.cfg.reverse_postorder() if self._reachable(b)]
        self._order_index = {b.bid: i for i, b in enumerate(rpo)}
        idom: Dict[int, Optional[int]] = {entry.bid: entry.bid}
        changed = True
        while changed:
            changed = False
            for block in rpo:
                if block is entry:
                    continue
                new_idom: Optional[int] = None
                for pred in block.predecessors:
                    if pred.bid in idom:
                        if new_idom is None:
                            new_idom = pred.bid
                        else:
                            new_idom = self._intersect(idom, new_idom, pred.bid)
                if new_idom is not None and idom.get(block.bid) != new_idom:
                    idom[block.bid] = new_idom
                    changed = True
        idom[entry.bid] = None  # the entry has no immediate dominator
        self._idom = idom

    def _reachable(self, block: BasicBlock) -> bool:
        # reverse_postorder appends unreachable blocks at the end; detect
        # them as blocks with no path from entry (no in-edges and not entry).
        # A cheap over-approximation is fine for dominators: do a real
        # reachability walk once.
        if not hasattr(self, "_reach_set"):
            reach = set()
            stack = [self.cfg.entry]
            while stack:
                b = stack.pop()
                if b.bid in reach:
                    continue
                reach.add(b.bid)
                stack.extend(b.successors)
            self._reach_set = reach
        return block.bid in self._reach_set

    def _intersect(self, idom: Dict[int, Optional[int]], a: int, b: int) -> int:
        index = self._order_index
        while a != b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    # ------------------------------------------------------------------

    def idom(self, block: BasicBlock) -> Optional[BasicBlock]:
        """The immediate dominator of ``block`` (None for the entry)."""
        parent = self._idom.get(block.bid)
        if parent is None:
            return None
        return self.cfg.block(parent)

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if ``a`` dominates ``b`` (reflexive)."""
        if a.bid not in self._idom or b.bid not in self._idom:
            return False
        current: Optional[int] = b.bid
        while current is not None:
            if current == a.bid:
                return True
            current = self._idom.get(current)
        return False

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates(a, b)

    def dominated_by(self, block: BasicBlock) -> List[BasicBlock]:
        """All blocks dominated by ``block`` (reflexive), in id order."""
        return [b for b in self.cfg.blocks() if self.dominates(block, b)]
