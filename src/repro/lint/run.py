"""Lint drivers over whole programs.

:func:`lint_ir` runs the IR rule family; :func:`lint_schedules` drives
the genuine scheduling pipeline under a :func:`~repro.lint.collect.
lint_scope` so the scheduler's own certifier hook produces the
diagnostics (the lint runner never re-implements scheduling — it
certifies exactly what the pipeline built); :func:`lint_program` is the
facade combining both, behind ``repro.api.lint_program`` and the
``repro lint`` CLI.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.clone import clone_program
from repro.ir.function import Program
from repro.lint.collect import lint_scope
from repro.lint.diagnostics import LintReport
from repro.lint.ir_rules import lint_program_ir


def lint_ir(program: Program,
            report: Optional[LintReport] = None) -> LintReport:
    """Run the IR rule family over ``program``."""
    return lint_program_ir(program, report)


def lint_schedules(
    program: Program,
    scheme,
    machine,
    options=None,
    report: Optional[LintReport] = None,
) -> LintReport:
    """Schedule every function of ``program`` and certify the result.

    Mirrors :func:`repro.vliw.simulator.schedule_program` function by
    function, but opens a lint scope per function so each diagnostic
    carries the function it came from.  The schedules themselves are
    produced by the ordinary pipeline; the certifier inside
    ``schedule_region`` sees the open scope and reports into it.
    """
    from repro.schedule.scheduler import ScheduleOptions, schedule_partition

    report = report if report is not None else LintReport()
    options = options or ScheduleOptions()
    worked = clone_program(program) if scheme.mutates else program
    for function in worked.functions():
        with lint_scope(report, function=function.name):
            partition = scheme.form(function.cfg)
            schedule_partition(partition, machine, options)
    return report


def lint_program(
    program: Program,
    schedule: bool = False,
    scheme=None,
    machine=None,
    options=None,
) -> LintReport:
    """Lint a program: IR rules, plus schedule certification on request.

    ``scheme`` / ``machine`` accept the same spec strings or objects as
    :mod:`repro.api` and default to ``treegion`` on the ``8U`` machine.
    Schedule certification is skipped when the IR rules already found
    errors — scheduling a structurally broken program would raise (or
    certify garbage) rather than add signal.
    """
    report = lint_ir(program)
    if not schedule:
        return report
    if not report.ok:
        return report
    from repro.api import machine as resolve_machine
    from repro.api import make_scheme

    scheme = make_scheme(scheme if scheme is not None else "treegion")
    machine = resolve_machine(machine if machine is not None else "8U")
    return lint_schedules(program, scheme, machine, options=options,
                          report=report)
