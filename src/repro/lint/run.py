"""Lint drivers over whole programs.

:func:`lint_ir` runs the IR rule family; :func:`lint_schedules` drives
the genuine scheduling pipeline under a :func:`~repro.lint.collect.
lint_scope` so the scheduler's own certifier hook produces the
diagnostics (the lint runner never re-implements scheduling — it
certifies exactly what the pipeline built); :func:`lint_program` is the
facade combining both, behind ``repro.api.lint_program`` and the
``repro lint`` CLI.  :func:`lint_many` fans a batch of programs out
over a worker pool the same way the evaluation engine does — each
program crosses the process boundary as printed IR text, and the
workers' diagnostics and ``lint.*`` counters are merged back in input
order, so the parallel path is output-identical to the serial loop.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.ir.clone import clone_program
from repro.ir.function import Program
from repro.lint.collect import lint_scope
from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.lint.ir_rules import lint_program_ir


def lint_ir(program: Program,
            report: Optional[LintReport] = None) -> LintReport:
    """Run the IR rule family over ``program``."""
    return lint_program_ir(program, report)


def lint_schedules(
    program: Program,
    scheme,
    machine,
    options=None,
    report: Optional[LintReport] = None,
) -> LintReport:
    """Schedule every function of ``program`` and certify the result.

    Mirrors :func:`repro.vliw.simulator.schedule_program` function by
    function, but opens a lint scope per function so each diagnostic
    carries the function it came from.  The schedules themselves are
    produced by the ordinary pipeline; the certifier inside
    ``schedule_region`` sees the open scope and reports into it.
    """
    from repro.schedule.scheduler import ScheduleOptions, schedule_partition

    report = report if report is not None else LintReport()
    options = options or ScheduleOptions()
    worked = clone_program(program) if scheme.mutates else program
    for function in worked.functions():
        with lint_scope(report, function=function.name):
            partition = scheme.form(function.cfg)
            schedule_partition(partition, machine, options)
    return report


def lint_program(
    program: Program,
    schedule: bool = False,
    scheme=None,
    machine=None,
    options=None,
) -> LintReport:
    """Lint a program: IR rules, plus schedule certification on request.

    ``scheme`` / ``machine`` accept the same spec strings or objects as
    :mod:`repro.api` and default to ``treegion`` on the ``8U`` machine.
    Schedule certification is skipped when the IR rules already found
    errors — scheduling a structurally broken program would raise (or
    certify garbage) rather than add signal.
    """
    report = lint_ir(program)
    if not schedule:
        return report
    if not report.ok:
        return report
    from repro.api import machine as resolve_machine
    from repro.api import make_scheme

    scheme = make_scheme(scheme if scheme is not None else "treegion")
    machine = resolve_machine(machine if machine is not None else "8U")
    return lint_schedules(program, scheme, machine, options=options,
                          report=report)


# ----------------------------------------------------------------------
# Parallel batch linting (the ``repro lint --corpus`` hot path)

#: One picklable work item: (label, printed IR text, schedule?,
#: scheme spec, machine name, heuristic, dominator_parallelism).
_LintTask = Tuple[str, str, bool, str, str, str, bool]


def _lint_worker(task: _LintTask):
    """Pool worker: re-parse one program and lint it.

    Returns ``(label, [diagnostic dicts], metrics snapshot)``.  Op uids
    are process-local (the printed IR carries none, so the re-parsed
    program mints fresh ones); each payload therefore also carries the
    op's *position* in its block (``op_pos``), which the parent maps
    back to the caller's uids — positions survive the round trip, uids
    do not.  Ops not in any block (synthesized exit/copy ops a schedule
    rule might reference) get ``op_pos=None`` and keep the worker uid.
    """
    from repro.ir.parser import parse_program
    from repro.obs.metrics import MetricsRegistry, metrics_scope
    from repro.schedule.scheduler import ScheduleOptions

    label, text, schedule, scheme, machine, heuristic, dp = task
    program = parse_program(text)
    metrics = MetricsRegistry()
    with metrics_scope(metrics):
        report = lint_program(
            program, schedule=schedule, scheme=_build_scheme(scheme),
            machine=_build_machine(machine),
            options=ScheduleOptions(heuristic=heuristic,
                                    dominator_parallelism=dp),
        )
    positions = {}
    for function in program.functions():
        for block in function.cfg.blocks():
            for pos, op in enumerate(block.ops):
                positions[(function.name, block.bid, op.uid)] = pos
    payloads = []
    for diagnostic in report.diagnostics:
        payload = diagnostic.to_json()
        payload["op_pos"] = (
            positions.get((diagnostic.function, diagnostic.block,
                           diagnostic.op))
            if diagnostic.op is not None else None
        )
        payloads.append(payload)
    return (label, payloads, metrics.snapshot())


def _build_scheme(spec: str):
    from repro.api import make_scheme

    return make_scheme(spec)


def _build_machine(name: str):
    from repro.api import machine

    return machine(name)


def _diagnostic_from_json(payload: dict, program: Program) -> Diagnostic:
    op = payload["op"]
    if payload.get("op_pos") is not None:
        # Restore the caller's op uid from the position-in-block the
        # worker recorded (worker-side uids are process-local).
        try:
            function = program.function(payload["function"])
            block = next(b for b in function.cfg.blocks()
                         if b.bid == payload["block"])
            op = block.ops[payload["op_pos"]].uid
        except (KeyError, StopIteration, IndexError):
            pass  # structure changed under us; keep the worker uid
    return Diagnostic(
        rule=payload["rule"],
        severity=Severity.parse(payload["severity"]),
        message=payload["message"],
        function=payload["function"],
        block=payload["block"],
        op=op,
        hint=payload["hint"],
    )


def lint_many(
    targets: Sequence[Tuple[str, Program]],
    *,
    schedule: bool = False,
    scheme: str = "treegion",
    machine: str = "8U",
    heuristic: str = "global_weight",
    dominator_parallelism: bool = True,
    jobs: int = 1,
    metrics=None,
    progress=None,
) -> List[Tuple[str, LintReport]]:
    """Lint a batch of labelled programs, optionally over a worker pool.

    ``jobs > 1`` fans the batch out over a ``multiprocessing.Pool``;
    each program ships as printed IR text (profile weights round-trip
    through the printer, so schedule certification sees the same
    regions).  Results come back in input order regardless of worker
    completion order.  ``metrics`` (a ``MetricsRegistry``) receives the
    merged per-worker ``lint.*`` counters; ``progress`` is called as
    ``progress(label, report)`` as each result lands.
    """
    from repro.schedule.scheduler import ScheduleOptions

    targets = list(targets)
    if jobs <= 1 or len(targets) <= 1:
        from repro.obs.metrics import NULL_METRICS, metrics_scope

        out: List[Tuple[str, LintReport]] = []
        with metrics_scope(metrics if metrics is not None
                           else NULL_METRICS):
            for label, program in targets:
                report = lint_program(
                    program, schedule=schedule,
                    scheme=_build_scheme(scheme),
                    machine=_build_machine(machine),
                    options=ScheduleOptions(
                        heuristic=heuristic,
                        dominator_parallelism=dominator_parallelism,
                    ),
                )
                out.append((label, report))
                if progress is not None:
                    progress(label, report)
        return out

    import multiprocessing

    from repro.ir.printer import format_program

    tasks: List[_LintTask] = [
        (label, format_program(program), schedule, scheme, machine,
         heuristic, dominator_parallelism)
        for label, program in targets
    ]
    programs = dict(targets)
    by_label = {}
    with multiprocessing.Pool(processes=jobs) as pool:
        for label, diagnostics, snapshot in \
                pool.imap_unordered(_lint_worker, tasks):
            report = LintReport()
            for payload in diagnostics:
                report.add(_diagnostic_from_json(payload,
                                                 programs[label]))
            by_label[label] = report
            if metrics is not None:
                metrics.merge_snapshot(snapshot)
            if progress is not None:
                progress(label, report)
    return [(label, by_label[label]) for label, _ in targets]
