"""Diagnostic value types for the static-analysis subsystem.

A :class:`Diagnostic` is one rule violation: which rule fired, how bad it
is, where in the program it points (function / block / op uid), a human
message, and an optional fix hint.  A :class:`LintReport` is an ordered
collection of diagnostics with the aggregation the CLI, the scheduler
certifier, and the validation oracle all need: per-rule counts, severity
filters, and text/JSON rendering.

These types are deliberately leaf-level — they import nothing from the
IR or scheduling packages, so every layer of the pipeline (including
``repro.ir.verify``, which the IR package imports at module load) can
depend on them without import cycles.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional


class Severity(enum.Enum):
    """How serious a diagnostic is.

    ``ERROR`` means the invariant the rule encodes is violated and the
    program/schedule is wrong; ``WARNING`` means the construct is
    suspicious but has defined behaviour; ``INFO`` is advisory.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]

    def at_least(self, other: "Severity") -> bool:
        """True when this severity is as bad as ``other`` or worse."""
        return self.rank >= other.rank

    @classmethod
    def parse(cls, text: str) -> "Severity":
        for severity in cls:
            if severity.value == text:
                return severity
        raise ValueError(
            f"unknown severity {text!r}; use one of "
            f"{[s.value for s in cls]}"
        )


_SEVERITY_RANK = {Severity.INFO: 0, Severity.WARNING: 1, Severity.ERROR: 2}


@dataclass(frozen=True)
class Diagnostic:
    """One rule violation at one program location."""

    #: Rule id, e.g. ``ir.op-shape`` or ``sched.latency``.
    rule: str
    severity: Severity
    message: str
    #: Enclosing function name, when known.
    function: Optional[str] = None
    #: Basic block id the violation anchors to.
    block: Optional[int] = None
    #: Operation uid the violation anchors to.
    op: Optional[int] = None
    #: Optional suggestion for fixing the violation.
    hint: Optional[str] = None

    @property
    def location(self) -> str:
        """``fn/bb3/op7``-style location string (parts present only when
        known; empty string for a program-level diagnostic)."""
        parts: List[str] = []
        if self.function is not None:
            parts.append(self.function)
        if self.block is not None:
            parts.append(f"bb{self.block}")
        if self.op is not None:
            parts.append(f"op{self.op}")
        return "/".join(parts)

    def format(self) -> str:
        location = self.location
        where = f" {location}" if location else ""
        text = f"{self.severity.value} [{self.rule}]{where}: {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "location": self.location,
            "function": self.function,
            "block": self.block,
            "op": self.op,
            "message": self.message,
            "hint": self.hint,
        }


class LintReport:
    """An ordered collection of diagnostics from one lint run."""

    def __init__(self) -> None:
        self.diagnostics: List[Diagnostic] = []

    # ------------------------------------------------------------------

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    # ------------------------------------------------------------------

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when the report carries no errors (warnings allowed)."""
        return not self.errors

    def at_or_above(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity.at_least(severity)]

    def rule_ids(self) -> List[str]:
        """Distinct rule ids present, in first-occurrence order."""
        seen: Dict[str, None] = {}
        for diagnostic in self.diagnostics:
            seen.setdefault(diagnostic.rule, None)
        return list(seen)

    def counts(self) -> Dict[str, int]:
        """Diagnostics per rule id, sorted by rule id."""
        counts: Dict[str, int] = {}
        for diagnostic in self.diagnostics:
            counts[diagnostic.rule] = counts.get(diagnostic.rule, 0) + 1
        return {rule: counts[rule] for rule in sorted(counts)}

    # ------------------------------------------------------------------

    def to_json(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "counts": self.counts(),
            "diagnostics": [d.to_json() for d in self.diagnostics],
        }

    def format(self, fmt: str = "text") -> str:
        """Render the report; ``fmt`` is ``text`` or ``json``."""
        if fmt == "json":
            return json.dumps(self.to_json(), indent=2)
        if fmt != "text":
            raise ValueError(f"unknown lint format {fmt!r}")
        if not self.diagnostics:
            return "clean: no diagnostics"
        lines = [d.format() for d in self.diagnostics]
        lines.append(
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"<LintReport errors={len(self.errors)} "
                f"warnings={len(self.warnings)}>")
