"""The active diagnostic collector, mirroring ``repro.obs.metrics``.

The schedule certifier lives inside :func:`repro.schedule.scheduler.
schedule_region`, where the scheduling problem and pre-scheduling DDG
still exist — but the callers that want its diagnostics (the lint runner,
the validation oracle) sit several layers up, behind signatures that do
not thread a report through.  Exactly like ``metrics_scope`` /
``current_metrics``, callers install a :class:`LintReport` with
:func:`lint_scope` and the certifier appends to the innermost active one;
with no scope installed (and ``ScheduleOptions.certify`` off) the
certifier does not run at all, so the default pipeline pays one list
lookup per region.

The scope also carries the enclosing function name so schedule
diagnostics can say *where* — ``schedule_region`` has no function in
hand (regions only know their CFG).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import List, Optional, Tuple

from repro.lint.diagnostics import LintReport

_ACTIVE: List[Tuple[LintReport, Optional[str]]] = []


def current_collector() -> Optional[LintReport]:
    """The innermost active lint report, or None when no scope is open."""
    return _ACTIVE[-1][0] if _ACTIVE else None


def current_function() -> Optional[str]:
    """The function name the innermost scope was opened for, if any."""
    return _ACTIVE[-1][1] if _ACTIVE else None


@contextmanager
def lint_scope(report: LintReport, function: Optional[str] = None):
    """Collect certifier diagnostics into ``report`` for the duration.

    Scopes nest; the innermost wins (matching ``metrics_scope``).
    """
    _ACTIVE.append((report, function))
    try:
        yield report
    finally:
        _ACTIVE.pop()
