"""Static analysis for IR and schedules (``repro lint``).

Two rule families over one :class:`Diagnostic`/:class:`LintReport`
vocabulary:

* **IR rules** (``ir.*``) re-express the structural checks of
  :mod:`repro.ir.verify` — and extend them with duplicate-label,
  dominating-guard, and use-before-def analyses — collecting *every*
  violation with function/block/op locations instead of raising on the
  first.
* **Schedule rules** (``sched.*``) statically certify scheduler output
  against the machine model and the pre-scheduling DDG: issue width,
  latencies, speculation safety, renaming correctness, exit retirement,
  treegion shape, and dominator-parallelism merge legality.

This package root stays import-light (the scheduler imports
:mod:`repro.lint.collect` on every pipeline run); the program-level
drivers load lazily on first attribute access.
"""

from repro.lint.collect import current_collector, current_function, lint_scope
from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.lint.registry import Rule, all_rules, get_rule, rules_for

__all__ = [
    "Diagnostic",
    "LintReport",
    "Severity",
    "Rule",
    "all_rules",
    "get_rule",
    "rules_for",
    "current_collector",
    "current_function",
    "lint_scope",
    "lint_ir",
    "lint_schedules",
    "lint_program",
    "check_schedule",
]

_LAZY = {
    "lint_ir": "repro.lint.run",
    "lint_schedules": "repro.lint.run",
    "lint_program": "repro.lint.run",
    "check_schedule": "repro.lint.schedule_rules",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.lint' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
