"""Schedule-family lint rules: the static legality certifier.

Each rule certifies one invariant the paper's correctness argument rests
on, checked against the machine model and the *pre-scheduling* DDG — the
same inputs the scheduler consumed, re-examined independently after the
fact.  Where possible a rule re-derives its requirement from first
principles instead of trusting scheduler bookkeeping (``sched.exit-retire``
walks the region tree itself rather than replaying DDG exit edges), so a
bug in the shared machinery cannot hide from its own certifier.

All rules take a :class:`ScheduleContext` (the scheduling problem, DDG,
resulting schedule, machine, and liveness) and an emitter; they are
registered in :mod:`repro.lint.registry` under the ``schedule`` family and
driven by :func:`check_schedule`, which the scheduler's opt-in certifier
hook and the lint runner both call.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.ir.liveness import LivenessInfo
from repro.ir.registers import Register
from repro.ir.types import Opcode
from repro.machine.model import MachineModel
from repro.regions.region import RegionExit
from repro.schedule.ddg import DDG, _live_at_exit
from repro.schedule.prep import ScheduleProblem
from repro.schedule.renaming import _DEFINES_WHEN_SQUASHED
from repro.schedule.schedule import RegionSchedule, SchedOp
from repro.lint.collect import current_function
from repro.lint.diagnostics import LintReport, Severity
from repro.lint.registry import make_emitter, rules_for, schedule_rule


class ScheduleContext:
    """Everything the schedule rules need to certify one region schedule."""

    def __init__(
        self,
        problem: ScheduleProblem,
        ddg: DDG,
        schedule: RegionSchedule,
        machine: Optional[MachineModel] = None,
        liveness: Optional[LivenessInfo] = None,
    ):
        self.problem = problem
        self.ddg = ddg
        self.schedule = schedule
        self.machine = machine if machine is not None else problem.machine
        self.liveness = liveness
        self.region = problem.region
        #: Retire cycle per region exit (by identity), from the schedule's
        #: exit records.  Exits with no (or several) records are flagged by
        #: ``sched.exit-retire``; other rules simply skip them.
        self.exit_cycles: Dict[int, int] = {}
        for record in schedule.exits:
            self.exit_cycles.setdefault(id(record.exit), record.cycle)
        self._live_cache: Dict[int, Tuple[Register, ...]] = {}
        self._path_defs_cache: Dict[int, Dict[Register, SchedOp]] = {}

    # ------------------------------------------------------------------

    def eff(self, sop: SchedOp) -> Optional[int]:
        """The op's effective issue cycle (following merges)."""
        return sop.effective_cycle

    def live_at_exit(self, exit: RegionExit) -> Tuple[Register, ...]:
        """Post-renaming registers the exit must publish (cached)."""
        key = id(exit)
        if key not in self._live_cache:
            self._live_cache[key] = _live_at_exit(
                exit, self.liveness, self.schedule.copies
            )
        return self._live_cache[key]

    def exit_cycle(self, exit: RegionExit) -> Optional[int]:
        return self.exit_cycles.get(id(exit))

    def survivor_dests(self, sop: SchedOp) -> List[Register]:
        """The registers whose writes stand in for ``sop``'s.

        A merged op never executes; its consumers were rewired to the
        surviving duplicate's destinations, so for dataflow purposes the
        merge contributes the survivor's names at the survivor's cycle.
        """
        if sop.merged_into is None:
            return list(sop.op.dests)
        return list(sop.merged_into.op.dests)

    def path_producers(self, exit: RegionExit) -> Dict[Register, SchedOp]:
        """Last writer of each register along root -> ``exit.source``.

        The op that executes on the exit's behalf: a merged path op maps
        to its surviving duplicate (and to the survivor's destination
        names) — dominator parallelism makes the survivor the value's
        producer for every path its duplicate sat on.
        """
        key = id(exit)
        cached = self._path_defs_cache.get(key)
        if cached is not None:
            return cached
        producers: Dict[Register, SchedOp] = {}
        for block in self.region.path_to(exit.source):
            for sop in self.problem.by_block[block.bid]:
                if sop.is_exit:
                    continue
                provider = sop.merged_into if sop.merged_into is not None \
                    else sop
                for reg in self.survivor_dests(sop):
                    producers[reg] = provider
        self._path_defs_cache[key] = producers
        return producers


# ----------------------------------------------------------------------
# Machine resource rules


@schedule_rule("sched.issue-width", severity=Severity.ERROR,
               summary="no MultiOp exceeds the machine's issue width",
               invariant="a K-wide Playdoh machine issues at most K ops "
                         "per cycle (paper Section 5 machine models)")
def _check_issue_width(ctx: ScheduleContext, emit) -> None:
    width = ctx.machine.issue_width
    for cycle, multiop in ctx.schedule.iter_bundles():
        if len(multiop) > width:
            emit(f"cycle {cycle} issues {len(multiop)} ops on a "
                 f"{width}-wide machine",
                 block=ctx.region.root.bid,
                 hint="the list scheduler's resource table was bypassed")


@schedule_rule("sched.resource", severity=Severity.ERROR,
               summary="per-cycle memory/branch class caps are respected",
               invariant="restricted machine models cap memory ports and "
                         "branch units per cycle")
def _check_resources(ctx: ScheduleContext, emit) -> None:
    mem_cap = ctx.machine.max_memory_per_cycle
    br_cap = ctx.machine.max_branches_per_cycle
    if mem_cap is None and br_cap is None:
        return
    for cycle, multiop in ctx.schedule.iter_bundles():
        memory = sum(1 for sop in multiop if sop.op.is_memory)
        branches = sum(1 for sop in multiop if sop.op.is_branch)
        if mem_cap is not None and memory > mem_cap:
            emit(f"cycle {cycle} issues {memory} memory ops "
                 f"(cap {mem_cap})", block=ctx.region.root.bid)
        if br_cap is not None and branches > br_cap:
            emit(f"cycle {cycle} issues {branches} branch ops "
                 f"(cap {br_cap})", block=ctx.region.root.bid)


@schedule_rule("sched.pressure-exceeds-class", severity=Severity.WARNING,
               summary="estimated register pressure fits the machine's "
                       "per-class register files",
               invariant="pressure is a clique in the interference graph: "
                         "a region whose peak simultaneously-live count "
                         "exceeds the file size cannot be allocated "
                         "without spills the schedule does not model")
def _check_pressure(ctx: ScheduleContext, emit) -> None:
    caps = ctx.machine.registers_per_class
    if not caps or ctx.liveness is None:
        return  # paper presets: unbounded files, rule disarmed
    from repro.analysis.liveranges import block_peak_pressure

    for block in ctx.region:
        peak = block_peak_pressure(block, ctx.liveness.live_out(block))
        for rclass, cap in caps.items():
            count = peak.get(rclass, 0)
            if count > cap:
                emit(f"bb{block.bid} keeps {count} {rclass.value} "
                     f"registers simultaneously live "
                     f"(file holds {cap})",
                     block=block.bid,
                     hint="any allocation of this region spills; "
                          "pressure is pre-renaming, so the scheduled "
                          "demand is at least this high")


# ----------------------------------------------------------------------
# Dependence rules


@schedule_rule("sched.latency", severity=Severity.ERROR,
               summary="every DDG edge's latency is respected",
               invariant="a consumer may not issue before its producer's "
                         "result is available (flow/anti/output/memory/"
                         "exit dependences)")
def _check_latency(ctx: ScheduleContext, emit) -> None:
    ops = ctx.problem.sched_ops
    for src_index, edges in enumerate(ctx.ddg.succs):
        src = ops[src_index]
        if src.merged_into is not None:
            continue  # eliminated: anti/output edges on it are moot
        src_cycle = src.cycle
        if src_cycle is None:
            continue  # sched.placement reports unplaced ops
        for dst_index, latency in edges:
            dst = ops[dst_index]
            if dst.merged_into is not None or dst.cycle is None:
                continue
            if src_cycle + latency > dst.cycle:
                emit(f"op at cycle {dst.cycle} depends on op at cycle "
                     f"{src_cycle} with latency {latency}",
                     block=dst.home.bid, op=dst.op.uid,
                     hint=f"earliest legal cycle is {src_cycle + latency}")


# ----------------------------------------------------------------------
# Speculation safety


@schedule_rule("sched.speculation", severity=Severity.ERROR,
               summary="only dismissible ops run unguarded off-path",
               invariant="speculated ops must be dismissible; stores, "
                         "calls, and branches may never execute on paths "
                         "where their home block is not reached (Section 3)")
def _check_speculation(ctx: ScheduleContext, emit) -> None:
    for sop in ctx.problem.sched_ops:
        if sop.is_exit or sop.merged_into is not None:
            continue
        guard = ctx.problem.guards.get(sop.home.bid)
        if guard is None:
            continue  # control provably reaches the home block
        if sop.op.guard is None and not sop.op.can_speculate:
            emit(f"{sop.op.opcode.value} from guarded block "
                 f"bb{sop.home.bid} runs unguarded",
                 block=sop.home.bid, op=sop.op.uid,
                 hint=f"guard it with {guard} or keep it out of the "
                      "speculative set")


# ----------------------------------------------------------------------
# Renaming correctness


@schedule_rule("sched.rename-clobber", severity=Severity.ERROR,
               summary="no committed write clobbers a value live on a "
                       "foreign tree path",
               invariant="renaming must prevent live-out violations: a "
                         "speculated def may not overwrite data used on "
                         "another exit from the branch (Section 3)")
def _check_rename_clobber(ctx: ScheduleContext, emit) -> None:
    root = ctx.region.root
    subtree_cache: Dict[int, Set[int]] = {}
    for sop in ctx.problem.sched_ops:
        if sop.is_exit or sop.merged_into is not None:
            continue
        if sop.home is root:
            continue  # root writes are original program semantics
        committing = (sop.op.guard is None
                      or sop.op.opcode in _DEFINES_WHEN_SQUASHED)
        if not committing or not sop.op.dests:
            continue
        cycle = ctx.eff(sop)
        if cycle is None:
            continue
        home_bid = sop.home.bid
        if home_bid not in subtree_cache:
            subtree_cache[home_bid] = {
                b.bid for b in ctx.region.subtree(sop.home)
            }
        subtree = subtree_cache[home_bid]
        for exit in ctx.problem.exits:
            if exit.source.bid in subtree:
                continue  # exits below the home observe the write legally
            exit_cycle = ctx.exit_cycle(exit)
            if exit_cycle is None or cycle > exit_cycle:
                continue  # the exit retires before this write commits
            live = ctx.live_at_exit(exit)
            for reg in sop.op.dests:
                if reg not in live:
                    continue
                if ctx.path_producers(exit).get(reg) is sop:
                    # This op IS the exit's producer of the value — it
                    # survived a dominator-parallelism merge with a
                    # duplicate on the exit's path, so the "foreign"
                    # write is exactly the write the exit wants.
                    continue
                emit(f"write of {reg} at cycle {cycle} clobbers a "
                     f"value live into the exit from bb{exit.source.bid} "
                     f"(retires cycle {exit_cycle})",
                     block=home_bid, op=sop.op.uid,
                     hint="renaming should have minted a fresh "
                          "destination for this def")


@schedule_rule("sched.exit-copy", severity=Severity.ERROR,
               summary="exit copies publish values that exist by the "
                       "exit's retire cycle",
               invariant="at each exit the renamed value is copied back to "
                         "its original name; the source must have been "
                         "computed on that path (Section 3 live-out repair)")
def _check_exit_copies(ctx: ScheduleContext, emit) -> None:
    for exit, original, renamed in ctx.schedule.copies:
        exit_cycle = ctx.exit_cycle(exit)
        if exit_cycle is None:
            continue  # sched.exit-retire reports the missing record
        defined = False
        for sop in ctx.problem.sched_ops:
            if sop.merged_into is not None:
                continue
            if renamed in sop.op.dests:
                cycle = sop.cycle
                if cycle is not None and cycle <= exit_cycle:
                    defined = True
                    break
        if not defined:
            emit(f"copy {original} <- {renamed} at the exit from "
                 f"bb{exit.source.bid} reads a register never defined "
                 f"by cycle {exit_cycle}",
                 block=exit.source.bid)


# ----------------------------------------------------------------------
# Exit retirement


@schedule_rule("sched.exit-retire", severity=Severity.ERROR,
               summary="each exit retires once, after everything its path "
                       "needs has issued",
               invariant="control may not leave the region before the "
                         "path's side effects and live-out values exist "
                         "(the paper's r6=5 boundary case: issuing *in* "
                         "the exit cycle is legal)")
def _check_exit_retire(ctx: ScheduleContext, emit) -> None:
    records: Dict[int, List[int]] = {}
    for record in ctx.schedule.exits:
        records.setdefault(id(record.exit), []).append(record.cycle)

    for exit in ctx.problem.exits:
        cycles = records.get(id(exit), [])
        if len(cycles) != 1:
            emit(f"exit from bb{exit.source.bid} has {len(cycles)} retire "
                 "records (expected exactly 1)", block=exit.source.bid)
            continue
        exit_cycle = cycles[0]
        exit_sop = ctx.problem.exit_op_for(exit)
        if exit_sop.cycle != exit_cycle:
            emit(f"exit record says cycle {exit_cycle} but the exit op "
                 f"issued at cycle {exit_sop.cycle}",
                 block=exit.source.bid, op=exit_sop.op.uid)
            continue

        # Re-derive the exit's requirements from the region tree itself
        # (independent of the DDG's exit edges): every side effect on the
        # root -> source path, and the last (survivor-mapped) write of
        # every live-out register, must issue by the retire cycle.
        for block in ctx.region.path_to(exit.source):
            for sop in ctx.problem.by_block[block.bid]:
                if sop.is_exit or sop.op.opcode not in (Opcode.ST,
                                                        Opcode.CALL):
                    continue
                cycle = ctx.eff(sop)
                if cycle is None or cycle > exit_cycle:
                    emit(f"{sop.op.opcode.value} on the exit path "
                         f"issues at cycle {cycle}, after the exit "
                         f"retires at cycle {exit_cycle}",
                         block=block.bid, op=sop.op.uid)
        producers = ctx.path_producers(exit)
        for reg in ctx.live_at_exit(exit):
            provider = producers.get(reg)
            cycle = None if provider is None else ctx.eff(provider)
            if cycle is not None and cycle > exit_cycle:
                emit(f"{reg} is live into the exit from "
                     f"bb{exit.source.bid} but its last write issues at "
                     f"cycle {cycle}, after the exit retires at cycle "
                     f"{exit_cycle}", block=exit.source.bid)


# ----------------------------------------------------------------------
# Region shape


@schedule_rule("sched.tree-shape", severity=Severity.ERROR,
               summary="the region is a single-entry tree with no side "
                       "entries",
               invariant="a treegion is a single-entry region whose blocks "
                         "form a tree in the CFG (Section 2 definition)")
def _check_tree_shape(ctx: ScheduleContext, emit) -> None:
    region = ctx.region
    if region.kind == "hyperblock":
        return  # hyperblocks are DAG regions; the tree invariant is N/A
    blocks = list(region)
    if not blocks:
        emit("region has no blocks")
        return
    if blocks[0] is not region.root:
        emit("region root is not the first member",
             block=region.root.bid)
    seen: Set[int] = set()
    for block in blocks:
        if block.bid in seen:
            emit(f"bb{block.bid} appears twice in the region",
                 block=block.bid)
        seen.add(block.bid)
    for block in blocks:
        if block is region.root:
            continue
        parent = region.parent(block)
        if parent is None or parent not in region:
            emit(f"bb{block.bid} has no tree parent inside the region",
                 block=block.bid)
            continue
        if not any(e.dst is block for e in parent.out_edges):
            emit(f"tree edge bb{parent.bid} -> bb{block.bid} has no "
                 "matching CFG edge", block=block.bid)
        for edge in block.in_edges:
            if edge.src is not parent:
                where = ("side entry" if edge.src not in region
                         else "second in-region entry")
                emit(f"bb{block.bid} has a {where} from bb{edge.src.bid}",
                     block=block.bid,
                     hint="region formation must stop at merge points")


# ----------------------------------------------------------------------
# Dominator parallelism


@schedule_rule("sched.merge", severity=Severity.ERROR,
               summary="dominator-parallelism merges eliminated only "
                       "provably redundant duplicates",
               invariant="a tail-duplicated op may be eliminated only when "
                         "a duplicate computing the same values is already "
                         "scheduled (Section 4)")
def _check_merges(ctx: ScheduleContext, emit) -> None:
    for sop in ctx.schedule.merged:
        survivor = sop.merged_into
        if survivor is None:
            emit("op recorded as merged has no survivor",
                 block=sop.home.bid, op=sop.op.uid)
            continue
        if survivor.cycle is None or survivor.merged_into is not None:
            emit("merge survivor is not itself placed",
                 block=sop.home.bid, op=sop.op.uid)
            continue
        if survivor.op.guard is not None or not survivor.op.can_speculate:
            emit("merge survivor is guarded or non-dismissible, so it "
                 "does not execute on every path",
                 block=survivor.home.bid, op=survivor.op.uid)
        if survivor.home is sop.home:
            emit("merged op and survivor share a home block (that is "
                 "CSE, not dominator parallelism)",
                 block=sop.home.bid, op=sop.op.uid)
        if (sop.source is None or survivor.source is None
                or sop.source.origin != survivor.source.origin):
            emit("merged op and survivor are not tail-duplication "
                 "clones of the same original op",
                 block=sop.home.bid, op=sop.op.uid)
        elif not survivor.op.same_computation(sop.op):
            emit("merged op and survivor compute different values",
                 block=sop.home.bid, op=sop.op.uid)
        if len(survivor.op.dests) != len(sop.op.dests):
            emit("merged op and survivor write different numbers of "
                 "registers", block=sop.home.bid, op=sop.op.uid)
            continue
        producers = ctx.ddg.producers
        for src in sop.op.srcs:
            if isinstance(src, Register):
                if (producers[sop.index].get(src)
                        != producers[survivor.index].get(src)):
                    emit(f"merged op reads {src} from a different "
                         "producer than the survivor",
                         block=sop.home.bid, op=sop.op.uid)
        if sop.op.is_load or survivor.op.is_load:
            if (ctx.ddg.mem_producers[sop.index]
                    != ctx.ddg.mem_producers[survivor.index]):
                emit("merged load observes a different memory state "
                     "than the survivor",
                     block=sop.home.bid, op=sop.op.uid)
        # The rewiring must be complete: nothing placed may still read
        # the eliminated op's old destinations.
        replacements = dict(zip(sop.op.dests, survivor.op.dests))
        stale = {old for old, new in replacements.items() if old != new}
        if not stale:
            continue
        for succ, _latency in ctx.ddg.succs[sop.index]:
            consumer = ctx.problem.sched_ops[succ]
            if consumer.merged_into is not None:
                continue
            for reg in stale:
                if reg in consumer.op.used_registers():
                    emit(f"consumer still reads {reg}, which the merge "
                         "eliminated", block=consumer.home.bid,
                         op=consumer.op.uid)
        for _exit, _original, renamed in ctx.schedule.copies:
            if renamed in stale:
                emit(f"exit copy still reads {renamed}, which the merge "
                     "eliminated", block=sop.home.bid, op=sop.op.uid)


# ----------------------------------------------------------------------
# Placement accounting


@schedule_rule("sched.placement", severity=Severity.ERROR,
               summary="every op is placed exactly once (or merged), and "
                       "bundle positions agree with op records",
               invariant="the MultiOp table and per-op (cycle, slot) "
                         "records are two views of one schedule")
def _check_placement(ctx: ScheduleContext, emit) -> None:
    in_bundles: Dict[int, Tuple[int, int]] = {}
    for cycle, multiop in ctx.schedule.iter_bundles():
        for slot, sop in enumerate(multiop):
            if sop.index in in_bundles:
                emit(f"op appears in two bundles (cycles "
                     f"{in_bundles[sop.index][0]} and {cycle})",
                     block=sop.home.bid, op=sop.op.uid)
                continue
            in_bundles[sop.index] = (cycle, slot)
            if sop.cycle != cycle or sop.slot != slot:
                emit(f"bundle says (cycle {cycle}, slot {slot}) but the "
                     f"op records (cycle {sop.cycle}, slot {sop.slot})",
                     block=sop.home.bid, op=sop.op.uid)

    merged_set = {sop.index for sop in ctx.schedule.merged}
    for sop in ctx.problem.sched_ops:
        if sop.merged_into is not None:
            if sop.index in in_bundles:
                emit("merged op still occupies a bundle slot",
                     block=sop.home.bid, op=sop.op.uid)
            if sop.index not in merged_set:
                emit("op is marked merged but missing from the "
                     "schedule's merge list",
                     block=sop.home.bid, op=sop.op.uid)
        elif sop.index not in in_bundles:
            emit("op was never placed in any bundle",
                 block=sop.home.bid, op=sop.op.uid)


# ----------------------------------------------------------------------
# Driver


def check_schedule(
    problem: ScheduleProblem,
    ddg: DDG,
    schedule: RegionSchedule,
    machine: Optional[MachineModel] = None,
    liveness: Optional[LivenessInfo] = None,
    function_name: Optional[str] = None,
    report: Optional[LintReport] = None,
) -> LintReport:
    """Run every schedule rule over one region schedule.

    ``function_name`` defaults to the active lint scope's function (set by
    the lint runner around ``schedule_program``), since regions do not
    know which function they came from.
    """
    if report is None:
        report = LintReport()
    if function_name is None:
        function_name = current_function()
    ctx = ScheduleContext(problem, ddg, schedule,
                          machine=machine, liveness=liveness)
    for rule in rules_for("schedule"):
        rule.check(ctx, make_emitter(rule, report, function_name))
    return report
