"""IR-family lint rules: the structural checks of ``repro.ir.verify``
re-expressed as diagnostics, plus the extensions the raising verifier
never had (duplicate labels, dominating guard definitions, liveness of
uses).

Unlike the verifier shim, every rule collects *all* of its violations:
a broken CFG produces one diagnostic per problem, each anchored to the
offending block/op, instead of one exception for the first.

The drivers at the bottom (:func:`lint_cfg`, :func:`lint_function`,
:func:`lint_program_ir`) are what ``repro.ir.verify`` and
``repro.lint.run`` call; they only import IR leaf modules, so the
verifier can reach them lazily without an import cycle through the
scheduling packages.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Set

from repro.ir.cfg import CFG, BasicBlock
from repro.ir.function import Function, Program
from repro.ir.registers import Register
from repro.ir.types import EdgeKind, Opcode, RegClass
from repro.lint.diagnostics import LintReport, Severity
from repro.lint.registry import (
    ir_rule,
    make_emitter,
    register_alias,
    rules_for,
)

#: Opcodes that write predicate registers; a guard must be defined by one
#: of these on every path to its use (Playdoh predication model).
PREDICATE_WRITERS = frozenset({
    Opcode.CMPP, Opcode.PAND, Opcode.PANDCN, Opcode.POR, Opcode.NINSET,
    Opcode.MOV, Opcode.COPY,
})

#: Labels in the parser's namespace — they resolve branch targets when a
#: textual program is read back, so they must be unique per function.
_PARSER_LABEL = re.compile(r"bb\d+")


# ----------------------------------------------------------------------
# CFG-scope rules


@ir_rule("ir.entry", scope="cfg", severity=Severity.ERROR,
         summary="CFG has an entry block",
         invariant="regions/schedules are rooted at a unique entry")
def _check_entry(cfg: CFG, emit) -> None:
    if cfg.entry is None:
        emit("CFG has no entry block",
             hint="call cfg.set_entry() after building the blocks")


@ir_rule("ir.terminator", scope="cfg", severity=Severity.ERROR,
         summary="terminators are last; edge kinds match the terminator",
         invariant="region formation reads control flow from edge kinds")
def _check_terminators(cfg: CFG, emit) -> None:
    for block in cfg.blocks():
        term = block.terminator
        kinds = [e.kind for e in block.out_edges]

        for op in block.ops[:-1]:
            if op.is_terminator:
                emit(f"terminator {op.opcode.value} is not the last op",
                     block=block.bid, op=op.uid)

        if term is None:
            if kinds != [EdgeKind.FALLTHROUGH]:
                emit("block without a terminator requires exactly one "
                     f"fallthrough edge, got {[k.value for k in kinds]}",
                     block=block.bid)
            continue

        if term.opcode is Opcode.RET:
            if block.out_edges:
                emit("RET block has out-edges", block=block.bid,
                     op=term.uid)
        elif term.opcode is Opcode.BRU:
            if kinds != [EdgeKind.TAKEN]:
                emit("BRU requires exactly one taken edge, got "
                     f"{[k.value for k in kinds]}",
                     block=block.bid, op=term.uid)
        elif term.opcode in (Opcode.BRCT, Opcode.BRCF):
            if sorted(k.value for k in kinds) != ["fallthrough", "taken"]:
                emit("conditional branch requires taken + fallthrough, "
                     f"got {[k.value for k in kinds]}",
                     block=block.bid, op=term.uid)
            pred_srcs = term.source_registers()
            if not pred_srcs or pred_srcs[0].rclass is not RegClass.PRED:
                emit("conditional branch must read a predicate",
                     block=block.bid, op=term.uid)
        elif term.opcode is Opcode.SWITCH:
            cases = [e for e in block.out_edges if e.kind is EdgeKind.CASE]
            defaults = [e for e in block.out_edges
                        if e.kind is EdgeKind.DEFAULT]
            others = [e for e in block.out_edges
                      if e.kind not in (EdgeKind.CASE, EdgeKind.DEFAULT)]
            if others or len(defaults) != 1 or not cases:
                emit("SWITCH requires case edges plus exactly one default",
                     block=block.bid, op=term.uid)
            values = [e.case_value for e in cases]
            if len(set(values)) != len(values):
                emit(f"duplicate switch case values {values}",
                     block=block.bid, op=term.uid)


@ir_rule("ir.branch-target", scope="cfg", severity=Severity.ERROR,
         summary="branch op targets agree with the taken edge",
         invariant="the simulator transfers control along edges, the "
                   "printer along op targets; they must agree")
def _check_branch_targets(cfg: CFG, emit) -> None:
    for block in cfg.blocks():
        term = block.terminator
        if term is None or term.opcode not in (Opcode.BRU, Opcode.BRCT,
                                               Opcode.BRCF):
            continue
        taken = block.taken_edge
        if taken is None or term.target != taken.dst.bid:
            emit(f"branch target bb{term.target} does not match the "
                 "taken edge", block=block.bid, op=term.uid)


@ir_rule("ir.edge-symmetry", scope="cfg", severity=Severity.ERROR,
         summary="edge lists are symmetric between blocks",
         invariant="every CFG walk (liveness, dominators, formation) "
                   "assumes in/out lists mirror each other")
def _check_edge_symmetry(cfg: CFG, emit) -> None:
    for block in cfg.blocks():
        for edge in block.out_edges:
            if edge.src is not block:
                emit(f"edge {edge!r} is in the wrong out list",
                     block=block.bid)
            elif edge not in edge.dst.in_edges:
                emit(f"edge to bb{edge.dst.bid} missing from the "
                     "destination's in list", block=block.bid)
        for edge in block.in_edges:
            if edge.dst is not block:
                emit(f"edge {edge!r} is in the wrong in list",
                     block=block.bid)
            elif edge not in edge.src.out_edges:
                emit(f"edge from bb{edge.src.bid} missing from the "
                     "source's out list", block=block.bid)


@ir_rule("ir.op-shape", scope="cfg", severity=Severity.ERROR,
         summary="op operand shapes and register classes are sane",
         invariant="Playdoh op forms: CMPP writes 1-2 predicates, PBR one "
                   "BTR, LD/ST fixed operand counts, guards are predicates")
def _check_op_shapes(cfg: CFG, emit) -> None:
    for block in cfg.blocks():
        for op in block.ops:
            if op.guard is not None and op.guard.rclass is not RegClass.PRED:
                emit(f"guard {op.guard} is not a predicate",
                     block=block.bid, op=op.uid)
            if op.opcode is Opcode.CMPP:
                if not (1 <= len(op.dests) <= 2):
                    emit(f"CMPP needs 1 or 2 dests, has {len(op.dests)}",
                         block=block.bid, op=op.uid)
                for dest in op.dests:
                    if dest.rclass is not RegClass.PRED:
                        emit(f"CMPP dest {dest} is not a predicate",
                             block=block.bid, op=op.uid)
                if op.cond is None:
                    emit("CMPP without a condition",
                         block=block.bid, op=op.uid)
            elif op.opcode is Opcode.PBR:
                if len(op.dests) != 1 or op.dests[0].rclass is not RegClass.BTR:
                    emit("PBR must write exactly one BTR",
                         block=block.bid, op=op.uid)
                if op.target is None:
                    emit("PBR without a target", block=block.bid, op=op.uid)
            elif op.opcode is Opcode.LD:
                if len(op.dests) != 1 or op.dests[0].rclass is not RegClass.GPR:
                    emit("LD must write exactly one GPR",
                         block=block.bid, op=op.uid)
                if len(op.srcs) != 2:
                    emit(f"LD needs base and offset, has {len(op.srcs)} "
                         "sources", block=block.bid, op=op.uid)
            elif op.opcode is Opcode.ST:
                if op.dests:
                    emit("ST has no destination", block=block.bid, op=op.uid)
                if len(op.srcs) != 3:
                    emit(f"ST needs base, offset, value, has {len(op.srcs)} "
                         "sources", block=block.bid, op=op.uid)
            elif op.opcode is Opcode.CALL:
                if op.callee is None:
                    emit("CALL without a callee", block=block.bid, op=op.uid)


@ir_rule("ir.unique-uid", scope="cfg", severity=Severity.ERROR,
         summary="op uids are unique within the function",
         invariant="DDG nodes and schedules refer to ops by uid; dumps "
                   "must be stable")
def _check_unique_uids(cfg: CFG, emit) -> None:
    seen: Dict[int, int] = {}
    for block in cfg.blocks():
        for op in block.ops:
            if op.uid in seen:
                emit(f"op uid {op.uid} already used in bb{seen[op.uid]}",
                     block=block.bid, op=op.uid)
            else:
                seen[op.uid] = block.bid


@ir_rule("ir.duplicate-label", scope="cfg", severity=Severity.ERROR,
         summary="identity-bearing block labels are unique",
         invariant="labels that encode identity — parser labels (bbN) and "
                   "tail-duplication clone names (*.dup) — must name one "
                   "block each; two clones sharing a label are "
                   "indistinguishable in dumps and dot output")
def _check_duplicate_labels(cfg: CFG, emit) -> None:
    # Purely decorative names (builder-chosen 'header'/'then'/...) may
    # repeat: blocks are keyed by bid everywhere.  Only labels that stand
    # in for identity must be unique.
    seen: Dict[str, int] = {}
    for block in cfg.blocks():
        name = block.name
        if not name or not (_PARSER_LABEL.fullmatch(name) or ".dup" in name):
            continue
        if name in seen:
            emit(f"label {name!r} already names bb{seen[name]}",
                 block=block.bid,
                 hint="tail-duplication clones must mint fresh names")
        else:
            seen[name] = block.bid


@ir_rule("ir.guard-def", scope="cfg", severity=Severity.ERROR,
         summary="guard predicates are defined by a dominating "
                 "predicate-writing op",
         invariant="a guarded op's predicate must be computed before any "
                   "path reaches the op (Playdoh predicated execution)")
def _check_guard_defs(cfg: CFG, emit) -> None:
    guarded = [(block, op) for block in cfg.blocks() for op in block.ops
               if op.guard is not None]
    if not guarded or cfg.entry is None:
        return
    from repro.ir.analysis_cache import dominators_of

    dominators = dominators_of(cfg)
    defs_by_block: Dict[int, Set[Register]] = {}
    for block in cfg.blocks():
        defined: Set[Register] = set()
        for op in block.ops:
            defined.update(op.dests)
        defs_by_block[block.bid] = defined
    for block, op in guarded:
        guard = op.guard
        earlier = False
        for candidate in block.ops:
            if candidate is op:
                break
            if guard in candidate.dests:
                earlier = True
        if earlier:
            continue
        dominated = any(
            guard in defs_by_block[other.bid]
            and dominators.strictly_dominates(other, block)
            for other in cfg.blocks()
        )
        if not dominated:
            emit(f"guard {guard} of {op.opcode.value} has no dominating "
                 "definition", block=block.bid, op=op.uid,
                 hint="define the predicate with a CMPP that dominates "
                      "every guarded use")


# ----------------------------------------------------------------------
# Function-scope rules


@ir_rule("ir.return", scope="function", severity=Severity.ERROR,
         summary="every function has a RET block",
         invariant="region exits include the function return; a function "
                   "that cannot return has no complete exit set")
def _check_return(function: Function, emit) -> None:
    for block in function.cfg.blocks():
        term = block.terminator
        if term is not None and term.opcode is Opcode.RET:
            return
    emit(f"function {function.name} has no return block")


#: Per-function cap on individually-anchored diagnostics for the
#: flow-sensitive rules; the remainder is folded into one summary line so
#: a degenerate function cannot flood a corpus report.
_FLOW_RULE_CAP = 10


@ir_rule("ir.uninit-use", scope="function", severity=Severity.WARNING,
         summary="no register is read before a definition reaches it "
                 "(must-uninit paths are errors, may-paths warnings)",
         invariant="renaming and exit copies reason about live values; a "
                   "use that UNINIT reaches reads an undefined register")
def _check_uninit_use(function: Function, emit) -> None:
    # Flow-sensitive successor of the old whole-function ``ir.use-def``
    # warning (that id is aliased to this rule): reaching definitions
    # classify every read, and must-uninit reads carry one offending
    # entry-to-use path in the hint.
    cfg = function.cfg
    if cfg.entry is None:
        return
    from repro.ir.analysis_cache import reaching_definitions_of

    reaching = reaching_definitions_of(function)
    uses = reaching.uninit_uses()
    overflow = {"must": 0, "may": 0}
    shown = 0
    for use in uses:
        if shown >= _FLOW_RULE_CAP:
            overflow[use.kind] += 1
            continue
        shown += 1
        path = reaching.def_free_path(use.reg, use.block)
        route = " -> ".join(path)
        if use.kind == "must":
            emit(f"{use.reg} is read by {use.op.opcode.value} but no "
                 "definition reaches it on any path",
                 block=use.block.bid, op=use.op.uid,
                 severity=Severity.ERROR,
                 hint=(f"every path avoids a definition; e.g. {route}"
                       if route else "define the register before use"))
        else:
            emit(f"{use.reg} may be read by {use.op.opcode.value} before "
                 "it is defined",
                 block=use.block.bid, op=use.op.uid,
                 severity=Severity.WARNING,
                 hint=(f"uninitialized along {route}" if route
                       else "some path avoids every definition"))
    if overflow["must"] or overflow["may"]:
        worst = (Severity.ERROR if overflow["must"]
                 else Severity.WARNING)
        emit(f"... {overflow['must']} more must-uninitialized and "
             f"{overflow['may']} more may-uninitialized read(s) "
             f"(first {_FLOW_RULE_CAP} shown)",
             block=cfg.entry.bid, severity=worst)


# ``ir.uninit-use`` subsumes the path-insensitive ``ir.use-def`` rule of
# earlier releases; the old id keeps resolving (``--fail-on``, saved
# JSON reports) through the registry alias table.
register_alias("ir.use-def", "ir.uninit-use")


@ir_rule("ir.dead-store", scope="function", severity=Severity.WARNING,
         summary="no op computes a value nothing ever reads",
         invariant="a side-effect-free op whose destinations are all dead "
                   "wastes an issue slot in every schedule containing it")
def _check_dead_store(function: Function, emit) -> None:
    from repro.ir.analysis_cache import live_ranges_of

    ranges = live_ranges_of(function.cfg)
    stores = ranges.dead_stores()
    for dead in stores[:_FLOW_RULE_CAP]:
        dests = ", ".join(str(reg) for reg in dead.op.dests)
        emit(f"{dests} = {dead.op.opcode.value} is never read",
             block=dead.block.bid, op=dead.op.uid,
             hint="delete the op or use its result")
    if len(stores) > _FLOW_RULE_CAP:
        emit(f"... {len(stores) - _FLOW_RULE_CAP} more dead store(s) "
             f"(first {_FLOW_RULE_CAP} shown)",
             block=stores[_FLOW_RULE_CAP].block.bid)


@ir_rule("ir.unreachable-block", scope="cfg", severity=Severity.WARNING,
         summary="every block is reachable along some executable path",
         invariant="unreachable blocks inflate code-expansion accounting "
                   "and schedule dead regions")
def _check_unreachable(cfg: CFG, emit) -> None:
    if cfg.entry is None:
        return
    from repro.ir.analysis_cache import reachability_of

    reach = reachability_of(cfg)
    dead = reach.unreachable_blocks()
    for block in dead[:_FLOW_RULE_CAP]:
        emit(f"bb{block.bid} is unreachable from the entry",
             block=block.bid,
             hint="no executable path reaches it (constant branches "
                  "considered); remove it or fix the branch")
    if len(dead) > _FLOW_RULE_CAP:
        emit(f"... {len(dead) - _FLOW_RULE_CAP} more unreachable "
             f"block(s) (first {_FLOW_RULE_CAP} shown)",
             block=dead[_FLOW_RULE_CAP].bid)


@ir_rule("ir.const-branch", scope="cfg", severity=Severity.WARNING,
         summary="no branch's outcome is decided at compile time",
         invariant="a constant branch is control flow the optimizer "
                   "should have folded; its dead arm pollutes region "
                   "formation")
def _check_const_branch(cfg: CFG, emit) -> None:
    if cfg.entry is None:
        return
    from repro.ir.analysis_cache import reachability_of

    reach = reachability_of(cfg)
    for decided in reach.const_branches:
        dead_targets = ", ".join(
            f"bb{edge.dst.bid}" for edge in decided.dead_edges
        )
        emit(f"{decided.op.opcode.value} in bb{decided.block.bid} is "
             f"{decided.decision}",
             block=decided.block.bid, op=decided.op.uid,
             hint=f"the arm(s) toward {dead_targets} never execute")


# ----------------------------------------------------------------------
# Program-scope rules


@ir_rule("ir.program-entry", scope="program", severity=Severity.ERROR,
         summary="the program's entry function is defined",
         invariant="execution (interpreter and simulator) starts at the "
                   "declared entry")
def _check_program_entry(program: Program, emit) -> None:
    if not program.has_function(program.entry_name):
        emit(f"program entry '{program.entry_name}' is not defined")


@ir_rule("ir.call-target", scope="program", severity=Severity.ERROR,
         summary="every CALL names a defined function with matching arity",
         invariant="calls are scheduled as atomic ops and executed "
                   "recursively on the callee's own schedules")
def _check_call_targets(program: Program, emit) -> None:
    for function in program.functions():
        for block in function.cfg.blocks():
            for op in block.ops:
                if op.opcode is not Opcode.CALL:
                    continue
                callee = op.callee or ""
                if not program.has_function(callee):
                    emit(f"{function.name}: call to undefined function "
                         f"'{op.callee}'", block=block.bid, op=op.uid)
                    continue
                want = len(program.function(callee).params)
                got = len(op.srcs)
                if want != got:
                    emit(f"{function.name}: call to '{callee}' passes "
                         f"{got} argument(s), callee takes {want}",
                         block=block.bid, op=op.uid)


# ----------------------------------------------------------------------
# Drivers


def lint_cfg(cfg: CFG, report: LintReport,
             function_name: Optional[str] = None) -> LintReport:
    """Run every CFG-scope IR rule over ``cfg``."""
    for rule in rules_for("ir", scope="cfg"):
        rule.check(cfg, make_emitter(rule, report, function_name))
    return report


def lint_function(function: Function, report: LintReport) -> LintReport:
    """Run CFG- and function-scope IR rules over one function."""
    lint_cfg(function.cfg, report, function_name=function.name)
    for rule in rules_for("ir", scope="function"):
        rule.check(function, make_emitter(rule, report, function.name))
    return report


def lint_program_ir(program: Program,
                    report: Optional[LintReport] = None) -> LintReport:
    """Run the whole IR rule family over a program."""
    report = report if report is not None else LintReport()
    for function in program.functions():
        lint_function(function, report)
    for rule in rules_for("ir", scope="program"):
        rule.check(program, make_emitter(rule, report, None))
    return report
