"""The lint rule registry.

Every rule is a metadata record (:class:`Rule`) plus a checker callable.
Rule modules (:mod:`repro.lint.ir_rules`, :mod:`repro.lint.schedule_rules`)
register themselves with the :func:`ir_rule` / :func:`schedule_rule`
decorators when imported; :func:`ensure_loaded` imports them on demand so
that merely importing :mod:`repro.lint` (which the scheduler does for its
collector hook) stays cheap and cycle-free.

Checker signatures by family:

* ``ir`` rules with scope ``cfg`` take ``(cfg, emit)``; scope
  ``function`` takes ``(function, emit)``; scope ``program`` takes
  ``(program, emit)``.  ``emit(message, block=, op=, hint=)`` builds a
  :class:`~repro.lint.diagnostics.Diagnostic` with the rule id, its
  default severity, and the enclosing function pre-filled.
* ``schedule`` rules take ``(ctx, emit)`` where ``ctx`` is a
  :class:`repro.lint.schedule_rules.ScheduleContext`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.lint.diagnostics import Severity


@dataclass(frozen=True)
class Rule:
    """Metadata for one lint rule."""

    #: Stable id, e.g. ``ir.op-shape`` or ``sched.latency``.
    id: str
    #: ``ir`` (structural IR checks) or ``schedule`` (certifier checks).
    family: str
    #: Granularity the checker runs at: ``cfg``, ``function``,
    #: ``program``, or ``schedule``.
    scope: str
    severity: Severity
    #: One-line description for the catalog / CLI.
    summary: str
    #: The paper invariant the rule encodes (DESIGN.md catalog column).
    invariant: str
    check: Callable = None  # type: ignore[assignment]


_RULES: Dict[str, Rule] = {}
#: Old rule id -> current rule id.  Renamed rules stay addressable under
#: their historical ids (``--fail-on`` configs, stored JSON reports).
_ALIASES: Dict[str, str] = {}
_LOADED = False


def register(rule: Rule) -> Rule:
    if rule.id in _RULES or rule.id in _ALIASES:
        raise ValueError(f"lint rule {rule.id!r} registered twice")
    _RULES[rule.id] = rule
    return rule


def register_alias(old_id: str, new_id: str) -> None:
    """Make ``old_id`` resolve to the rule registered as ``new_id``."""
    if old_id in _RULES or old_id in _ALIASES:
        raise ValueError(f"lint rule alias {old_id!r} registered twice")
    _ALIASES[old_id] = new_id


def resolve_rule_id(rule_id: str) -> str:
    """The current id for ``rule_id`` (aliases followed, one hop)."""
    ensure_loaded()
    return _ALIASES.get(rule_id, rule_id)


def _decorator(id: str, family: str, scope: str, severity: Severity,
               summary: str, invariant: str):
    def wrap(fn: Callable) -> Callable:
        register(Rule(id=id, family=family, scope=scope, severity=severity,
                      summary=summary, invariant=invariant, check=fn))
        return fn
    return wrap


def ir_rule(id: str, scope: str, severity: Severity, summary: str,
            invariant: str):
    """Register an IR-family rule (scope: ``cfg``/``function``/``program``)."""
    return _decorator(id, "ir", scope, severity, summary, invariant)


def schedule_rule(id: str, severity: Severity, summary: str, invariant: str):
    """Register a schedule-family rule (scope is always ``schedule``)."""
    return _decorator(id, "schedule", "schedule", severity, summary,
                      invariant)


def ensure_loaded() -> None:
    """Import the rule modules (idempotent)."""
    global _LOADED
    if _LOADED:
        return
    _LOADED = True
    import repro.lint.ir_rules  # noqa: F401  (registers on import)
    import repro.lint.schedule_rules  # noqa: F401


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by id."""
    ensure_loaded()
    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def rules_for(family: str, scope: str = None) -> List[Rule]:
    """Registered rules of one family (optionally one scope), sorted."""
    return [rule for rule in all_rules()
            if rule.family == family
            and (scope is None or rule.scope == scope)]


def get_rule(rule_id: str) -> Rule:
    ensure_loaded()
    return _RULES[_ALIASES.get(rule_id, rule_id)]


def make_emitter(rule: Rule, report, function_name: Optional[str] = None):
    """An ``emit(message, block=, op=, hint=)`` closure for one rule.

    Each emitted diagnostic carries the rule id, its default severity,
    and the enclosing function; per-rule counters land in the active
    metrics registry (``lint.rule.<id>``), so observability sees which
    rules fire without threading a registry through the checkers.
    """
    from repro.lint.diagnostics import Diagnostic
    from repro.obs.metrics import NULL_METRICS, current_metrics

    def emit(message: str, block=None, op=None, hint=None,
             severity=None) -> None:
        # ``severity`` overrides the rule default for rules whose verdict
        # is graded (ir.uninit-use: must-paths are errors, may-paths are
        # warnings).
        report.add(Diagnostic(
            rule=rule.id,
            severity=severity if severity is not None else rule.severity,
            message=message,
            function=function_name, block=block, op=op, hint=hint,
        ))
        metrics = current_metrics()
        if metrics is not NULL_METRICS:
            metrics.inc("lint.diagnostics")
            metrics.inc(f"lint.rule.{rule.id}")

    return emit
