"""Execution trace collection for the dynamic-scheduling study.

A :class:`TraceOp` is one *executed* operation with its registers
qualified by activation (each function call gets a fresh activation id, so
virtual register reuse across calls cannot alias) and, for memory ops, the
concrete effective address — which is what lets the out-of-order model
disambiguate memory perfectly where the static scheduler had to serialize.

Calls dissolve into the trace: argument passing and return-value delivery
become explicit ``move`` records (renaming traffic, default latency 0 in
the dynamic model), and the callee's ops follow inline.  Branches and
compares are ordinary trace ops occupying issue slots; their outcomes are
taken from the actual execution, i.e. perfect branch prediction, matching
the paper's methodology.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.function import Function, Program
from repro.ir.operation import Operation
from repro.ir.registers import Register
from repro.ir.types import Opcode
from repro.interp.interpreter import Interpreter
from repro.interp.state import MachineState

#: An activation-qualified register.
QualifiedReg = Tuple[int, Register]


class TraceOp:
    """One dynamic instance of an operation."""

    __slots__ = ("seq", "opcode", "defs", "uses", "address", "is_move")

    def __init__(self, seq: int, opcode: Opcode,
                 defs: Sequence[QualifiedReg], uses: Sequence[QualifiedReg],
                 address: Optional[int] = None, is_move: bool = False):
        self.seq = seq
        self.opcode = opcode
        self.defs = list(defs)
        self.uses = list(uses)
        self.address = address
        self.is_move = is_move

    @property
    def is_load(self) -> bool:
        return self.opcode is Opcode.LD

    @property
    def is_store(self) -> bool:
        return self.opcode is Opcode.ST

    def __repr__(self) -> str:
        tag = "move" if self.is_move else self.opcode.value
        return f"<trace#{self.seq} {tag}>"


class _TracingInterpreter(Interpreter):
    """Interpreter that records every executed op, activation-qualified."""

    def __init__(self, program: Program, max_steps: int = 5_000_000):
        super().__init__(program, max_steps=max_steps)
        self.trace: List[TraceOp] = []
        self._activations: List[int] = []
        self._next_activation = 0
        #: (caller activation, CALL op) stack, pushed just before recursing.
        self._pending_calls: List[Tuple[int, Operation]] = []
        #: Return source of the most recent RET: (activation, reg or None).
        self._last_return: Optional[Tuple[int, Optional[Register]]] = None

    # ------------------------------------------------------------------

    def _qualify(self, registers) -> List[QualifiedReg]:
        activation = self._activations[-1]
        return [(activation, register) for register in registers]

    def _record(self, op: Operation, address: Optional[int] = None) -> None:
        self.trace.append(TraceOp(
            len(self.trace), op.opcode,
            defs=self._qualify(op.defined_registers()),
            uses=self._qualify(op.source_registers()),
            address=address,
        ))

    # ------------------------------------------------------------------

    def call(self, function: Function, args):
        activation = self._next_activation
        self._next_activation += 1

        if self._pending_calls:
            caller_activation, call_op = self._pending_calls[-1]
            # Argument-passing moves: callee param <- caller source reg.
            for param, src in zip(function.params, call_op.srcs):
                uses = (
                    [(caller_activation, src)]
                    if isinstance(src, Register) else []
                )
                self.trace.append(TraceOp(
                    len(self.trace), Opcode.MOV,
                    defs=[(activation, param)], uses=uses, is_move=True,
                ))

        self._activations.append(activation)
        try:
            result = super().call(function, args)
        finally:
            self._activations.pop()

        if self._pending_calls:
            caller_activation, call_op = self._pending_calls[-1]
            if call_op.dests and self._last_return is not None:
                ret_activation, ret_src = self._last_return
                uses = (
                    [(ret_activation, ret_src)] if ret_src is not None else []
                )
                self.trace.append(TraceOp(
                    len(self.trace), Opcode.MOV,
                    defs=[(caller_activation, call_op.dest)], uses=uses,
                    is_move=True,
                ))
        return result

    def _execute_op(self, function: Function, op: Operation,
                    state: MachineState) -> None:
        opcode = op.opcode
        if opcode is Opcode.LD or opcode is Opcode.ST:
            base = self._value(state, op.srcs[0])
            offset = self._value(state, op.srcs[1])
            self._record(op, address=int(base) + int(offset))
            super()._execute_op(function, op, state)
            return
        if opcode is Opcode.CALL:
            self._pending_calls.append((self._activations[-1], op))
            try:
                super()._execute_op(function, op, state)
            finally:
                self._pending_calls.pop()
            return
        self._record(op)
        super()._execute_op(function, op, state)

    def _terminate(self, function: Function, block, op: Operation, state):
        self._record(op)
        if op.opcode is Opcode.RET:
            src = op.srcs[0] if op.srcs and isinstance(op.srcs[0], Register) \
                else None
            self._last_return = (self._activations[-1], src)
        return super()._terminate(function, block, op, state)


def collect_trace(program: Program, args: Sequence[object] = (),
                  max_steps: int = 5_000_000):
    """Execute the program and return (result, trace)."""
    interpreter = _TracingInterpreter(program, max_steps=max_steps)
    result = interpreter.run(list(args))
    return result, interpreter.trace


def build_dependencies(
    trace: List[TraceOp],
    disambiguate_memory: bool = True,
) -> List[List[int]]:
    """producers[i] = trace indices op i truly depends on.

    Register flow uses activation-qualified last-writer maps.  Memory flow
    is either address-precise (``disambiguate_memory=True`` — the dynamic
    hardware's view) or fully serialized, loads ordered behind *every*
    earlier store (the paper's static no-aliasing model).
    """
    producers: List[List[int]] = []
    last_writer: Dict[QualifiedReg, int] = {}
    last_store_at: Dict[int, int] = {}
    last_store_any: Optional[int] = None

    for op in trace:
        deps: List[int] = []
        for qualified in op.uses:
            producer = last_writer.get(qualified)
            if producer is not None:
                deps.append(producer)
        if op.is_load:
            if disambiguate_memory:
                producer = last_store_at.get(op.address)
                if producer is not None:
                    deps.append(producer)
            elif last_store_any is not None:
                deps.append(last_store_any)
        producers.append(deps)
        for qualified in op.defs:
            last_writer[qualified] = op.seq
        if op.is_store:
            last_store_at[op.address] = op.seq
            last_store_any = op.seq
    return producers
