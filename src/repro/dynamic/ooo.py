"""A ROB-style out-of-order dataflow engine over execution traces.

Models the dynamically scheduled processor of the paper's future-work
question: in-order dispatch into an instruction window, out-of-order issue
of ready ops (oldest first) bounded by issue width, completion after the
op's latency, in-order retirement.  Perfect branch prediction and perfect
caches, matching the paper's static-side assumptions, so the comparison
against static treegion schedules isolates the *scheduling* question.

Moves injected by call/return linkage take ``move_latency`` (default 0 —
register renaming) and do not consume issue slots when free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.machine.model import MachineModel
from repro.machine.presets import universal_machine
from repro.ir.types import Opcode
from repro.dynamic.trace import TraceOp, build_dependencies


@dataclass(frozen=True)
class DynamicParams:
    """Out-of-order core configuration."""

    issue_width: int = 4
    window: int = 32
    retire_width: Optional[int] = None  # defaults to issue width
    disambiguate_memory: bool = True
    #: Latency of call/return linkage moves (0 = pure renaming).
    move_latency: int = 0

    @property
    def effective_retire_width(self) -> int:
        return self.retire_width or self.issue_width


@dataclass(frozen=True)
class DynamicResult:
    """Outcome of one trace simulation."""

    cycles: int
    ops: int

    @property
    def ipc(self) -> float:
        return self.ops / self.cycles if self.cycles else 0.0


def simulate_trace(
    trace: List[TraceOp],
    params: DynamicParams,
    machine: Optional[MachineModel] = None,
) -> DynamicResult:
    """Cycle count for executing ``trace`` on the out-of-order core."""
    if machine is None:
        machine = universal_machine(params.issue_width, name="ooo")
    n = len(trace)
    if n == 0:
        return DynamicResult(cycles=0, ops=0)

    producers = build_dependencies(
        trace, disambiguate_memory=params.disambiguate_memory
    )
    complete: List[Optional[int]] = [None] * n

    def latency_of(op: TraceOp) -> int:
        if op.is_move:
            return params.move_latency
        return machine.latency_of(op.opcode)

    head = 0            # oldest un-retired op
    dispatched = 0      # ops brought into the window so far
    issued = [False] * n
    cycle = 0

    while head < n:
        cycle += 1

        # 1. Dispatch in order into the window.
        dispatch_budget = params.issue_width
        while (dispatched < n and dispatch_budget > 0
               and dispatched - head < params.window):
            dispatched += 1
            dispatch_budget -= 1

        # 2. Issue ready ops, oldest first.
        slots = params.issue_width
        for i in range(head, dispatched):
            if slots == 0:
                break
            if issued[i]:
                continue
            ready = all(
                complete[p] is not None and complete[p] <= cycle
                for p in producers[i]
            )
            if not ready:
                continue
            issued[i] = True
            latency = latency_of(trace[i])
            complete[i] = cycle + max(0, latency)
            if not (trace[i].is_move and params.move_latency == 0):
                slots -= 1

        # 3. Retire in order.
        retire_budget = params.effective_retire_width
        while (head < n and retire_budget > 0 and issued[head]
               and complete[head] is not None and complete[head] <= cycle):
            head += 1
            retire_budget -= 1

        if cycle > 64 * n + 1024:
            raise RuntimeError("dynamic simulation failed to make progress")

    return DynamicResult(cycles=cycle, ops=n)


def dataflow_limit(trace: List[TraceOp],
                   machine: Optional[MachineModel] = None,
                   disambiguate_memory: bool = True) -> int:
    """Critical-path length of the trace: infinite width and window.

    The oracle bound any schedule — static or dynamic — is limited by.
    """
    if machine is None:
        machine = universal_machine(1024, name="oracle")
    producers = build_dependencies(trace,
                                   disambiguate_memory=disambiguate_memory)
    finish = [0] * len(trace)
    longest = 0
    for i, op in enumerate(trace):
        start = 0
        for p in producers[i]:
            if finish[p] > start:
                start = finish[p]
        latency = 0 if op.is_move else machine.latency_of(op.opcode)
        finish[i] = start + max(latency, 1 if not op.is_move else 0)
        if finish[i] > longest:
            longest = finish[i]
    return longest
