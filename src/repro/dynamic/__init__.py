"""Dynamically scheduled (out-of-order) processor modelling.

The paper's Section 6 asks about treegion performance "on dynamically
scheduled processor models".  This package provides the comparison
machinery: a tracing interpreter collects the program's executed operation
stream (perfect branch prediction, as in the paper's methodology), and a
ROB-style dataflow engine issues it out of order under an issue width,
instruction window, and the paper's latencies — with either perfect memory
disambiguation (dynamic hardware's advantage) or the static model's
conservative serialization.

The headline comparison (``benchmarks/test_dynamic_vs_static.py``):
statically scheduled treegions vs an out-of-order core of the same width,
over the executable minic workloads.
"""

from repro.dynamic.trace import TraceOp, collect_trace, build_dependencies
from repro.dynamic.ooo import DynamicParams, DynamicResult, simulate_trace

__all__ = [
    "TraceOp",
    "collect_trace",
    "build_dependencies",
    "DynamicParams",
    "DynamicResult",
    "simulate_trace",
]
