"""Region preparation: predication, exit branches, and PBR insertion.

The list scheduler flattens a whole tree of blocks into one MultiOp stream,
so control flow inside the region is converted to *predicates* and exits
become explicitly *predicated branches*, exactly as in the paper's Figure 5
schedule:

* every non-root block ``B`` gets a **guard predicate** ``g(B)`` meaning
  "control reaches B":  for conditional parents this comes from a two-
  destination guarded ``CMPP`` (Playdoh style — the original compare is
  folded into it when it has no other uses); for switch parents from one
  ``CMPP.eq`` per case and one ``NINSET`` for the default; for
  unconditional edges the guard is inherited;
* every **region exit** becomes one predicated branch op (``BRCT`` on the
  exit's path predicate, plain ``BRU`` for an unguarded exit); ``RET``
  exits keep their ``RET`` op, guarded.  Internal branches disappear —
  within the flattened schedule control "flows" through predicates;
* when the machine uses branch-target registers, each branch gets a
  ``PBR`` op and reads the resulting BTR (one PBR per branch, as in the
  paper's figures — even two exits to the same target use two BTRs);
* ops that may not execute speculatively (stores, calls) are guarded with
  their block's predicate; everything else is left bare and free to
  speculate, with renaming (:mod:`repro.schedule.renaming`) repairing any
  live-out violations.

Nothing here mutates the program: every op entering the problem is cloned
into a :class:`~repro.schedule.schedule.SchedOp`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.util.errors import SchedulingError
from repro.ir.analysis_cache import register_bounds_of
from repro.ir.cfg import BasicBlock, Edge
from repro.ir.liveness import LivenessInfo
from repro.ir.operation import Operation
from repro.ir.registers import Register, RegisterFactory
from repro.ir.types import CompareCond, EdgeKind, Opcode
from repro.machine.model import MachineModel
from repro.obs.metrics import current_metrics
from repro.regions.region import Region, RegionExit
from repro.schedule.schedule import SchedOp


class ScheduleProblem:
    """Everything the DDG builder and list scheduler need for one region."""

    def __init__(self, region: Region, machine: MachineModel):
        self.region = region
        self.machine = machine
        #: All schedulable ops, dense indices.
        self.sched_ops: List[SchedOp] = []
        #: Per block (bid): SchedOps in intra-block program order.
        self.by_block: Dict[int, List[SchedOp]] = {b.bid: [] for b in region}
        #: Guard predicate per block (None for the root).
        self.guards: Dict[int, Optional[Register]] = {}
        #: The region's exits, captured once (identity matters downstream).
        self.exits: List[RegionExit] = []
        #: exit -> the SchedOp that retires it.
        self.exit_ops: Dict[int, SchedOp] = {}
        #: Private register namespace (reserved against the whole CFG).
        self.regs = RegisterFactory()
        #: Cycle (op) at which each block's guard is defined, for
        #: speculation statistics; filled by the scheduler.
        self.guard_def: Dict[Register, SchedOp] = {}

    # ------------------------------------------------------------------

    def new_sched_op(
        self,
        op: Operation,
        home: BasicBlock,
        exit: Optional[RegionExit] = None,
        source: Optional[Operation] = None,
    ) -> SchedOp:
        sop = SchedOp(len(self.sched_ops), op, home, exit=exit, source=source)
        self.sched_ops.append(sop)
        self.by_block[home.bid].append(sop)
        return sop

    def exit_op_for(self, exit: RegionExit) -> SchedOp:
        return self.exit_ops[id(exit)]

    def guard_of(self, block: BasicBlock) -> Optional[Register]:
        return self.guards[block.bid]


def _reserve_all_registers(problem: ScheduleProblem) -> None:
    cfg = problem.region.root.cfg
    if cfg is not None:
        # Function-wide register bounds are cached per CFG version: one
        # scan per function instead of one per region (this walk was the
        # dominant cost of preparing small regions).
        problem.regs.reserve_bounds(register_bounds_of(cfg))
        return
    for block in problem.region.blocks:
        for op in block.ops:
            for reg in op.defined_registers():
                problem.regs.reserve(reg)
            for reg in op.used_registers():
                problem.regs.reserve(reg)


def _predicate_uses_elsewhere(
    region: Region, pred: Register, branch: Operation, cmpp: Operation
) -> bool:
    """Does ``pred`` have readers besides ``branch`` inside the region?"""
    for block in region:
        for op in block.ops:
            if op is branch or op is cmpp:
                continue
            if pred in op.used_registers():
                return True
    return False


def _find_defining_cmpp(block: BasicBlock, pred: Register, before: Operation):
    """The last CMPP writing ``pred`` earlier in ``block``, or None."""
    found = None
    for op in block.ops:
        if op is before:
            break
        if op.opcode is Opcode.CMPP and pred in op.dests:
            found = op
    return found


class _Prep:
    def __init__(self, region: Region, machine: MachineModel,
                 liveness: Optional[LivenessInfo]):
        self.problem = ScheduleProblem(region, machine)
        self.region = region
        self.machine = machine
        self.liveness = liveness
        _reserve_all_registers(self.problem)

    # ------------------------------------------------------------------

    def run(self) -> ScheduleProblem:
        problem = self.problem
        problem.exits = self.region.exits()
        self._exits_by_block: Dict[int, List[RegionExit]] = {}
        for exit in problem.exits:
            self._exits_by_block.setdefault(exit.source.bid, []).append(exit)

        problem.guards[self.region.root.bid] = None
        for block in self._visit_order():
            self._prep_block(block)
        return problem

    def _visit_order(self) -> List[BasicBlock]:
        """Blocks in an order where guards are known before use.

        Tree preorder for tree regions; the hyperblock subclass overrides
        this with a DAG topological order.
        """
        order: List[BasicBlock] = []
        stack = [self.region.root]
        while stack:
            block = stack.pop()
            order.append(block)
            stack.extend(reversed(self.region.children(block)))
        return order

    # ------------------------------------------------------------------

    def _prep_block(self, block: BasicBlock) -> None:
        guard = self.problem.guard_of(block)
        term = block.terminator

        # 1. Body ops (everything except the terminator).
        body = block.ops[:-1] if term is not None else list(block.ops)
        dropped_cmpp = self._plan_branch_predicates(block, term, guard)
        for op in body:
            if op is dropped_cmpp:
                continue
            clone = op.clone(op.uid)
            clone.guard = self._op_guard(op, guard, block)
            self.problem.new_sched_op(clone, block, source=op)

        # 2. Edge predicates (guard CMPPs / switch case predicates).
        self._emit_edge_predicates(block, term, guard)

        # 3. Exit ops: RET keeps its op; every exit edge gets a branch.
        for exit in self._exits_by_block.get(block.bid, []):
            if exit.is_return:
                assert term is not None and term.opcode is Opcode.RET
                clone = term.clone(term.uid)
                clone.guard = guard
                sop = self.problem.new_sched_op(clone, block, exit=exit, source=term)
                self.problem.exit_ops[id(exit)] = sop
            else:
                self._emit_exit_branch(block, exit)

        # 4. Guards for in-region children.
        for edge in block.out_edges:
            if edge.dst in self.region and edge.dst is not self.region.root:
                self._record_child_guard(edge)

    def _op_guard(self, op: Operation, guard, block: BasicBlock):
        """The execution guard a body op receives.

        Tree regions speculate freely: only side-effecting ops keep their
        block guard.  The hyperblock subclass predicates everything.

        An op that arrives already predicated keeps its own guard — a
        guarded op is a *conditional* update, so stripping the guard (or
        replacing it with the block guard) would execute it on paths where
        the original program squashed it.  When the block guard also
        exists, the two are AND-combined.
        """
        if op.guard is not None:
            return self._merge_op_guard(op.guard, guard, block)
        return guard if not op.can_speculate else None

    def _merge_op_guard(self, op_guard: Register,
                        guard: Optional[Register],
                        block: BasicBlock) -> Register:
        """Combine a pre-existing op guard with the block guard.

        Emitted *before* the guarded op's clone, so stream order (and the
        flow edges the DDG derives from it) keeps the PAND between the
        guard's definition and its use.
        """
        if guard is None:
            return op_guard
        dest = self.problem.regs.fresh_pred()
        current_metrics().inc("prep.pand_merges")
        self._emit_synth(
            Operation(0, Opcode.PAND, dests=[dest], srcs=[op_guard, guard]),
            block, dest,
        )
        return dest

    def _record_child_guard(self, edge: Edge) -> None:
        """Bind an internal edge's predicate to its destination's guard.

        In a tree each member has one incoming edge, so the predicate *is*
        the guard; hyperblocks accumulate several and OR them at visit
        time.
        """
        self.problem.guards[edge.dst.bid] = self._edge_predicate(edge)

    # ------------------------------------------------------------------
    # Edge predicates

    def _plan_branch_predicates(self, block, term, guard):
        """Decide how this block's outgoing condition becomes predicates.

        Returns the original CMPP to fold away (drop), if any.  Fills
        ``self._edge_preds`` lazily per block in ``_emit_edge_predicates``.
        """
        self._pending: Dict[int, Register] = {}  # edge-key -> predicate
        self._branch_plan = None
        if term is None or term.opcode in (Opcode.RET, Opcode.BRU):
            return None
        if term.opcode is Opcode.SWITCH:
            self._branch_plan = ("switch", term)
            return None
        # Conditional branch: locate the compare computing its predicate.
        pred = term.srcs[0]
        if not isinstance(pred, Register):
            raise SchedulingError(f"branch in bb{block.bid} lacks a predicate")
        cmpp = _find_defining_cmpp(block, pred, term)
        if cmpp is not None and cmpp.guard is None and len(cmpp.dests) <= 2:
            position = cmpp.dests.index(pred)
            cond = cmpp.cond if position == 0 else cmpp.cond.negate()
            if term.opcode is Opcode.BRCF:
                cond = cond.negate()
            keep_original = _predicate_uses_elsewhere(
                self.region, pred, term, cmpp
            ) or self._pred_live_out(pred)
            self._branch_plan = ("cmpp", term, cmpp, cond, keep_original)
            return None if keep_original else cmpp
        self._branch_plan = ("pand", term, pred)
        return None

    def _pred_live_out(self, pred: Register) -> bool:
        if self.liveness is None:
            return False
        for exit in self.problem.exits:
            if exit.edge is not None and pred in self.liveness.live_into_edge(exit.edge):
                return True
        return False

    def _emit_edge_predicates(self, block, term, guard) -> None:
        """Emit the ops computing this block's outgoing edge predicates."""
        plan = self._branch_plan
        if plan is None:
            # Unconditional flow: edges inherit the block guard.
            for edge in block.out_edges:
                self._pending[id(edge)] = guard
            return

        if plan[0] == "switch":
            switch = plan[1]
            selector = switch.srcs[0]
            case_values = [e.case_value for e in block.case_edges()]
            for edge in block.out_edges:
                if edge.kind is EdgeKind.CASE:
                    dest = self.problem.regs.fresh_pred()
                    op = Operation(
                        0, Opcode.CMPP, dests=[dest],
                        srcs=[selector, _imm(edge.case_value)],
                        cond=CompareCond.EQ, guard=guard,
                    )
                    self._emit_synth(op, block, dest)
                    self._pending[id(edge)] = dest
                else:  # DEFAULT
                    dest = self.problem.regs.fresh_pred()
                    op = Operation(
                        0, Opcode.NINSET, dests=[dest],
                        srcs=[selector] + [_imm(v) for v in case_values],
                        guard=guard,
                    )
                    self._emit_synth(op, block, dest)
                    self._pending[id(edge)] = dest
            return

        taken_edge = block.taken_edge
        fall_edge = block.fallthrough_edge
        if plan[0] == "cmpp":
            _, term_op, cmpp, cond, keep_original = plan
            p_taken = self.problem.regs.fresh_pred()
            p_fall = self.problem.regs.fresh_pred()
            op = Operation(
                0, Opcode.CMPP, dests=[p_taken, p_fall],
                srcs=list(cmpp.srcs), cond=cond, guard=guard,
            )
            self._emit_synth(op, block, p_taken, p_fall)
        else:  # "pand": predicate defined outside this block
            _, term_op, pred = plan
            p_taken = self.problem.regs.fresh_pred()
            p_fall = self.problem.regs.fresh_pred()
            taken_opcode = (
                Opcode.PAND if term_op.opcode is Opcode.BRCT else Opcode.PANDCN
            )
            fall_opcode = (
                Opcode.PANDCN if term_op.opcode is Opcode.BRCT else Opcode.PAND
            )
            srcs = [pred] if guard is None else [pred, guard]
            self._emit_synth(
                Operation(0, taken_opcode, dests=[p_taken], srcs=list(srcs)),
                block, p_taken,
            )
            self._emit_synth(
                Operation(0, fall_opcode, dests=[p_fall], srcs=list(srcs)),
                block, p_fall,
            )
        if taken_edge is not None:
            self._pending[id(taken_edge)] = p_taken
        if fall_edge is not None:
            self._pending[id(fall_edge)] = p_fall

    def _emit_synth(self, op: Operation, block: BasicBlock, *guard_dests) -> SchedOp:
        op.uid = -(len(self.problem.sched_ops) + 1)  # synthetic uid space
        sop = self.problem.new_sched_op(op, block, source=None)
        for dest in guard_dests:
            self.problem.guard_def[dest] = sop
        return sop

    def _edge_predicate(self, edge: Edge) -> Optional[Register]:
        return self._pending.get(id(edge))

    # ------------------------------------------------------------------
    # Exit branches

    def _emit_exit_branch(self, block: BasicBlock, exit: RegionExit) -> None:
        pred = self._pending.get(id(exit.edge))
        target_bid = exit.edge.dst.bid
        if pred is None:
            branch = Operation(0, Opcode.BRU, target=target_bid)
        else:
            branch = Operation(0, Opcode.BRCT, srcs=[pred], target=target_bid)
        branch.uid = -(len(self.problem.sched_ops) + 1)
        if self.machine.use_btr:
            btr = self.problem.regs.fresh_btr()
            pbr = Operation(
                -(len(self.problem.sched_ops) + 1), Opcode.PBR,
                dests=[btr], target=target_bid,
            )
            self.problem.new_sched_op(pbr, block, source=None)
            branch.srcs = list(branch.srcs) + [btr]
            branch.uid = -(len(self.problem.sched_ops) + 1)
        sop = self.problem.new_sched_op(branch, block, exit=exit, source=None)
        self.problem.exit_ops[id(exit)] = sop


def _imm(value):
    from repro.ir.types import Immediate

    return Immediate(value)


def prepare_region(
    region: Region,
    machine: MachineModel,
    liveness: Optional[LivenessInfo] = None,
) -> ScheduleProblem:
    """Build the scheduling problem for one region (IR left untouched)."""
    return _Prep(region, machine, liveness).run()
