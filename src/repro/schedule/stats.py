"""Schedule-level statistics: register pressure and utilization.

The paper assumes "enough" registers (compile-time renaming freely mints
names) and never reports pressure; this module quantifies what that
assumption hides — multi-path scheduling with renaming keeps more values
alive simultaneously than linear scheduling does — plus the slot
utilization that motivates the whole paper (linear regions leave wide
machines idle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.ir.registers import Register
from repro.ir.types import RegClass
from repro.machine.model import MachineModel
from repro.schedule.schedule import RegionSchedule


@dataclass(frozen=True)
class PressureStats:
    """Register pressure and utilization for one region schedule."""

    max_live_gpr: int
    max_live_pred: int
    #: Issue slots filled / (length × width).
    utilization: float
    length: int
    op_count: int


def measure_schedule(schedule: RegionSchedule,
                     machine: MachineModel) -> PressureStats:
    """Live-range based pressure over one schedule.

    A register defined in the schedule is live from its producer's issue
    cycle to its last in-region read; values read by an exit's repair
    copies live until that exit's retire cycle.  Live-in values (defined
    outside the region) are charged from cycle 1.
    """
    birth: Dict[Register, int] = {}
    death: Dict[Register, int] = {}

    def note_use(register: Register, cycle: int) -> None:
        birth.setdefault(register, 1)  # live-in unless defined later
        if death.get(register, 0) < cycle:
            death[register] = cycle

    for sop in schedule.all_ops():
        for register in sop.op.used_registers():
            note_use(register, sop.cycle)
    for sop in schedule.all_ops():
        for register in sop.op.defined_registers():
            if register not in birth or birth[register] == 1:
                birth[register] = sop.cycle
            death.setdefault(register, sop.cycle)
    for record in schedule.exits:
        for exit, _original, renamed in schedule.copies:
            if exit is record.exit:
                note_use(renamed, record.cycle)

    length = max(1, schedule.length)
    live_gpr = [0] * (length + 1)
    live_pred = [0] * (length + 1)
    for register, start in birth.items():
        end = death.get(register, start)
        counts = live_gpr if register.rclass is RegClass.GPR else live_pred
        if register.rclass is RegClass.BTR:
            counts = live_pred  # group BTRs with the small register files
        for cycle in range(start, min(end, length) + 1):
            counts[cycle] += 1

    filled = schedule.op_count
    return PressureStats(
        max_live_gpr=max(live_gpr) if live_gpr else 0,
        max_live_pred=max(live_pred) if live_pred else 0,
        utilization=filled / (length * machine.issue_width),
        length=schedule.length,
        op_count=filled,
    )


def aggregate_pressure(schedules: List[RegionSchedule],
                       machine: MachineModel) -> PressureStats:
    """Worst-case pressure and weighted-average utilization over regions."""
    if not schedules:
        return PressureStats(0, 0, 0.0, 0, 0)
    measured = [measure_schedule(s, machine) for s in schedules]
    total_slots = sum(m.length * machine.issue_width for m in measured)
    total_ops = sum(m.op_count for m in measured)
    return PressureStats(
        max_live_gpr=max(m.max_live_gpr for m in measured),
        max_live_pred=max(m.max_live_pred for m in measured),
        utilization=total_ops / max(1, total_slots),
        length=sum(m.length for m in measured),
        op_count=total_ops,
    )
