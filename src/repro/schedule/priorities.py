"""The four treegion scheduling heuristics (Section 3, step 2 of Figure 3).

Each heuristic is a sort key over DDG nodes; the list scheduler then picks
ready ops in sorted order.  Quoting the paper:

* **dependence height** — "the DDG nodes are sorted by their heights";
  critical-path scheduling, maximally eager speculation.
* **exit count** — "the priority of an Op is equal to the Op's exit count,
  which is the number of exits that follow the Op in control flow in the
  treegion"; ties broken by dependence height.  Adapted from speculative
  hedge's *helped count*.
* **global weight** — "the priority value assigned to an Op is the profile
  weight of the original basic block which contains it"; ties broken by
  dependence height.  Adapted from speculative hedge's *helped weight*
  (in a tree, the weight of all exits below an op equals its block's
  weight).
* **weighted count** — weight first, then exit count, then height.

All four fall back to op creation order as the final tie-break, making
schedules fully deterministic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.schedule.ddg import DDG
from repro.schedule.prep import ScheduleProblem
from repro.schedule.schedule import SchedOp

#: Heuristic names as used throughout the benchmarks and figures.
Heuristic = str

DEP_HEIGHT: Heuristic = "dep_height"
EXIT_COUNT: Heuristic = "exit_count"
GLOBAL_WEIGHT: Heuristic = "global_weight"
WEIGHTED_COUNT: Heuristic = "weighted_count"

HEURISTICS: Tuple[Heuristic, ...] = (
    DEP_HEIGHT,
    EXIT_COUNT,
    GLOBAL_WEIGHT,
    WEIGHTED_COUNT,
)


def _exit_counts(problem: ScheduleProblem) -> Dict[int, int]:
    region = problem.region
    return {
        block.bid: region.exit_count_below(block) for block in region
    }


def priority_keys(
    problem: ScheduleProblem, ddg: DDG, heuristic: Heuristic
) -> List[Tuple]:
    """Per-op sort keys (higher = more urgent), indexed like sched_ops."""
    heights = ddg.heights
    if heuristic == DEP_HEIGHT:
        return [(heights[sop.index],) for sop in problem.sched_ops]
    if heuristic == EXIT_COUNT:
        counts = _exit_counts(problem)
        return [
            (counts[sop.home.bid], heights[sop.index])
            for sop in problem.sched_ops
        ]
    if heuristic == GLOBAL_WEIGHT:
        return [
            (sop.home.weight, heights[sop.index])
            for sop in problem.sched_ops
        ]
    if heuristic == WEIGHTED_COUNT:
        counts = _exit_counts(problem)
        return [
            (sop.home.weight, counts[sop.home.bid], heights[sop.index])
            for sop in problem.sched_ops
        ]
    raise ValueError(
        f"unknown heuristic {heuristic!r}; choose one of {HEURISTICS}"
    )


def all_priority_keys(
    problem: ScheduleProblem, ddg: DDG
) -> Dict[Heuristic, List[Tuple]]:
    """``priority_keys`` for every heuristic, sharing the common pieces.

    Dependence heights, exit counts, and block weights feed several
    heuristics; evaluating the full heuristic sweep on one region (as the
    evaluation engine does) computes each ingredient once here instead of
    per heuristic.  Each entry is element-wise identical to what
    :func:`priority_keys` returns for that heuristic.
    """
    heights = ddg.heights
    counts = _exit_counts(problem)
    sops = problem.sched_ops
    per_op = [
        (heights[sop.index], counts[sop.home.bid], sop.home.weight)
        for sop in sops
    ]
    return {
        DEP_HEIGHT: [(h,) for h, _, _ in per_op],
        EXIT_COUNT: [(c, h) for h, c, _ in per_op],
        GLOBAL_WEIGHT: [(w, h) for h, _, w in per_op],
        WEIGHTED_COUNT: [(w, c, h) for h, c, w in per_op],
    }


def priority_order(
    problem: ScheduleProblem,
    ddg: DDG,
    heuristic: Heuristic,
    keys: Optional[List[Tuple]] = None,
) -> List[SchedOp]:
    """Step 2 of Figure 3: the DDG nodes sorted by the chosen heuristic.

    ``keys`` lets a caller that already holds this heuristic's keys (e.g.
    from :func:`all_priority_keys` on an identically-prepared problem —
    preparation is deterministic, so op indices line up) skip recomputing
    them.
    """
    if keys is None:
        keys = priority_keys(problem, ddg, heuristic)
    return sorted(
        problem.sched_ops,
        key=lambda sop: tuple(-component for component in keys[sop.index])
        + (sop.index,),
    )


def priority_ranks(
    problem: ScheduleProblem, ddg: DDG, heuristic: Heuristic
) -> List[int]:
    """rank[i] = position of op i in the sorted list (0 = most urgent)."""
    order = priority_order(problem, ddg, heuristic)
    ranks = [0] * len(order)
    for position, sop in enumerate(order):
        ranks[sop.index] = position
    return ranks
