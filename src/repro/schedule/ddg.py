"""Data dependence graph construction (step 1 of Figure 3).

The DDG spans every op of the region — all paths at once.  Because the
region is a tree, dependences only exist *along* root-to-leaf paths; ops in
sibling subtrees are independent by construction (cross-path register
conflicts were removed by renaming before this runs).  One depth-first walk
down the tree therefore builds all edges, carrying per-path state:

* **flow** (RAW) edges with the producer's latency, including guard
  predicate reads;
* **anti** (WAR) edges at latency 0 (a MultiOp reads before it writes) and
  **output** (WAW) edges spaced so the later def's write lands last;
* **memory** edges under the paper's no-aliasing rule — loads never bypass
  stores — with the Playdoh concession that "a store and any dependent
  memory operation can be scheduled in the same cycle" (store→load latency
  0; store→store and load→store are spaced a full cycle); calls fence
  everything;
* **exit** edges: a region exit may not retire before the ops on its
  root-to-source path *that the exit actually needs* have issued: every
  side-effecting op (stores, calls — they must happen before control
  leaves) and every op defining a value that is live into the exit.  Ops
  whose results are dead at the exit may issue later — they only matter
  to deeper or sibling paths, and anything they transitively feed is
  ordered behind them by its own dependence edges.  Edge latency is 0:
  issuing *in* the exit cycle is allowed, as ``r6 = 5`` does in the
  paper's Figure 5.

Op indices are assigned in tree preorder, so every edge points from a lower
to a higher index and the graph is a DAG by construction; heights are
computed in one reverse sweep.

**Storage layout.**  The grid hot path builds this graph 14k+ times per
run, so edges are kept *flat*: construction appends to three parallel int
lists (``src``/``dst``/``latency`` per placement edge, in insertion
order), deduplicated through a set of packed ints.  :meth:`DDG.finalize`
converts the flat stream into CSR form — ``pred_ptr``/``pred_src``/
``pred_lat`` index predecessor edges of op *i* as the half-open slice
``pred_ptr[i]:pred_ptr[i+1]``, and likewise ``succ_ptr``/``succ_dst``/
``succ_lat`` and the control-edge arrays — which is what
:func:`~repro.schedule.list_scheduler.list_schedule` and
:meth:`DDG.compute_heights` iterate.  The legacy per-node adjacency lists
(``preds``/``succs``/``control_succs``/``control_preds``) survive as lazy
views for lint, tests, and diagnostics; they materialize on first access
and are invalidated by further ``add_edge`` calls, so the scheduling hot
path never allocates a single per-edge tuple.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.cfg import BasicBlock
from repro.ir.liveness import LivenessInfo
from repro.ir.registers import Register
from repro.ir.types import Opcode
from repro.machine.model import MachineModel
from repro.obs.metrics import NULL_METRICS, current_metrics
from repro.regions.region import RegionExit
from repro.schedule.prep import ScheduleProblem
from repro.schedule.renaming import ExitCopy
from repro.schedule.schedule import SchedOp

#: Packed-edge encoding: ``(src << SHIFT | dst) << LAT_BITS | latency``.
#: Valid while indices fit in SHIFT bits and latency in LAT_BITS bits;
#: out-of-range edges (never seen in practice) fall back to tuples in the
#: same dedup set.
_IDX_SHIFT = 21
_IDX_LIMIT = 1 << _IDX_SHIFT
_LAT_BITS = 10
_LAT_LIMIT = 1 << _LAT_BITS


class DDG:
    """Dependence edges + heights over a :class:`ScheduleProblem`.

    Two edge populations share the graph:

    * **placement edges** (``preds``/``succs``) constrain the list
      scheduler: flow, anti, output, memory, and exit requirements;
    * **height-only control edges** (``control_succs``) reproduce the
      control dependences of the paper's DDG: every op below a branch is
      control-dependent on it.  Speculation means the scheduler is free
      to *break* these at placement time (they never constrain placement
      here), but dependence heights are computed over both populations —
      which is what makes branches and compare chains tall and therefore
      urgent under the dependence-height heuristic, exactly as in the
      paper's Figure 5 schedule where the CMPPs and branches issue as
      early as their data allows.
    """

    def __init__(self, problem: ScheduleProblem):
        self.problem = problem
        n = len(problem.sched_ops)
        self._n = n
        # Flat placement-edge stream in insertion order.
        self._edge_src: List[int] = []
        self._edge_dst: List[int] = []
        self._edge_lat: List[int] = []
        # Flat height-only control-edge stream.
        self._cedge_src: List[int] = []
        self._cedge_dst: List[int] = []
        self._edge_set = set()
        self._dirty = True
        # CSR arrays (populated by finalize()).
        self.pred_ptr: List[int] = []
        self.pred_src: List[int] = []
        self.pred_lat: List[int] = []
        self.succ_ptr: List[int] = []
        self.succ_dst: List[int] = []
        self.succ_lat: List[int] = []
        self.cpred_ptr: List[int] = []
        self.cpred_src: List[int] = []
        self.csucc_ptr: List[int] = []
        self.csucc_dst: List[int] = []
        self.in_degree: List[int] = []
        # Lazy legacy adjacency views.
        self._preds_view: Optional[List[List[Tuple[int, int]]]] = None
        self._succs_view: Optional[List[List[Tuple[int, int]]]] = None
        self._csuccs_view: Optional[List[List[int]]] = None
        self._cpreds_view: Optional[List[List[int]]] = None
        #: producers[i][reg] = index of the SchedOp whose def of ``reg``
        #: op ``i`` reads (register flow only); used by dominator
        #: parallelism to prove two duplicates read identical values.
        self.producers: List[Dict[Register, int]] = [{} for _ in range(n)]
        #: For loads: index of the last store/call on the op's path (None
        #: when memory is untouched above it).  Dominator parallelism may
        #: only merge two duplicated loads when these match — otherwise
        #: they observe different memory states.
        self.mem_producers: List[Optional[int]] = [None] * n
        self.heights: List[int] = [0] * n

    # ------------------------------------------------------------------
    # Construction (flat appends, packed-int dedup)

    def add_edge(self, src: int, dst: int, latency: int) -> None:
        if src == dst:
            return
        if src < _IDX_LIMIT and dst < _IDX_LIMIT and latency < _LAT_LIMIT:
            key = ((src << _IDX_SHIFT) | dst) << _LAT_BITS | latency
        else:
            key = (src, dst, latency)
        edge_set = self._edge_set
        if key in edge_set:
            return
        edge_set.add(key)
        self._edge_src.append(src)
        self._edge_dst.append(dst)
        self._edge_lat.append(latency)
        self._dirty = True

    def add_control_edge(self, src: int, dst: int) -> None:
        """A breakable (height-only) control dependence at latency 1."""
        if src != dst:
            self._cedge_src.append(src)
            self._cedge_dst.append(dst)
            self._dirty = True

    @property
    def num_edges(self) -> int:
        return len(self._edge_src)

    @property
    def num_control_edges(self) -> int:
        return len(self._cedge_src)

    # ------------------------------------------------------------------
    # CSR finalization

    def finalize(self) -> None:
        """Build the CSR arrays from the flat edge stream (idempotent).

        Per-node edge order in CSR equals global insertion order
        restricted to the node — bit-identical to what the old per-node
        append lists held, so view consumers and the scheduler see edges
        in the same order as before the flat rewrite.
        """
        n = len(self.problem.sched_ops)
        if not self._dirty and n == self._n:
            return
        if len(self.heights) < n:
            # Ops were appended after construction (copy insertion).
            self.heights.extend([0] * (n - len(self.heights)))
        self._n = n

        src_list, dst_list, lat_list = \
            self._edge_src, self._edge_dst, self._edge_lat
        pred_ptr = [0] * (n + 1)
        succ_ptr = [0] * (n + 1)
        for dst in dst_list:
            pred_ptr[dst + 1] += 1
        for src in src_list:
            succ_ptr[src + 1] += 1
        for i in range(n):
            pred_ptr[i + 1] += pred_ptr[i]
            succ_ptr[i + 1] += succ_ptr[i]
        m = len(src_list)
        pred_src = [0] * m
        pred_lat = [0] * m
        succ_dst = [0] * m
        succ_lat = [0] * m
        pred_fill = pred_ptr[:n]
        succ_fill = succ_ptr[:n]
        for e in range(m):
            src = src_list[e]
            dst = dst_list[e]
            lat = lat_list[e]
            slot = pred_fill[dst]
            pred_src[slot] = src
            pred_lat[slot] = lat
            pred_fill[dst] = slot + 1
            slot = succ_fill[src]
            succ_dst[slot] = dst
            succ_lat[slot] = lat
            succ_fill[src] = slot + 1
        self.pred_ptr, self.pred_src, self.pred_lat = \
            pred_ptr, pred_src, pred_lat
        self.succ_ptr, self.succ_dst, self.succ_lat = \
            succ_ptr, succ_dst, succ_lat
        self.in_degree = [pred_ptr[i + 1] - pred_ptr[i] for i in range(n)]

        csrc, cdst = self._cedge_src, self._cedge_dst
        cpred_ptr = [0] * (n + 1)
        csucc_ptr = [0] * (n + 1)
        for dst in cdst:
            cpred_ptr[dst + 1] += 1
        for src in csrc:
            csucc_ptr[src + 1] += 1
        for i in range(n):
            cpred_ptr[i + 1] += cpred_ptr[i]
            csucc_ptr[i + 1] += csucc_ptr[i]
        cm = len(csrc)
        cpred_src = [0] * cm
        csucc_dst = [0] * cm
        cpred_fill = cpred_ptr[:n]
        csucc_fill = csucc_ptr[:n]
        for e in range(cm):
            src = csrc[e]
            dst = cdst[e]
            slot = cpred_fill[dst]
            cpred_src[slot] = src
            cpred_fill[dst] = slot + 1
            slot = csucc_fill[src]
            csucc_dst[slot] = dst
            csucc_fill[src] = slot + 1
        self.cpred_ptr, self.cpred_src = cpred_ptr, cpred_src
        self.csucc_ptr, self.csucc_dst = csucc_ptr, csucc_dst

        self._preds_view = None
        self._succs_view = None
        self._csuccs_view = None
        self._cpreds_view = None
        self._dirty = False

    # ------------------------------------------------------------------
    # Legacy adjacency views (lint, tests, diagnostics)

    @property
    def preds(self) -> List[List[Tuple[int, int]]]:
        self.finalize()
        if self._preds_view is None:
            view: List[List[Tuple[int, int]]] = [[] for _ in range(self._n)]
            for src, dst, lat in zip(self._edge_src, self._edge_dst,
                                     self._edge_lat):
                view[dst].append((src, lat))
            self._preds_view = view
        return self._preds_view

    @property
    def succs(self) -> List[List[Tuple[int, int]]]:
        self.finalize()
        if self._succs_view is None:
            view: List[List[Tuple[int, int]]] = [[] for _ in range(self._n)]
            for src, dst, lat in zip(self._edge_src, self._edge_dst,
                                     self._edge_lat):
                view[src].append((dst, lat))
            self._succs_view = view
        return self._succs_view

    @property
    def control_succs(self) -> List[List[int]]:
        self.finalize()
        if self._csuccs_view is None:
            view: List[List[int]] = [[] for _ in range(self._n)]
            for src, dst in zip(self._cedge_src, self._cedge_dst):
                view[src].append(dst)
            self._csuccs_view = view
        return self._csuccs_view

    @property
    def control_preds(self) -> List[List[int]]:
        self.finalize()
        if self._cpreds_view is None:
            view: List[List[int]] = [[] for _ in range(self._n)]
            for src, dst in zip(self._cedge_src, self._cedge_dst):
                view[dst].append(src)
            self._cpreds_view = view
        return self._cpreds_view

    # ------------------------------------------------------------------

    def compute_heights(self, machine: MachineModel) -> None:
        """Longest path to any sink over placement + control edges.

        Computed in reverse topological (Kahn) order over the CSR arrays
        so late insertions — the scheduled-copies ablation adds COPY ops
        that *precede* the exit branches created before them — are
        handled regardless of index order.
        """
        self.finalize()
        n = self._n
        ops = self.problem.sched_ops
        heights = self.heights
        latency = machine.latency
        pred_ptr, pred_src = self.pred_ptr, self.pred_src
        succ_ptr, succ_dst, succ_lat = \
            self.succ_ptr, self.succ_dst, self.succ_lat
        cpred_ptr, cpred_src = self.cpred_ptr, self.cpred_src
        csucc_ptr, csucc_dst = self.csucc_ptr, self.csucc_dst

        unresolved = [
            succ_ptr[i + 1] - succ_ptr[i] + csucc_ptr[i + 1] - csucc_ptr[i]
            for i in range(n)
        ]
        ready = [i for i in range(n) if unresolved[i] == 0]
        resolved = 0
        while ready:
            i = ready.pop()
            resolved += 1
            best = latency(ops[i].op)
            for e in range(succ_ptr[i], succ_ptr[i + 1]):
                candidate = succ_lat[e] + heights[succ_dst[e]]
                if candidate > best:
                    best = candidate
            for e in range(csucc_ptr[i], csucc_ptr[i + 1]):
                candidate = 1 + heights[csucc_dst[e]]
                if candidate > best:
                    best = candidate
            heights[i] = best
            for e in range(pred_ptr[i], pred_ptr[i + 1]):
                j = pred_src[e]
                unresolved[j] -= 1
                if unresolved[j] == 0:
                    ready.append(j)
            for e in range(cpred_ptr[i], cpred_ptr[i + 1]):
                j = cpred_src[e]
                unresolved[j] -= 1
                if unresolved[j] == 0:
                    ready.append(j)
        if resolved != n:
            raise AssertionError("DDG has a cycle; heights undefined")

    def pred_count(self, i: int) -> int:
        self.finalize()
        return self.in_degree[i]


class _PathState:
    """Per-path dependence state carried down the tree walk.

    Forking is copy-on-write: a fork shares the parent's maps and copies
    them only on the child's first write (:meth:`own`).  The old eager
    fork deep-copied every dict and list once *per tree child*, which is
    quadratic on bushy treegions (a 40-way switch fans a full path state
    out 40 times at every level).  Sequence-valued state (``uses_since``
    values, ``loads_since``, ``side_ops``) is stored as tuples, so shared
    references are immutable and "appending" simply rebinds a fresh tuple
    on one state without touching its siblings.
    """

    __slots__ = ("last_def", "uses_since", "last_store", "loads_since",
                 "side_ops", "_owned")

    def __init__(self):
        self.last_def: Dict[Register, int] = {}
        self.uses_since: Dict[Register, Tuple[int, ...]] = {}
        self.last_store: Optional[int] = None   # last ST or CALL
        self.loads_since: Tuple[int, ...] = ()
        self.side_ops: Tuple[int, ...] = ()     # stores/calls on the path
        self._owned = True

    def fork(self) -> "_PathState":
        child = _PathState.__new__(_PathState)
        child.last_def = self.last_def
        child.uses_since = self.uses_since
        child.last_store = self.last_store
        child.loads_since = self.loads_since
        child.side_ops = self.side_ops
        child._owned = False
        # The parent now shares its dicts with the child: it must copy
        # before writing too (only relevant if it keeps processing ops).
        self._owned = False
        return child

    def own(self) -> None:
        """Make the dict-valued state private before the first write.

        Shallow copies suffice — the values (op indices / index tuples)
        are immutable — and dict order is preserved, so edge insertion
        order is bit-identical to the eager-copy implementation.
        """
        if not self._owned:
            self.last_def = dict(self.last_def)
            self.uses_since = dict(self.uses_since)
            self._owned = True


def _live_at_exit(
    exit: RegionExit,
    liveness: Optional[LivenessInfo],
    copies: Optional[List[ExitCopy]],
) -> Tuple[Register, ...]:
    """Registers (post-renaming names) whose values the exit must carry,
    in sorted order (the DDG's deterministic edge-insertion order)."""
    if exit.edge is None or liveness is None:
        return ()
    repairs = [(original, renamed) for copy_exit, original, renamed
               in copies or [] if copy_exit is exit]
    if not repairs:
        # No renaming at this exit: reuse the liveness info's cached
        # sorted tuple (shared across regions and schemes via the
        # analysis cache) instead of re-sorting the same set.
        return liveness.live_into_edge_sorted(exit.edge)
    live = set(liveness.live_into_edge(exit.edge))
    for original, renamed in repairs:
        if original in live:
            live.discard(original)
            live.add(renamed)
    return tuple(sorted(live))


def build_ddg(
    problem: ScheduleProblem,
    machine: MachineModel,
    liveness: Optional[LivenessInfo] = None,
    copies: Optional[List[ExitCopy]] = None,
) -> DDG:
    """Build the region DDG (after renaming) and compute heights.

    ``liveness`` and the renaming ``copies`` pin down which values each
    exit must wait for; without them every exit conservatively waits for
    all path ops.
    """
    ddg = DDG(problem)
    region = problem.region
    live_cache: Dict[int, Tuple[Register, ...]] = {}
    if liveness is not None:
        for exit in problem.exits:
            live_cache[id(exit)] = _live_at_exit(exit, liveness, copies)

    stack: List[Tuple[BasicBlock, _PathState]] = [(region.root, _PathState())]
    while stack:
        block, state = stack.pop()
        for sop in problem.by_block[block.bid]:
            _add_op_edges(ddg, machine, sop, state,
                          live_cache if liveness is not None else None)
        children = region.children(block)
        # The first child (processed next, pushed last) adopts the parent
        # state outright — the parent is done with it — so linear chains
        # never copy path state at all; siblings fork copy-on-write.
        for child in reversed(children[1:]):
            stack.append((child, state.fork()))
        if children:
            stack.append((children[0], state))

    _add_control_height_edges(ddg)
    ddg.compute_heights(machine)
    metrics = current_metrics()
    if metrics is not NULL_METRICS:
        metrics.inc("ddg.nodes", len(problem.sched_ops))
        metrics.inc("ddg.edges", ddg.num_edges)
        metrics.inc("ddg.control_edges", ddg.num_control_edges)
    return ddg


def _add_control_height_edges(ddg: DDG) -> None:
    """Height-only control dependences: branch-role ops (exit branches,
    returns, and the guard predicate ops standing in for internal
    branches) control everything homed strictly below their block."""
    problem = ddg.problem
    region = problem.region
    guard_opcodes = (Opcode.CMPP, Opcode.PAND, Opcode.PANDCN, Opcode.NINSET)

    subtree_ops: Dict[int, List[int]] = {}
    # Reverse preorder = children before parents.
    for block in reversed(list(_preorder(region))):
        own = [sop.index for sop in problem.by_block[block.bid]]
        below: List[int] = []
        for child in region.children(block):
            below.extend(subtree_ops[child.bid])
        subtree_ops[block.bid] = own + below
        if not below:
            continue
        for sop in problem.by_block[block.bid]:
            is_branch_role = sop.exit is not None or (
                sop.source is None and sop.op.opcode in guard_opcodes
            )
            if is_branch_role:
                for target in below:
                    ddg.add_control_edge(sop.index, target)


def _preorder(region) -> List[BasicBlock]:
    order: List[BasicBlock] = []
    stack = [region.root]
    while stack:
        block = stack.pop()
        order.append(block)
        stack.extend(reversed(region.children(block)))
    return order


def _add_op_edges(ddg: DDG, machine: MachineModel, sop: SchedOp,
                  state: _PathState,
                  live_cache: Optional[Dict[int, Tuple[Register, ...]]]) -> None:
    i = sop.index
    op = sop.op
    ops = ddg.problem.sched_ops

    # Flow dependences (sources + guard).
    used = op.used_registers()
    if used:
        state.own()
        for reg in used:
            producer = state.last_def.get(reg)
            if producer is not None:
                ddg.add_edge(producer, i, machine.latency(ops[producer].op))
                ddg.producers[i][reg] = producer
            state.uses_since[reg] = state.uses_since.get(reg, ()) + (i,)

    # Output / anti dependences.
    defined = op.defined_registers()
    if defined:
        state.own()
        for reg in defined:
            previous = state.last_def.get(reg)
            if previous is not None:
                spacing = max(
                    1,
                    machine.latency(ops[previous].op) - machine.latency(op) + 1,
                )
                ddg.add_edge(previous, i, spacing)
            for user in state.uses_since.get(reg, ()):
                ddg.add_edge(user, i, 0)
            state.last_def[reg] = i
            state.uses_since[reg] = ()

    # Memory ordering (loads never bypass stores; Playdoh same-cycle rule).
    if op.opcode is Opcode.LD:
        ddg.mem_producers[i] = state.last_store
        if state.last_store is not None:
            producer = ops[state.last_store].op
            latency = 0 if producer.opcode is Opcode.ST else 1
            ddg.add_edge(state.last_store, i, latency)
        state.loads_since = state.loads_since + (i,)
    elif op.opcode is Opcode.ST or op.opcode is Opcode.CALL:
        if state.last_store is not None:
            ddg.add_edge(state.last_store, i, 1)
        for load in state.loads_since:
            ddg.add_edge(load, i, 1)
        state.last_store = i
        state.loads_since = ()

    # Track side-effecting ops; record exit requirements.
    if sop.exit is not None:
        # Side effects on the path must all have issued before leaving.
        for side_op in state.side_ops:
            ddg.add_edge(side_op, i, 0)
        if live_cache is None:
            # No liveness: conservatively wait for every path def.
            for producer in state.last_def.values():
                ddg.add_edge(producer, i, 0)
        else:
            # live_cache values are pre-sorted tuples.
            for reg in live_cache[id(sop.exit)]:
                producer = state.last_def.get(reg)
                if producer is not None:
                    ddg.add_edge(producer, i, 0)
    elif op.opcode is Opcode.ST or op.opcode is Opcode.CALL:
        state.side_ops = state.side_ops + (i,)
